//! Cholesky factorization for symmetric positive-definite systems.

use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor an SPD matrix.
    ///
    /// Returns `None` when the matrix is not (numerically) positive
    /// definite — callers fall back to QR in that case.
    pub fn factor(a: &Matrix) -> Option<Self> {
        let n = a.rows();
        if a.cols() != n {
            return None;
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for p in 0..j {
                    sum -= l[(i, p)] * l[(j, p)];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(Self { l })
    }

    /// Solve `A·x = b` via forward/back substitution.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length must equal matrix order");
        // Forward: L·z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * z[j];
            }
            z[i] = acc / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = z[i];
            for j in i + 1..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        x
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0, 0.6], vec![2.0, 5.0, 1.0], vec![0.6, 1.0, 3.0]]);
        let ch = Cholesky::factor(&a).expect("SPD");
        let llt = ch.l().matmul(&ch.l().transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&[1.0, 2.0]);
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(Cholesky::factor(&a).is_none());
    }

    #[test]
    fn non_square_rejected() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_none());
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(ch.solve(&b), b);
    }
}
