//! Householder QR factorization.
//!
//! Factors a tall matrix `A (m×n, m ≥ n)` as `Q·R` with orthonormal `Q`
//! stored implicitly as Householder reflectors. Backbone of the
//! least-squares solves in [`crate::lstsq`].

use crate::matrix::Matrix;

/// QR factorization with implicit Q.
#[derive(Clone, Debug)]
pub struct Qr {
    /// Packed factorization: R in the upper triangle, reflector tails below.
    packed: Matrix,
    /// Householder scalars β_j.
    betas: Vec<f64>,
}

impl Qr {
    /// Factor `a` (must be tall or square: `rows ≥ cols`).
    ///
    /// # Panics
    /// Panics if `rows < cols`.
    pub fn factor(a: &Matrix) -> Self {
        let (m, n) = (a.rows(), a.cols());
        assert!(m >= n, "QR requires rows ≥ cols, got {m}×{n}");
        let mut packed = a.clone();
        let mut betas = vec![0.0; n];
        for j in 0..n {
            // Householder vector for column j below the diagonal.
            let mut norm2 = 0.0;
            for i in j..m {
                norm2 += packed[(i, j)] * packed[(i, j)];
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                betas[j] = 0.0;
                continue;
            }
            let alpha = if packed[(j, j)] >= 0.0 { -norm } else { norm };
            let v0 = packed[(j, j)] - alpha;
            // v = (v0, a_{j+1,j}, …); normalize so v[0] = 1.
            let mut vnorm2 = v0 * v0;
            for i in j + 1..m {
                vnorm2 += packed[(i, j)] * packed[(i, j)];
            }
            if vnorm2 == 0.0 {
                betas[j] = 0.0;
                continue;
            }
            let beta = 2.0 * v0 * v0 / vnorm2;
            // Store normalized tail in place; diagonal gets R's entry α.
            for i in j + 1..m {
                packed[(i, j)] /= v0;
            }
            packed[(j, j)] = alpha;
            betas[j] = beta;
            // Apply the reflector to the trailing columns.
            for c in j + 1..n {
                let mut dot = packed[(j, c)];
                for i in j + 1..m {
                    dot += packed[(i, j)] * packed[(i, c)];
                }
                let scale = beta * dot;
                packed[(j, c)] -= scale;
                for i in j + 1..m {
                    let vij = packed[(i, j)];
                    packed[(i, c)] -= scale * vij;
                }
            }
        }
        Self { packed, betas }
    }

    /// Apply `Qᵀ` to a vector in place.
    ///
    /// # Panics
    /// Panics if `b.len() != rows`.
    pub fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        assert_eq!(b.len(), m, "vector length must equal rows");
        for j in 0..n {
            let beta = self.betas[j];
            if beta == 0.0 {
                continue;
            }
            let mut dot = b[j];
            for i in j + 1..m {
                dot += self.packed[(i, j)] * b[i];
            }
            let scale = beta * dot;
            b[j] -= scale;
            for i in j + 1..m {
                b[i] -= scale * self.packed[(i, j)];
            }
        }
    }

    /// Solve `R·x = c` for the leading `cols` components of `c`.
    ///
    /// # Panics
    /// Panics if `R` is numerically singular (rank-deficient input).
    pub fn solve_r(&self, c: &[f64]) -> Vec<f64> {
        let n = self.packed.cols();
        let mut x = vec![0.0; n];
        for j in (0..n).rev() {
            let mut acc = c[j];
            for l in j + 1..n {
                acc -= self.packed[(j, l)] * x[l];
            }
            let r_jj = self.packed[(j, j)];
            assert!(r_jj.abs() > 1e-12, "rank-deficient matrix (R[{j},{j}] ≈ 0)");
            x[j] = acc / r_jj;
        }
        x
    }

    /// Least-squares solve `min ‖Ax − b‖₂`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        self.solve_r(&qtb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn square_system_exact_solve() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let qr = Qr::factor(&a);
        let x = qr.solve(&[1.0, 2.0]);
        // Solution of [[4,1],[1,3]]x = [1,2]: x = (1/11, 7/11).
        assert!(close(&x, &[1.0 / 11.0, 7.0 / 11.0], 1e-12), "{x:?}");
    }

    #[test]
    fn overdetermined_least_squares() {
        // Fit y = 2t + 1 through noisy-free samples: exact recovery.
        let ts = [0.0, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![t, 1.0]).collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = ts.iter().map(|&t| 2.0 * t + 1.0).collect();
        let x = Qr::factor(&a).solve(&b);
        assert!(close(&x, &[2.0, 1.0], 1e-12), "{x:?}");
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a =
            Matrix::from_rows(&[vec![1.0, 0.5], vec![0.0, 2.0], vec![1.0, 1.0], vec![3.0, -1.0]]);
        let b = vec![1.0, -2.0, 0.5, 4.0];
        let x = Qr::factor(&a).solve(&b);
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let atr = a.matvec_t(&r);
        assert!(atr.iter().all(|v| v.abs() < 1e-10), "AᵀR = {atr:?}");
    }

    #[test]
    fn reconstruction_a_equals_qr() {
        // Verify via: for random x, A x == Q (R x) by comparing A x against
        // solving and re-multiplying.
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let qr = Qr::factor(&a);
        let b = a.matvec(&[1.0, 2.0, -1.0]);
        let x = qr.solve(&b);
        assert!(close(&x, &[1.0, 2.0, -1.0], 1e-10), "{x:?}");
    }

    #[test]
    #[should_panic(expected = "rank-deficient")]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let qr = Qr::factor(&a);
        let _ = qr.solve(&[1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "rows ≥ cols")]
    fn wide_matrix_rejected() {
        let _ = Qr::factor(&Matrix::zeros(2, 3));
    }
}
