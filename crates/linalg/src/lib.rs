#![warn(missing_docs)]

//! Dense linear algebra substrate for the baseline decoders.
//!
//! The compressed-sensing baselines the paper cites (§I-B) need exactly
//! three kernels, all implemented here from scratch:
//!
//! * [`matrix`] — a row-major dense `f64` matrix with the usual products.
//! * [`qr`]/[`lstsq`] — Householder QR and least-squares solves (for
//!   Orthogonal Matching Pursuit's restricted projections).
//! * [`cholesky`] — SPD solves (for AMP's occasional normal equations and
//!   as a faster least-squares path).
//! * [`simplex`] — a two-phase dense simplex LP solver with Bland's rule
//!   (for Basis Pursuit: `min Σx` s.t. `Ax = y`, `0 ≤ x ≤ 1`).
//!
//! Sizes are modest (baselines run at `n ≤ a few thousand`), so clarity and
//! numerical robustness win over blocking/SIMD here; the hot reconstruction
//! path of the paper (MN) never touches this crate.

// Indexed loops mirror the textbook formulations of these kernels;
// iterator rewrites obscure the triangular index structure.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod lstsq;
pub mod matrix;
pub mod qr;
pub mod simplex;

pub use matrix::Matrix;
pub use simplex::{LpOutcome, LpProblem};
