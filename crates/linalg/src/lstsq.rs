//! Least-squares front door.
//!
//! Tries the fast normal-equations path (`AᵀA x = Aᵀb` via Cholesky) and
//! falls back to Householder QR when the Gram matrix is not numerically
//! positive definite. OMP calls this once per selected column.

use crate::cholesky::Cholesky;
use crate::matrix::Matrix;
use crate::qr::Qr;

/// Solve `min ‖Ax − b‖₂` for tall `A`.
///
/// # Panics
/// Panics if `A` has fewer rows than columns or is rank-deficient, or if
/// `b.len() != rows`.
pub fn solve_least_squares(a: &Matrix, b: &[f64]) -> Vec<f64> {
    assert_eq!(b.len(), a.rows(), "rhs length must equal rows");
    assert!(a.rows() >= a.cols(), "least squares needs rows ≥ cols");
    let gram = a.gram();
    if let Some(ch) = Cholesky::factor(&gram) {
        let atb = a.matvec_t(b);
        return ch.solve(&atb);
    }
    Qr::factor(a).solve(b)
}

/// Residual vector `b − Ax`.
pub fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> Vec<f64> {
    let ax = a.matvec(x);
    b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect()
}

/// Squared ℓ2 norm.
pub fn norm2_sq(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_recovered() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let truth = [3.0, -2.0];
        let b = a.matvec(&truth);
        let x = solve_least_squares(&a, &b);
        assert!((x[0] - 3.0).abs() < 1e-10 && (x[1] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn residual_orthogonality() {
        let a =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0], vec![0.5, 0.5], vec![-1.0, 1.0]]);
        let b = vec![1.0, 0.0, 2.0, 1.0];
        let x = solve_least_squares(&a, &b);
        let r = residual(&a, &x, &b);
        let atr = a.matvec_t(&r);
        assert!(atr.iter().all(|v| v.abs() < 1e-9), "{atr:?}");
    }

    #[test]
    fn norm_helper() {
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm2_sq(&[]), 0.0);
    }

    #[test]
    fn qr_fallback_on_ill_conditioned_gram() {
        // Nearly collinear columns make the Gram matrix borderline; the
        // solver must still return a valid least-squares solution.
        let eps = 1e-7;
        let a = Matrix::from_rows(&[vec![1.0, 1.0 + eps], vec![1.0, 1.0], vec![1.0, 1.0 - eps]]);
        let b = vec![1.0, 1.0, 1.0];
        let x = solve_least_squares(&a, &b);
        let r = residual(&a, &x, &b);
        assert!(norm2_sq(&r) < 1e-9);
    }
}
