//! Row-major dense matrix.

use std::ops::{Index, IndexMut};

/// Dense `f64` matrix, row-major storage.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build from nested rows (test convenience).
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows).map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum()).collect()
    }

    /// Transposed product `Aᵀ·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            for (c, &a) in self.row(r).iter().enumerate() {
                out[c] += a * xr;
            }
        }
        out
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Gram matrix `AᵀA` (SPD when A has full column rank).
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ai = row[i];
                if ai == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += ai * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i = Matrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matvec_hand_example() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 0.5], vec![3.0, -4.0, 1.0]]);
        let x = vec![2.0, -1.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn matmul_hand_example() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.gram(), a.transpose().matmul(&a));
    }

    #[test]
    fn col_extraction() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_shape() {
        let a = Matrix::zeros(2, 3);
        let _ = a.matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
