//! Two-phase dense simplex for standard-form linear programs.
//!
//! Solves `min cᵀx` subject to `Ax = b`, `x ≥ 0`. Pivot selection is
//! Dantzig's rule with an automatic switch to Bland's rule after a run of
//! degenerate pivots, which makes termination guaranteed while keeping the
//! typical-case speed. Used by the Basis Pursuit baseline
//! (`min Σx` s.t. `Mᵀx = y`, `0 ≤ x ≤ 1`, with the box encoded by slacks).

use crate::matrix::Matrix;

/// A standard-form LP: `min cᵀx` s.t. `Ax = b`, `x ≥ 0`.
#[derive(Clone, Debug)]
pub struct LpProblem {
    /// Constraint matrix (m×n).
    pub a: Matrix,
    /// Right-hand side (length m).
    pub b: Vec<f64>,
    /// Objective coefficients (length n).
    pub c: Vec<f64>,
}

/// Solver outcome.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Optimal solution found.
    Optimal {
        /// Optimal primal point.
        x: Vec<f64>,
        /// Objective value `cᵀx`.
        objective: f64,
    },
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// Iteration limit hit (returns no point; callers treat as failure).
    IterationLimit,
}

const EPS: f64 = 1e-9;
/// Degenerate-pivot streak length that triggers Bland's rule.
const BLAND_TRIGGER: usize = 64;

struct Tableau {
    /// (m+1) × (ncols+1): constraint rows then the objective row;
    /// the last column is the RHS.
    t: Vec<Vec<f64>>,
    basis: Vec<usize>,
    ncols: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.t[row][self.ncols]
    }

    fn pivot(&mut self, prow: usize, pcol: usize) {
        let piv = self.t[prow][pcol];
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for v in self.t[prow].iter_mut() {
            *v *= inv;
        }
        let prow_vals = self.t[prow].clone();
        for (r, row) in self.t.iter_mut().enumerate() {
            if r == prow {
                continue;
            }
            let factor = row[pcol];
            if factor.abs() <= EPS {
                row[pcol] = 0.0;
                continue;
            }
            for (v, &p) in row.iter_mut().zip(&prow_vals) {
                *v -= factor * p;
            }
            row[pcol] = 0.0;
        }
        self.basis[prow] = pcol;
    }

    /// Run simplex until optimality; `allowed` masks columns that may enter.
    fn optimize(&mut self, allowed: &[bool], max_iters: usize) -> LpOutcome {
        let m = self.basis.len();
        let obj_row = m;
        let mut degenerate_streak = 0usize;
        for _ in 0..max_iters {
            // Entering column.
            let use_bland = degenerate_streak >= BLAND_TRIGGER;
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for j in 0..self.ncols {
                if !allowed[j] {
                    continue;
                }
                let rc = self.t[obj_row][j];
                if rc < -EPS {
                    if use_bland {
                        enter = Some(j);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        enter = Some(j);
                    }
                }
            }
            let Some(pcol) = enter else {
                return LpOutcome::Optimal { x: Vec::new(), objective: -self.rhs(obj_row) };
            };
            // Leaving row: minimum ratio; ties by smallest basis index
            // (Bland-compatible).
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..m {
                let coef = self.t[r][pcol];
                if coef > EPS {
                    let ratio = self.rhs(r) / coef;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((prow, ratio)) = leave else {
                return LpOutcome::Unbounded;
            };
            degenerate_streak = if ratio.abs() <= EPS { degenerate_streak + 1 } else { 0 };
            self.pivot(prow, pcol);
        }
        LpOutcome::IterationLimit
    }
}

/// Solve a standard-form LP.
///
/// # Panics
/// Panics on dimension mismatches between `a`, `b` and `c`.
pub fn solve(problem: &LpProblem) -> LpOutcome {
    let m = problem.a.rows();
    let n = problem.a.cols();
    assert_eq!(problem.b.len(), m, "b length must equal constraint count");
    assert_eq!(problem.c.len(), n, "c length must equal variable count");
    let ncols = n + m; // originals + artificials
    let mut t = vec![vec![0.0; ncols + 1]; m + 1];
    for r in 0..m {
        let flip = if problem.b[r] < 0.0 { -1.0 } else { 1.0 };
        for j in 0..n {
            t[r][j] = flip * problem.a[(r, j)];
        }
        t[r][n + r] = 1.0;
        t[r][ncols] = flip * problem.b[r];
    }
    // Phase-1 objective: minimize Σ artificials ⇒ reduced-cost row equals
    // −Σ constraint rows over the original columns.
    for j in 0..=ncols {
        let mut acc = 0.0;
        for r in 0..m {
            acc += t[r][j];
        }
        t[m][j] = -acc;
    }
    for r in 0..m {
        t[m][n + r] = 0.0;
    }
    let mut tab = Tableau { t, basis: (n..n + m).collect(), ncols };
    let allowed_p1: Vec<bool> = (0..ncols).map(|j| j < n).collect();
    let max_iters = 50 * (m + n).max(100);
    match tab.optimize(&allowed_p1, max_iters) {
        LpOutcome::Optimal { .. } => {}
        LpOutcome::IterationLimit => return LpOutcome::IterationLimit,
        // Phase 1 is bounded below by 0, so Unbounded cannot happen.
        _ => unreachable!("phase 1 is bounded"),
    }
    if tab.rhs(m).abs() > 1e-6 {
        return LpOutcome::Infeasible;
    }
    // Drive any basic artificials out where possible.
    for r in 0..m {
        if tab.basis[r] >= n {
            if let Some(j) = (0..n).find(|&j| tab.t[r][j].abs() > 1e-7) {
                tab.pivot(r, j);
            }
        }
    }
    // Phase 2: rebuild the objective row from the original costs.
    for j in 0..=ncols {
        tab.t[m][j] = 0.0;
    }
    for j in 0..n {
        tab.t[m][j] = problem.c[j];
    }
    // Express the objective in terms of non-basic variables.
    for r in 0..m {
        let bj = tab.basis[r];
        if bj < n {
            let cost = problem.c[bj];
            if cost != 0.0 {
                let row = tab.t[r].clone();
                for (v, &p) in tab.t[m].iter_mut().zip(&row) {
                    *v -= cost * p;
                }
            }
        }
    }
    match tab.optimize(&allowed_p1, max_iters) {
        LpOutcome::Optimal { .. } => {
            let mut x = vec![0.0; n];
            for r in 0..m {
                if tab.basis[r] < n {
                    x[tab.basis[r]] = tab.rhs(r);
                }
            }
            let objective = problem.c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
            LpOutcome::Optimal { x, objective }
        }
        other => other,
    }
}

/// Convenience: `min Σ x` s.t. `Ex = y`, `0 ≤ x ≤ u` (box via slacks).
///
/// Encodes `x_i + s_i = u_i` with slack variables, then calls [`solve`].
pub fn solve_box_min_sum(e: &Matrix, y: &[f64], upper: f64) -> LpOutcome {
    let m = e.rows();
    let n = e.cols();
    let rows_total = m + n;
    let cols_total = 2 * n;
    let mut a = Matrix::zeros(rows_total, cols_total);
    for r in 0..m {
        for j in 0..n {
            a[(r, j)] = e[(r, j)];
        }
    }
    for i in 0..n {
        a[(m + i, i)] = 1.0;
        a[(m + i, n + i)] = 1.0;
    }
    let mut b = y.to_vec();
    b.extend(std::iter::repeat_n(upper, n));
    let mut c = vec![1.0; n];
    c.extend(std::iter::repeat_n(0.0, n));
    match solve(&LpProblem { a, b, c }) {
        LpOutcome::Optimal { x, objective } => LpOutcome::Optimal { x: x[..n].to_vec(), objective },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(outcome: LpOutcome) -> (Vec<f64>, f64) {
        match outcome {
            LpOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_lp() {
        // min −3x₁ − 5x₂ s.t. x₁ ≤ 4, 2x₂ ≤ 12, 3x₁+2x₂ ≤ 18 (with slacks)
        // Optimum at (2, 6), objective −36.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ]);
        let b = vec![4.0, 12.0, 18.0];
        let c = vec![-3.0, -5.0, 0.0, 0.0, 0.0];
        let (x, obj) = optimal(solve(&LpProblem { a, b, c }));
        assert!((x[0] - 2.0).abs() < 1e-8 && (x[1] - 6.0).abs() < 1e-8, "{x:?}");
        assert!((obj + 36.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_detected() {
        // x₁ = 1 and x₁ = 2 simultaneously.
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let b = vec![1.0, 2.0];
        let c = vec![0.0];
        assert!(matches!(solve(&LpProblem { a, b, c }), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // min −x₁ s.t. x₁ − x₂ = 0 (x₁ can grow with x₂).
        let a = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let b = vec![0.0];
        let c = vec![-1.0, 0.0];
        assert!(matches!(solve(&LpProblem { a, b, c }), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_handled() {
        // −x₁ = −3 ⇒ x₁ = 3.
        let a = Matrix::from_rows(&[vec![-1.0]]);
        let b = vec![-3.0];
        let c = vec![1.0];
        let (x, obj) = optimal(solve(&LpProblem { a, b, c }));
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((obj - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the origin.
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 0.0, 1.0],
            vec![2.0, 2.0, 1.0, 1.0],
        ]);
        let b = vec![1.0, 1.0, 2.0];
        let c = vec![-1.0, -2.0, 0.0, 0.0];
        let (x, _) = optimal(solve(&LpProblem { a, b, c }));
        assert!((x[1] - 1.0).abs() < 1e-8, "{x:?}");
    }

    #[test]
    fn box_min_sum_recovers_sparse_binary() {
        // x* = (1,0,1): the first constraint x₁+x₃ = 2 pins both to the box
        // ceiling, then x₂ = 0 follows. Unique minimizer with objective 2.
        let e = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 1.0]]);
        let y = vec![2.0, 1.0, 1.0];
        let (x, obj) = optimal(solve_box_min_sum(&e, &y, 1.0));
        assert!((obj - 2.0).abs() < 1e-8, "objective {obj}");
        assert!(
            (x[0] - 1.0).abs() < 1e-6 && x[1].abs() < 1e-6 && (x[2] - 1.0).abs() < 1e-6,
            "{x:?}"
        );
    }

    #[test]
    fn box_constraint_binds() {
        // Single constraint 2x₁ = 2 with u = 1 forces x₁ = 1 exactly.
        let e = Matrix::from_rows(&[vec![2.0, 0.0]]);
        let (x, _) = optimal(solve_box_min_sum(&e, &[2.0], 1.0));
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!(x.iter().all(|&v| (-1e-8..=1.0 + 1e-8).contains(&v)));
    }

    #[test]
    fn box_infeasible_when_rhs_exceeds_capacity() {
        let e = Matrix::from_rows(&[vec![1.0, 1.0]]);
        assert!(matches!(solve_box_min_sum(&e, &[3.0], 1.0), LpOutcome::Infeasible));
    }
}
