//! Offline stand-in for [serde_json](https://docs.rs/serde_json): the
//! [`Value`] tree, the [`json!`] macro (literal keys, expression values),
//! pretty printing and parsing. No serde derive — the one consumer
//! (`pooled_io::manifest`) converts explicitly through [`Value`].
//!
//! Object key order is preserved (insertion order), numbers keep their
//! integer/float identity, and `parse(render(v)) == v` for every value the
//! workspace produces — the manifest round-trip tests pin this down.

use std::fmt;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Float.
    F(f64),
}

impl Number {
    fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            // Cross-variant: compare numerically (parsing may change variant).
            (Number::U(a), Number::I(b)) | (Number::I(b), Number::U(a)) => b >= 0 && a == b as u64,
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

/// A JSON value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v),
            Value::Number(Number::I(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(v)) => Some(*v),
            Value::Number(Number::U(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Conversions feeding the `json!` macro.
// ---------------------------------------------------------------------------

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U(v as u64)) }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 { Value::Number(Number::U(v as u64)) }
                else { Value::Number(Number::I(v as i64)) }
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, usize);
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

impl<T> From<Vec<T>> for Value
where
    Value: From<T>,
{
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Value::from).collect())
    }
}

impl<T> From<&[T]> for Value
where
    T: Clone,
    Value: From<T>,
{
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Value::from).collect())
    }
}

impl<T, const N: usize> From<[T; N]> for Value
where
    Value: From<T>,
{
    fn from(items: [T; N]) -> Value {
        Value::Array(items.into_iter().map(Value::from).collect())
    }
}

impl<T, const N: usize> From<&[T; N]> for Value
where
    T: Clone,
    Value: From<T>,
{
    fn from(items: &[T; N]) -> Value {
        Value::Array(items.iter().cloned().map(Value::from).collect())
    }
}

impl<T> From<&Vec<T>> for Value
where
    T: Clone,
    Value: From<T>,
{
    fn from(items: &Vec<T>) -> Value {
        Value::Array(items.iter().cloned().map(Value::from).collect())
    }
}

/// Borrowing conversion into [`Value`] — what the [`json!`] macro calls, so
/// that (like real serde_json) `json!({"xs": xs})` does not move `xs`.
pub trait ToValue {
    /// Convert a borrowed value.
    fn to_value(&self) -> Value;
}

macro_rules! impl_to_value_copy {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value { Value::from(*self) }
        }
    )*};
}

impl_to_value_copy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue, const N: usize> ToValue for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: ToValue, B: ToValue> ToValue for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: ToValue, B: ToValue, C: ToValue> ToValue for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

/// Build a [`Value`] from JSON-ish syntax. Object keys must be string
/// literals; values are arbitrary expressions converted by reference via
/// [`ToValue`].
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::ToValue::to_value(&$value))),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::ToValue::to_value(&$value)),* ])
    };
    ($other:expr) => { $crate::ToValue::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(v) => {
            if v.is_finite() {
                let s = format!("{v}");
                out.push_str(&s);
                // Keep float identity through a parse round trip.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn render(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => render_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                render(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

/// Render compactly (no whitespace).
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    render(&mut out, value, None, 0);
    Ok(out)
}

/// Render with two-space indentation, like serde_json's pretty printer.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    render(&mut out, value, Some(2), 0);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Parse error with byte offset.
#[derive(Debug)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, Error> {
        Err(Error { message: message.to_owned(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error {
                                    message: "invalid \\u escape".into(),
                                    offset: self.pos,
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error {
                                message: "invalid \\u escape".into(),
                                offset: self.pos,
                            })?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| Error { message: "invalid UTF-8".into(), offset: start })?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error { message: "invalid number".into(), offset: start })?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(v)));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Value::Number(Number::F(v))),
            Err(_) => self.err("malformed number"),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parse a JSON document.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_structure() {
        let v = json!({
            "name": "fig2",
            "seed": 1905u64,
            "grid": [1000, 10000],
            "thetas": [0.1, 0.2],
            "flag": true,
            "nothing": json!(null),
        });
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
    }

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = json!({"a": 1});
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn big_u64_survives() {
        let v = json!({"seed": u64::MAX});
        let s = to_string(&v).unwrap();
        assert_eq!(from_str(&s).unwrap().get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = json!([-5, 2.5, 1.0]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[-5,2.5,1.0]");
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = json!({"s": "a\"b\\c\nd\tü"});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn invalid_input_is_an_error() {
        assert!(from_str("not json").is_err());
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
    }

    #[test]
    fn from_vec_and_arrays() {
        let grid: Vec<usize> = vec![1, 2, 3];
        let v = json!({"grid": grid, "arr": [1.0f64, 2.0]});
        assert_eq!(v.get("grid").unwrap().as_array().unwrap().len(), 3);
    }
}
