//! Offline stand-in for [criterion](https://docs.rs/criterion) with the same
//! macro and builder surface the workspace's benches use.
//!
//! Each benchmark is timed with a short calibration phase (to pick an
//! iteration count that fills ~`measurement_time`), then `sample_size`
//! batches are measured and the min / median / max batch means are printed in
//! criterion's familiar `time: [low mid high]` format.
//!
//! Machine-readable output: set `BENCH_JSON=/path/to/file.json` and every
//! completed benchmark appends one JSON object per line
//! (`{"id": …, "mean_ns": …, "median_ns": …, "samples": …}`), which is what
//! the repo's `BENCH_*.json` trajectory tracking consumes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(150),
        }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a routine under a bare id.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the target measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Set the warm-up time for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Record throughput metadata (accepted; not used in reports).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark a routine within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Benchmark a routine that receives an input by reference.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// Render the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput metadata, mirroring `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<f64>,
    mode: BencherMode,
}

enum BencherMode {
    Calibrate(Duration),
    Measure,
}

impl Bencher {
    /// Time `routine`, running it many times per measured sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            BencherMode::Calibrate(budget) => {
                // Double the iteration count until one batch costs at least
                // ~1/50 of the measurement budget, so a sample is long enough
                // to be meaningful but short enough for sample_size batches.
                let floor = budget.as_secs_f64() / 50.0;
                let mut iters = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed().as_secs_f64();
                    if elapsed >= floor || iters >= 1 << 20 {
                        self.iters_per_sample = iters;
                        break;
                    }
                    iters *= 2;
                }
            }
            BencherMode::Measure => {
                let iters = self.iters_per_sample.max(1);
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let per_iter = start.elapsed().as_secs_f64() / iters as f64;
                self.samples.push(per_iter);
            }
        }
    }
}

fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up + calibration pass.
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        mode: BencherMode::Calibrate(measurement.max(warm_up)),
    };
    f(&mut b);
    let iters = b.iters_per_sample;

    // Measured samples.
    let mut b =
        Bencher { iters_per_sample: iters, samples: Vec::new(), mode: BencherMode::Measure };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(f64::total_cmp);
    let low = sorted.first().copied().unwrap_or(0.0);
    let high = sorted.last().copied().unwrap_or(0.0);
    let median = if sorted.is_empty() { 0.0 } else { sorted[sorted.len() / 2] };
    let mean =
        if sorted.is_empty() { 0.0 } else { sorted.iter().sum::<f64>() / sorted.len() as f64 };

    println!("{id:<50} time: [{} {} {}]", format_time(low), format_time(median), format_time(high));

    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(
                file,
                "{{\"id\": \"{id}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"samples\": {}}}",
                mean * 1e9,
                median * 1e9,
                sorted.len()
            );
        }
    }
}

fn format_time(seconds: f64) -> String {
    let ns = seconds * 1e9;
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
