//! Offline stand-in for [proptest](https://docs.rs/proptest) covering the
//! workspace's usage: the `proptest!` macro with `#![proptest_config(…)]`,
//! range and `any::<T>()` strategies, `prop::collection::vec`, and the
//! `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's name), so failures reproduce across runs. Unlike real proptest
//! there is no shrinking: a failing case panics immediately with the
//! standard assertion message, which is enough for CI triage.

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// SplitMix64-based deterministic generator.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name, so each property gets its own stream.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Lemire-style widening multiply keeps the modulo bias negligible.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and range strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }
}

pub mod arbitrary {
    //! Whole-domain generation for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite floats only: adversarial NaN/inf handling is not what
            // the workspace's properties probe.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for vectors with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, len_range)`: vectors of `element` with length drawn
    /// uniformly from `len_range`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Assert inside a property; panics with the failing case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests, mirroring proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn prop(x in 0usize..10, seed in any::<u64>()) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u64>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
