//! Offline stand-in for [rayon](https://docs.rs/rayon), implementing exactly
//! the subset of its API this workspace uses, on top of `std::thread::scope`.
//!
//! This build environment has no access to a crate registry, so the workspace
//! vendors a data-parallel core with rayon's import surface:
//!
//! * [`prelude`] — `par_iter` / `par_iter_mut` / `into_par_iter` /
//!   `par_chunks_mut` over slices, vectors and integer ranges, with the
//!   `map` / `zip` / `enumerate` / `for_each` / `collect` / `sum` / `reduce` /
//!   `min_by_key` combinators.
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — scoped worker-count
//!   control via a thread-local, honoured by every parallel drive.
//! * [`join`] / [`current_num_threads`].
//!
//! Every parallel iterator here is *indexed* (exact length, contiguous
//! `split_at`), which is all the workspace needs: the sources are ranges,
//! slices and vectors. A drive fans the iterator out into one contiguous
//! chunk per worker and runs each chunk sequentially on a scoped thread;
//! worker threads report `current_num_threads() == 1` so nested parallelism
//! degrades to sequential execution instead of oversubscribing.
//!
//! Determinism: chunk boundaries depend only on `(len, current_num_threads)`,
//! and order-sensitive consumers (`collect`, `sum`, `reduce`) combine chunk
//! results in chunk order, so outputs are identical across thread counts for
//! associative operations — the property the workspace's tests pin down.

use std::cell::Cell;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Thread-count plumbing.
// ---------------------------------------------------------------------------

thread_local! {
    /// 0 = unset (use the machine default); otherwise the installed count.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// The effective parallelism of the current context.
pub fn current_num_threads() -> usize {
    let v = CURRENT_THREADS.with(Cell::get);
    if v == 0 {
        default_threads()
    } else {
        v
    }
}

fn with_thread_count<R>(n: usize, op: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_THREADS.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(CURRENT_THREADS.with(|c| c.replace(n)));
    op()
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle fixing the worker count for scoped regions.
///
/// Threads are not pre-spawned: `install` records the count in a
/// thread-local and every parallel drive inside `op` fans out to exactly
/// that many scoped workers.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count installed.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        with_thread_count(self.threads, op)
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the worker count (`0` keeps the machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Accepted for API compatibility; worker threads are scoped and unnamed.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: Fn(usize) -> String,
    {
        self
    }

    /// Build the pool handle (infallible in this implementation).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// Run both closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(|| with_thread_count(1, b));
        let ra = a();
        (ra, hb.join().expect("joined closure panicked"))
    })
}

// ---------------------------------------------------------------------------
// The indexed parallel-iterator core.
// ---------------------------------------------------------------------------

/// An indexed parallel iterator: exact length, contiguous splitting, and a
/// sequential drain. Everything the workspace parallelizes over fits this
/// (ranges, slices, vectors), which keeps the fan-out machinery tiny.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Exact number of remaining items.
    fn len(&self) -> usize;

    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)` halves.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Drain sequentially into `sink`, in index order.
    fn drive_seq(self, sink: &mut impl FnMut(Self::Item));

    // -- combinators ------------------------------------------------------

    /// Map each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f: Arc::new(f) }
    }

    /// Map with per-chunk mutable state created by `init` (mirrors rayon's
    /// `map_init`): each sequential chunk builds one `state` and threads it
    /// through its items — the cheap way to reuse scratch buffers across a
    /// parallel loop.
    fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> MapInit<Self, INIT, F>
    where
        S: Send,
        R: Send,
        INIT: Fn() -> S + Sync + Send,
        F: Fn(&mut S, Self::Item) -> R + Sync + Send,
    {
        MapInit { base: self, init: Arc::new(init), f: Arc::new(f) }
    }

    /// Pair with another indexed iterator, truncating to the shorter.
    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
    {
        Zip { a: self, b: other.into_par_iter() }
    }

    /// Attach the global index to each item.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self, offset: 0 }
    }

    /// Run `f` on every item, in parallel chunks.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive_chunks(self, &|chunk: Self| chunk.drive_seq(&mut |x| f(x)));
    }

    /// Collect into a container, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items, combining per-chunk partial sums in chunk order.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        map_chunks(self, &|chunk: Self| {
            let mut items = Vec::with_capacity(chunk.len());
            chunk.drive_seq(&mut |x| items.push(x));
            items.into_iter().sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// Reduce with an identity factory, like `rayon::iter::ParallelIterator::reduce`.
    fn reduce<OP, ID>(self, identity: ID, op: OP) -> Self::Item
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        ID: Fn() -> Self::Item + Sync + Send,
    {
        map_chunks(self, &|chunk: Self| {
            let mut acc: Option<Self::Item> = None;
            chunk.drive_seq(&mut |x| {
                acc = Some(match acc.take() {
                    Some(prev) => op(prev, x),
                    None => x,
                });
            });
            acc.unwrap_or_else(&identity)
        })
        .into_iter()
        .fold(identity(), &op)
    }

    /// Minimum by key with rayon's tie-breaking (first minimal in index order).
    fn min_by_key<K, F>(self, f: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        map_chunks(self, &|chunk: Self| {
            let mut best: Option<(K, Self::Item)> = None;
            chunk.drive_seq(&mut |x| {
                let k = f(&x);
                match &best {
                    Some((bk, _)) if *bk <= k => {}
                    _ => best = Some((k, x)),
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .reduce(|a, b| if a.0 <= b.0 { a } else { b })
        .map(|(_, x)| x)
    }

    /// Maximum by key with rayon's tie-breaking (last maximal in index order).
    fn max_by_key<K, F>(self, f: F) -> Option<Self::Item>
    where
        K: Ord + Send,
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        map_chunks(self, &|chunk: Self| {
            let mut best: Option<(K, Self::Item)> = None;
            chunk.drive_seq(&mut |x| {
                let k = f(&x);
                match &best {
                    Some((bk, _)) if *bk > k => {}
                    _ => best = Some((k, x)),
                }
            });
            best
        })
        .into_iter()
        .flatten()
        .reduce(|a, b| if b.0 >= a.0 { b } else { a })
        .map(|(_, x)| x)
    }
}

/// Split into at most `parts` contiguous pieces of near-equal size.
fn split_even<P: ParallelIterator>(iter: P, parts: usize) -> Vec<P> {
    let mut out = Vec::with_capacity(parts);
    let mut rest = iter;
    for part in 0..parts.saturating_sub(1) {
        let remaining = rest.len();
        let remaining_parts = parts - part;
        let take = remaining.div_ceil(remaining_parts);
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
    }
    out.push(rest);
    out
}

/// Fan `iter` out into per-worker chunks and run `consume` on each.
fn drive_chunks<P, C>(iter: P, consume: &C)
where
    P: ParallelIterator,
    C: Fn(P) + Sync,
{
    let threads = current_num_threads();
    let len = iter.len();
    if threads <= 1 || len <= 1 {
        consume(iter);
        return;
    }
    let chunks = split_even(iter, threads.min(len));
    std::thread::scope(|s| {
        let mut chunks = chunks.into_iter();
        let first = chunks.next().expect("split_even returns at least one chunk");
        for chunk in chunks {
            s.spawn(move || with_thread_count(1, || consume(chunk)));
        }
        // The calling thread is a worker too: it must see a thread count of
        // 1 so nested parallelism degrades to sequential like the spawned
        // chunks.
        with_thread_count(1, || consume(first));
    });
}

/// Fan out and collect one result per chunk, in chunk order.
fn map_chunks<P, R, C>(iter: P, consume: &C) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    C: Fn(P) -> R + Sync,
{
    let threads = current_num_threads();
    let len = iter.len();
    if threads <= 1 || len <= 1 {
        return vec![consume(iter)];
    }
    let chunks = split_even(iter, threads.min(len));
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || with_thread_count(1, || consume(chunk))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Conversion into a parallel iterator (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<P: ParallelIterator> IntoParallelIterator for P {
    type Iter = P;
    type Item = P::Item;

    fn into_par_iter(self) -> P {
        self
    }
}

/// `.par_iter()` on anything whose reference converts (mirrors rayon).
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a shared reference).
    type Item: Send + 'a;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `.par_iter_mut()` on anything whose mutable reference converts.
pub trait IntoParallelRefMutIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a mutable reference).
    type Item: Send + 'a;
    /// Mutably borrowing conversion.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoParallelIterator,
{
    type Iter = <&'a mut C as IntoParallelIterator>::Iter;
    type Item = <&'a mut C as IntoParallelIterator>::Item;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Collection from a parallel iterator (mirrors rayon's trait).
pub trait FromParallelIterator<T: Send> {
    /// Build the container from `iter`, preserving index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self {
        let len = iter.len();
        let threads = current_num_threads();
        if threads <= 1 || len <= 1 {
            let mut out = Vec::with_capacity(len);
            iter.drive_seq(&mut |x| out.push(x));
            return out;
        }
        let parts = map_chunks(iter, &|chunk: P| {
            let mut part = Vec::with_capacity(chunk.len());
            chunk.drive_seq(&mut |x| part.push(x));
            part
        });
        let mut out = Vec::with_capacity(len);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Adapters.
// ---------------------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (Map { base: a, f: Arc::clone(&self.f) }, Map { base: b, f: self.f })
    }

    fn drive_seq(self, sink: &mut impl FnMut(R)) {
        let f = self.f;
        self.base.drive_seq(&mut |x| sink(f(x)));
    }
}

/// See [`ParallelIterator::map_init`].
pub struct MapInit<P, INIT, F> {
    base: P,
    init: Arc<INIT>,
    f: Arc<F>,
}

impl<P, S, R, INIT, F> ParallelIterator for MapInit<P, INIT, F>
where
    P: ParallelIterator,
    S: Send,
    R: Send,
    INIT: Fn() -> S + Sync + Send,
    F: Fn(&mut S, P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            MapInit { base: a, init: Arc::clone(&self.init), f: Arc::clone(&self.f) },
            MapInit { base: b, init: self.init, f: self.f },
        )
    }

    fn drive_seq(self, sink: &mut impl FnMut(R)) {
        let mut state = (self.init)();
        let f = self.f;
        self.base.drive_seq(&mut |x| sink(f(&mut state, x)));
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn drive_seq(self, sink: &mut impl FnMut(Self::Item)) {
        // Heap-allocation-free pairing: halve recursively until a chunk fits
        // the stack buffer, then drain the right side into it and replay the
        // left side against it. Keeps workspace decode paths that zip two
        // `par_iter_mut`s allocation-free, as their callers document.
        const CHUNK: usize = 64;
        let n = self.a.len().min(self.b.len());
        if n == 0 {
            return;
        }
        if n <= CHUNK {
            let mut buf: [Option<B::Item>; CHUNK] = [const { None }; CHUNK];
            let mut i = 0usize;
            self.b.drive_seq(&mut |y| {
                if i < n {
                    buf[i] = Some(y);
                }
                i += 1;
            });
            let mut j = 0usize;
            self.a.drive_seq(&mut |x| {
                if j < n {
                    if let Some(y) = buf[j].take() {
                        sink((x, y));
                    }
                }
                j += 1;
            });
            return;
        }
        let mid = n / 2;
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        Zip { a: a1, b: b1 }.drive_seq(sink);
        Zip { a: a2, b: b2 }.drive_seq(sink);
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate { base: a, offset: self.offset },
            Enumerate { base: b, offset: self.offset + index },
        )
    }

    fn drive_seq(self, sink: &mut impl FnMut(Self::Item)) {
        let mut i = self.offset;
        self.base.drive_seq(&mut |x| {
            sink((i, x));
            i += 1;
        });
    }
}

// ---------------------------------------------------------------------------
// Sources: ranges, slices, vectors.
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                if self.end > self.start { (self.end - self.start) as usize } else { 0 }
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                debug_assert!(mid <= self.end);
                (RangeIter { start: self.start, end: mid }, RangeIter { start: mid, end: self.end })
            }

            fn drive_seq(self, sink: &mut impl FnMut($t)) {
                for v in self.start..self.end {
                    sink(v);
                }
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { start: self.start, end: self.end }
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangeIter<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(end < <$t>::MAX, "inclusive range ending at MAX is unsupported");
                if start > end {
                    RangeIter { start, end: start }
                } else {
                    RangeIter { start, end: end + 1 }
                }
            }
        }
    )*};
}

impl_range_source!(usize, u32, u64, i32, i64);

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (SliceIter { slice: a }, SliceIter { slice: b })
    }

    fn drive_seq(self, sink: &mut impl FnMut(&'a T)) {
        for x in self.slice {
            sink(x);
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct SliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (SliceIterMut { slice: a }, SliceIterMut { slice: b })
    }

    fn drive_seq(self, sink: &mut impl FnMut(&'a mut T)) {
        for x in self.slice {
            sink(x);
        }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Iter = SliceIterMut<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> SliceIterMut<'a, T> {
        SliceIterMut { slice: self }
    }
}

/// Parallel iterator over mutable, non-overlapping chunks of a slice.
pub struct ChunksMutIter<'a, T> {
    slice: &'a mut [T],
    chunk: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMutIter<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMutIter { slice: a, chunk: self.chunk },
            ChunksMutIter { slice: b, chunk: self.chunk },
        )
    }

    fn drive_seq(self, sink: &mut impl FnMut(&'a mut [T])) {
        for c in self.slice.chunks_mut(self.chunk) {
            sink(c);
        }
    }
}

/// `par_chunks_mut` over slices (mirrors `rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Mutable chunks of `chunk_size` elements (last may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be nonzero");
        ChunksMutIter { slice: self, chunk: chunk_size }
    }
}

/// Owning parallel iterator over a vector.
pub struct VecIter<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, VecIter { vec: tail })
    }

    fn drive_seq(self, sink: &mut impl FnMut(T)) {
        for x in self.vec {
            sink(x);
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { vec: self }
    }
}

/// One-stop imports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zip_and_enumerate_line_up() {
        let a = vec![10u64, 20, 30, 40];
        let mut b = vec![0u64; 4];
        b.par_iter_mut().zip(a.par_iter()).enumerate().for_each(|(i, (dst, src))| {
            *dst = *src + i as u64;
        });
        assert_eq!(b, vec![10, 21, 32, 43]);
    }

    #[test]
    fn sum_and_reduce_match_sequential() {
        let data: Vec<u64> = (0..10_000).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, data.iter().sum::<u64>());
        let (or_all, and_all) = data
            .par_iter()
            .map(|&k| (k, k))
            .reduce(|| (0u64, u64::MAX), |(o1, a1), (o2, a2)| (o1 | o2, a1 & a2));
        assert_eq!(or_all, data.iter().fold(0, |a, &b| a | b));
        assert_eq!(and_all, data.iter().fold(u64::MAX, |a, &b| a & b));
    }

    #[test]
    fn min_by_key_is_deterministic_on_ties() {
        let data: Vec<(i64, usize)> = (0..100).map(|i| (i as i64 % 5, i)).collect();
        let got = data.par_iter().map(|&p| p).min_by_key(|&(k, i)| (k, i));
        assert_eq!(got, Some((0, 0)));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let outer = current_num_threads();
        assert!(outer >= 1);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn chunks_mut_covers_all_elements() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(100).enumerate().for_each(|(ci, chunk)| {
            for x in chunk {
                *x = ci as u64;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[999], 9);
        assert_eq!(data[1002], 10);
    }
}
