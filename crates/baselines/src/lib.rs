#![warn(missing_docs)]

//! Baseline decoders: every comparator the paper's related-work section
//! discusses, implemented from the published descriptions.
//!
//! | Module | Algorithm | Paper reference |
//! |---|---|---|
//! | [`omp`] | Orthogonal Matching Pursuit | Pati et al. '93, §I-B |
//! | [`basis_pursuit`] | ℓ1-minimization / Basis Pursuit via LP | Donoho–Tanner '06, Foucart–Rauhut '13 |
//! | [`amp`] | Approximate Message Passing | Alaoui et al. '19 |
//! | [`peeling`] | Sparse-graph peeling decoder | Karimi et al. '19 (graph-code family) |
//! | [`binary_gt`] | COMP / DD on OR queries | Aldridge et al. '19 survey, §I-D discussion |
//! | [`control`] | Random guess + Ψ-only ablation | — |
//!
//! All additive-channel baselines implement [`AdditiveDecoder`] so the
//! comparison experiment (`baselines_table`) can sweep them uniformly. The
//! OR-channel group-testing decoders and the peeling decoder come with their
//! own channels/designs, mirroring how the original papers set them up.

use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_linalg::Matrix;

pub mod amp;
pub mod basis_pursuit;
pub mod binary_gt;
pub mod control;
pub mod omp;
pub mod peeling;

/// A decoder for the additive (counting) channel on the paper's design.
pub trait AdditiveDecoder {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Reconstruct a weight-`k` signal from `(G, y)`.
    fn reconstruct(&self, design: &CsrDesign, y: &[u64], k: usize) -> Signal;
}

/// Materialize the multiplicity-weighted biadjacency matrix `A (m×n)` used
/// by the dense compressed-sensing baselines.
///
/// Row `q` holds the multiplicities `A_iq`; memory is `m·n` doubles, so this
/// is only for baseline-scale instances (the MN path never densifies).
pub fn dense_biadjacency(design: &CsrDesign) -> Matrix {
    let (m, n) = (design.m(), design.n());
    let mut a = Matrix::zeros(m, n);
    for q in 0..m {
        let (entries, mults) = design.query_row(q);
        for (&e, &c) in entries.iter().zip(mults) {
            a[(q, e as usize)] = c as f64;
        }
    }
    a
}

/// Center the biadjacency columns and the observation vector: subtracts the
/// per-column draw expectation `Γ/n` from `A` and the signal contribution
/// `k·Γ/n` from `y`. The CS baselines need this because raw pooling columns
/// all share the mean direction, which swamps correlation screening.
pub fn centered_system(design: &CsrDesign, y: &[u64], k: usize) -> (Matrix, Vec<f64>) {
    let mut a = dense_biadjacency(design);
    let mean = design.gamma() as f64 / design.n() as f64;
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            a[(r, c)] -= mean;
        }
    }
    let shift = k as f64 * mean;
    let yc: Vec<f64> = y.iter().map(|&v| v as f64 - shift).collect();
    (a, yc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_core::query::execute_queries;
    use pooled_rng::SeedSequence;

    #[test]
    fn dense_biadjacency_matches_query_semantics() {
        let seeds = SeedSequence::new(1);
        let d = CsrDesign::sample(40, 12, 20, &seeds);
        let sigma = Signal::random(40, 5, &mut seeds.child("s", 0).rng());
        let a = dense_biadjacency(&d);
        let y = execute_queries(&d, &sigma);
        let x: Vec<f64> = sigma.dense().iter().map(|&b| b as f64).collect();
        let ax = a.matvec(&x);
        for (yi, axi) in y.iter().zip(&ax) {
            assert!((*yi as f64 - axi).abs() < 1e-9);
        }
    }

    #[test]
    fn centered_system_has_near_zero_y_mean_for_typical_signal() {
        let seeds = SeedSequence::new(2);
        let (n, k, m) = (200usize, 20usize, 60usize);
        let d = CsrDesign::sample(n, m, n / 2, &seeds);
        let sigma = Signal::random(n, k, &mut seeds.child("s", 0).rng());
        let y = execute_queries(&d, &sigma);
        let (_, yc) = centered_system(&d, &y, k);
        let mean = yc.iter().sum::<f64>() / yc.len() as f64;
        // y_q ≈ k·Γ/n = 10 ⇒ centered mean near 0 (within a few std errs).
        assert!(mean.abs() < 3.0, "centered mean {mean}");
    }

    #[test]
    fn centered_matrix_row_sums_are_centered() {
        let seeds = SeedSequence::new(3);
        let d = CsrDesign::sample(50, 8, 25, &seeds);
        let y = vec![0u64; 8];
        let (a, _) = centered_system(&d, &y, 0);
        for r in 0..a.rows() {
            let s: f64 = a.row(r).iter().sum();
            // Each row sums to Γ − n·(Γ/n) = 0 exactly.
            assert!(s.abs() < 1e-9, "row {r} sums to {s}");
        }
    }
}
