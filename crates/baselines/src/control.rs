//! Control baselines: the floor every real decoder must clear.
//!
//! * [`RandomGuessDecoder`] — `k` uniform indices; expected overlap `k/n`.
//! * [`PsiOnlyDecoder`] — ranks by the raw neighborhood sum `Ψ_i` *without*
//!   the `Δ*_i·k/2` centering of Algorithm 1. This is the ablation DESIGN.md
//!   calls out: it shows how much the degree-fluctuation correction buys.

use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::matvec::scatter_distinct_u64;
use pooled_design::PoolingDesign;
use pooled_rng::SeedSequence;

use crate::AdditiveDecoder;

/// Uniform random support of size `k` (seeded for reproducibility).
#[derive(Clone, Copy, Debug)]
pub struct RandomGuessDecoder {
    seeds: SeedSequence,
}

impl RandomGuessDecoder {
    /// Construct with a seed node.
    pub fn new(seeds: SeedSequence) -> Self {
        Self { seeds }
    }
}

impl AdditiveDecoder for RandomGuessDecoder {
    fn name(&self) -> &'static str {
        "random-guess"
    }

    fn reconstruct(&self, design: &CsrDesign, _y: &[u64], k: usize) -> Signal {
        let mut rng = self.seeds.child("guess", 0).rng();
        Signal::random(design.n(), k.min(design.n()), &mut rng)
    }
}

/// Rank by raw `Ψ_i` (no centering) — Algorithm 1 minus Line 7's
/// `−Δ*_i·k/2` term.
#[derive(Clone, Copy, Debug, Default)]
pub struct PsiOnlyDecoder;

impl PsiOnlyDecoder {
    /// Construct the decoder.
    pub fn new() -> Self {
        Self
    }
}

impl AdditiveDecoder for PsiOnlyDecoder {
    fn name(&self) -> &'static str {
        "psi-only"
    }

    fn reconstruct(&self, design: &CsrDesign, y: &[u64], k: usize) -> Signal {
        let (psi, _) = scatter_distinct_u64(design, y);
        let scores: Vec<i64> = psi.iter().map(|&p| p as i64).collect();
        let mut support = pooled_par::topk::top_k_indices(&scores, k.min(design.n()));
        support.sort_unstable();
        Signal::from_support(design.n(), support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_core::metrics::overlap_fraction;
    use pooled_core::mn::MnDecoder;
    use pooled_core::query::execute_queries;

    #[test]
    fn random_guess_overlap_is_near_k_over_n() {
        let seeds = SeedSequence::new(1);
        let (n, k) = (1000usize, 10usize);
        let d = CsrDesign::sample(n, 5, n / 2, &seeds.child("design", 0));
        let mut total = 0.0;
        let trials = 200;
        for t in 0..trials {
            let sigma = Signal::random(n, k, &mut seeds.child("sig", t).rng());
            let dec = RandomGuessDecoder::new(seeds.child("dec", t));
            let est = dec.reconstruct(&d, &[0; 5], k);
            total += overlap_fraction(&sigma, &est);
        }
        let mean = total / trials as f64;
        assert!((mean - 0.01).abs() < 0.01, "mean random overlap {mean}");
    }

    #[test]
    fn psi_only_beats_random_but_loses_to_mn() {
        // Ψ-only carries signal but is degraded by degree fluctuations; MN
        // should beat or match it, and both beat random.
        let (n, k) = (1000usize, 8usize);
        let m = 180;
        let (mut ov_psi, mut ov_mn) = (0.0, 0.0);
        let trials = 12;
        for t in 0..trials {
            let seeds = SeedSequence::new(3000 + t);
            let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
            let sigma = Signal::random(n, k, &mut seeds.child("sig", 0).rng());
            let y = execute_queries(&d, &sigma);
            let psi_est = PsiOnlyDecoder::new().reconstruct(&d, &y, k);
            let mn_est = MnDecoder::new(k).decode_csr(&d, &y).estimate;
            ov_psi += overlap_fraction(&sigma, &psi_est);
            ov_mn += overlap_fraction(&sigma, &mn_est);
        }
        ov_psi /= trials as f64;
        ov_mn /= trials as f64;
        assert!(ov_psi > 0.2, "Ψ-only carries no signal? overlap {ov_psi}");
        assert!(ov_mn + 0.05 >= ov_psi, "MN {ov_mn} should not lose to Ψ-only {ov_psi}");
    }

    #[test]
    fn decoders_have_stable_names() {
        assert_eq!(PsiOnlyDecoder::new().name(), "psi-only");
        assert_eq!(RandomGuessDecoder::new(SeedSequence::new(0)).name(), "random-guess");
    }

    #[test]
    fn random_guess_weight_is_k() {
        let seeds = SeedSequence::new(5);
        let d = CsrDesign::sample(50, 3, 25, &seeds);
        let est = RandomGuessDecoder::new(seeds).reconstruct(&d, &[0; 3], 7);
        assert_eq!(est.weight(), 7);
    }
}
