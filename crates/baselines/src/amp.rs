//! Approximate Message Passing (Alaoui, Ramdas, Krzakala, Zdeborová &
//! Jordan 2019), adapted to the binary pooled-data channel.
//!
//! AMP iterates
//!
//! ```text
//! z^t = ỹ − Ã·x^t + (z^{t−1}/m)·Σᵢ η'(vᵢ^{t−1})      (Onsager correction)
//! v^t = x^t + Ãᵀ·z^t
//! x^{t+1} = η(v^t; τ_t²)                               (posterior-mean denoiser)
//! ```
//!
//! on the *column-normalized, centered* system `Ã` (raw pooling columns all
//! share the mean direction). The denoiser is the Bayes posterior mean for
//! the Bernoulli(k/n) binary prior under a Gaussian effective channel — a
//! logistic function of `v`. Alaoui et al. prove this achieves the IT
//! threshold in the *dense* regime `k = Θ(n)`; in the sparse regime it
//! degrades, which is exactly the gap the paper's Discussion points out and
//! the `baselines_table` experiment shows.

use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;

use crate::{centered_system, AdditiveDecoder};

/// AMP decoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct AmpDecoder {
    /// Number of message-passing iterations.
    pub iterations: usize,
}

impl Default for AmpDecoder {
    fn default() -> Self {
        Self { iterations: 30 }
    }
}

impl AmpDecoder {
    /// Default decoder (30 iterations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "AMP needs at least one iteration");
        self.iterations = iterations;
        self
    }
}

/// Posterior mean of `x ∈ {0,1}` with prior `π` observed through
/// `v = x + N(0, τ²)`.
fn denoise(v: f64, pi: f64, tau2: f64) -> f64 {
    // P(1|v)/P(0|v) = π/(1−π) · exp((2v−1)/(2τ²)).
    let logit = ((pi / (1.0 - pi)).ln() + (2.0 * v - 1.0) / (2.0 * tau2)).clamp(-40.0, 40.0);
    1.0 / (1.0 + (-logit).exp())
}

/// Derivative of the denoiser w.r.t. `v` (for the Onsager term):
/// `η' = η(1−η)/τ²`.
fn denoise_prime(eta: f64, tau2: f64) -> f64 {
    eta * (1.0 - eta) / tau2
}

impl AdditiveDecoder for AmpDecoder {
    fn name(&self) -> &'static str {
        "amp"
    }

    fn reconstruct(&self, design: &CsrDesign, y: &[u64], k: usize) -> Signal {
        let n = design.n();
        let m = design.m();
        let k = k.min(n);
        if k == 0 || m == 0 {
            return Signal::from_support(n, vec![]);
        }
        let (mut a, yc) = centered_system(design, y, k);
        // Column-normalize so ‖Ã_j‖₂ ≈ 1 (AMP's scaling convention).
        for j in 0..n {
            let norm = (0..m).map(|r| a[(r, j)] * a[(r, j)]).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for r in 0..m {
                    a[(r, j)] /= norm;
                }
            }
        }
        let y_scale = {
            // y was produced by the unnormalized system; rescale by the
            // typical column norm so magnitudes stay consistent.
            let mean_norm = (design.gamma() as f64 * (1.0 - design.gamma() as f64 / n as f64)
                / n as f64
                * m as f64)
                .sqrt();
            if mean_norm > 1e-12 {
                1.0 / mean_norm
            } else {
                1.0
            }
        };
        let yv: Vec<f64> = yc.iter().map(|v| v * y_scale).collect();
        let pi = (k as f64 / n as f64).clamp(1e-9, 1.0 - 1e-9);
        let mut x = vec![pi; n];
        let mut z = yv.clone();
        let mut onsager = 0.0f64;
        for _ in 0..self.iterations {
            // z = y − A x + Onsager·z_prev
            let ax = a.matvec(&x);
            let z_prev = z.clone();
            for q in 0..m {
                z[q] = yv[q] - ax[q] + onsager * z_prev[q];
            }
            // Effective noise level.
            let tau2 = (z.iter().map(|v| v * v).sum::<f64>() / m as f64).max(1e-9);
            // v = x + Aᵀ z, then denoise.
            let atz = a.matvec_t(&z);
            let mut dsum = 0.0;
            for i in 0..n {
                let v = x[i] + atz[i];
                let eta = denoise(v, pi, tau2);
                dsum += denoise_prime(eta, tau2);
                x[i] = eta;
            }
            onsager = dsum / m as f64;
        }
        // Top-k posterior means form the support estimate.
        let scores: Vec<i64> = x.iter().map(|&v| (v * 1e12) as i64).collect();
        let mut support = pooled_par::topk::top_k_indices(&scores, k);
        support.sort_unstable();
        Signal::from_support(n, support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_core::metrics::overlap_fraction;
    use pooled_core::query::execute_queries;
    use pooled_rng::SeedSequence;

    fn run(n: usize, k: usize, m: usize, seed: u64) -> (Signal, Signal) {
        let seeds = SeedSequence::new(seed);
        let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&d, &sigma);
        let est = AmpDecoder::new().reconstruct(&d, &y, k);
        (sigma, est)
    }

    #[test]
    fn denoiser_is_a_probability() {
        for v in [-5.0, 0.0, 0.3, 1.0, 5.0] {
            for pi in [0.01, 0.3, 0.9] {
                let eta = denoise(v, pi, 0.5);
                assert!((0.0..=1.0).contains(&eta), "η({v},{pi}) = {eta}");
            }
        }
    }

    #[test]
    fn denoiser_monotone_in_observation() {
        let mut last = 0.0;
        for i in 0..40 {
            let v = -2.0 + i as f64 * 0.1;
            let eta = denoise(v, 0.2, 0.3);
            assert!(eta >= last);
            last = eta;
        }
    }

    #[test]
    fn dense_regime_recovery_with_many_queries() {
        // k = Θ(n) and generous m: AMP's home turf.
        let (n, k, m) = (300usize, 60usize, 280usize);
        let mut sum = 0.0;
        for seed in 0..4 {
            let (sigma, est) = run(n, k, m, seed);
            sum += overlap_fraction(&sigma, &est);
        }
        let mean = sum / 4.0;
        assert!(mean > 0.85, "dense-regime mean overlap {mean}");
    }

    #[test]
    fn estimate_weight_is_k() {
        let (_, est) = run(100, 10, 60, 7);
        assert_eq!(est.weight(), 10);
    }

    #[test]
    fn zero_queries_returns_empty() {
        let seeds = SeedSequence::new(8);
        let d = CsrDesign::sample(20, 0, 10, &seeds);
        let est = AmpDecoder::new().reconstruct(&d, &[], 3);
        assert_eq!(est.weight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = AmpDecoder::new().with_iterations(0);
    }
}
