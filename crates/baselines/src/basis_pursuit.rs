//! Basis Pursuit: ℓ1-minimization by linear programming.
//!
//! Solves `min Σᵢ xᵢ` s.t. `A·x = y`, `0 ≤ x ≤ 1` (the binary box makes
//! the plain ℓ1 norm equal the sum), then rounds the top-`k` coordinates.
//! This is the Donoho–Tanner / Foucart–Rauhut recipe specialized to binary
//! signals; the paper cites it at `(2+o(1))·k·ln n` queries.

use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_linalg::simplex::{solve_box_min_sum, LpOutcome};

use crate::{dense_biadjacency, AdditiveDecoder};

/// Basis-pursuit decoder (exact LP, no noise term).
#[derive(Clone, Copy, Debug, Default)]
pub struct BasisPursuitDecoder;

impl BasisPursuitDecoder {
    /// Construct the decoder.
    pub fn new() -> Self {
        Self
    }
}

impl AdditiveDecoder for BasisPursuitDecoder {
    fn name(&self) -> &'static str {
        "basis-pursuit"
    }

    fn reconstruct(&self, design: &CsrDesign, y: &[u64], k: usize) -> Signal {
        let n = design.n();
        let k = k.min(n);
        if k == 0 {
            return Signal::from_support(n, vec![]);
        }
        let a = dense_biadjacency(design);
        let yf: Vec<f64> = y.iter().map(|&v| v as f64).collect();
        let x = match solve_box_min_sum(&a, &yf, 1.0) {
            LpOutcome::Optimal { x, .. } => x,
            // Infeasible/limit should not happen on exact data; return the
            // empty estimate rather than crash mid-sweep.
            _ => return Signal::from_support(n, vec![]),
        };
        // Round: the k largest fractional coordinates.
        let scores: Vec<i64> = x.iter().map(|&v| (v * 1e12) as i64).collect();
        let support = pooled_par::topk::top_k_indices(&scores, k);
        let mut support: Vec<usize> = support.into_iter().filter(|&i| x[i] > 1e-6).collect();
        support.sort_unstable();
        Signal::from_support(n, support)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_core::query::execute_queries;
    use pooled_rng::SeedSequence;

    fn run(n: usize, k: usize, m: usize, seed: u64) -> (Signal, Signal) {
        let seeds = SeedSequence::new(seed);
        let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&d, &sigma);
        let est = BasisPursuitDecoder::new().reconstruct(&d, &y, k);
        (sigma, est)
    }

    #[test]
    fn recovers_small_instances_with_enough_queries() {
        // m = 2.5·k·ln n on a small instance: LP recovery regime.
        let (n, k) = (60usize, 3usize);
        let m = (2.5 * k as f64 * (n as f64).ln()).ceil() as usize;
        let mut exact = 0;
        for seed in 0..5 {
            let (sigma, est) = run(n, k, m, seed);
            if sigma == est {
                exact += 1;
            }
        }
        assert!(exact >= 3, "{exact}/5 exact recoveries");
    }

    #[test]
    fn weight_never_exceeds_k() {
        let (_, est) = run(50, 4, 20, 9);
        assert!(est.weight() <= 4);
    }

    #[test]
    fn k_zero_empty_estimate() {
        let seeds = SeedSequence::new(2);
        let d = CsrDesign::sample(30, 5, 15, &seeds);
        let est = BasisPursuitDecoder::new().reconstruct(&d, &[0; 5], 0);
        assert_eq!(est.weight(), 0);
    }

    #[test]
    fn ground_truth_is_lp_feasible_so_objective_at_most_k() {
        // The LP objective can never exceed k because σ itself is feasible;
        // the rounded estimate therefore has weight ≤ k.
        let (sigma, est) = run(40, 5, 30, 3);
        assert!(est.weight() <= sigma.weight());
    }
}
