//! Binary (OR-channel) group testing: COMP and DD.
//!
//! The Discussion (§I-D) compares pooled data against classic group testing,
//! where a query only reports *whether* the pool contains a positive. We
//! implement the two standard non-adaptive decoders from the Aldridge–
//! Johnson–Scarlett survey:
//!
//! * **COMP** — every entry appearing in a negative pool is zero; all
//!   others are declared positive. No false negatives.
//! * **DD** — run COMP, then declare positive only those COMP candidates
//!   that appear in some positive pool whose other members are all
//!   COMP-cleared zeros. No false positives.
//!
//! The right design for the OR channel uses pools of size `≈ n·ln2/k`
//! ([`gt_design_for`]), not the additive channel's `n/2`.

use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_rng::SeedSequence;

/// Execute queries through the OR channel: `y_q = 1{pool contains a one}`.
pub fn execute_or(design: &CsrDesign, sigma: &Signal) -> Vec<bool> {
    assert_eq!(design.n(), sigma.n(), "design and signal disagree on n");
    (0..design.m())
        .map(|q| {
            let (entries, _) = design.query_row(q);
            entries.iter().any(|&e| sigma.is_one(e as usize))
        })
        .collect()
}

/// Bernoulli-style design tuned for the OR channel: pool size
/// `Γ = n·ln2/k` (clamped into `[1, n]`).
pub fn gt_design_for(n: usize, m: usize, k: usize, seeds: &SeedSequence) -> CsrDesign {
    assert!(k >= 1, "group-testing design needs k ≥ 1");
    let gamma = ((n as f64 * std::f64::consts::LN_2 / k as f64).round() as usize).clamp(1, n);
    CsrDesign::sample(n, m, gamma, seeds)
}

/// COMP: everything not ruled out by a negative pool is declared positive.
pub fn comp(design: &CsrDesign, or_results: &[bool]) -> Signal {
    assert_eq!(or_results.len(), design.m(), "result length must equal m");
    let n = design.n();
    let mut cleared = vec![false; n];
    for (q, &positive) in or_results.iter().enumerate() {
        if !positive {
            let (entries, _) = design.query_row(q);
            for &e in entries {
                cleared[e as usize] = true;
            }
        }
    }
    let support: Vec<usize> = (0..n).filter(|&i| !cleared[i]).collect();
    Signal::from_support(n, support)
}

/// DD (definite defectives): the subset of COMP candidates provably
/// positive. Never produces false positives.
pub fn dd(design: &CsrDesign, or_results: &[bool]) -> Signal {
    let candidates = comp(design, or_results);
    let n = design.n();
    let mut definite = vec![false; n];
    for (q, &positive) in or_results.iter().enumerate() {
        if positive {
            let (entries, _) = design.query_row(q);
            let live: Vec<usize> =
                entries.iter().map(|&e| e as usize).filter(|&e| candidates.is_one(e)).collect();
            // A positive pool whose only candidate member is `e` proves `e`.
            if let [only] = live.as_slice() {
                definite[*only] = true;
            }
        }
    }
    let support: Vec<usize> = (0..n).filter(|&i| definite[i]).collect();
    Signal::from_support(n, support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::SeedSequence;

    fn setup(n: usize, k: usize, m: usize, seed: u64) -> (CsrDesign, Signal, Vec<bool>) {
        let seeds = SeedSequence::new(seed);
        let d = gt_design_for(n, m, k, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let or = execute_or(&d, &sigma);
        (d, sigma, or)
    }

    #[test]
    fn or_channel_semantics() {
        let d = CsrDesign::from_pools(4, &[vec![0, 1], vec![2, 3], vec![3]]);
        let sigma = Signal::from_support(4, vec![0, 3]);
        assert_eq!(execute_or(&d, &sigma), vec![true, true, true]);
        let zero = Signal::from_support(4, vec![]);
        assert_eq!(execute_or(&d, &zero), vec![false, false, false]);
    }

    #[test]
    fn comp_has_no_false_negatives() {
        for seed in 0..6 {
            let (d, sigma, or) = setup(500, 10, 120, seed);
            let est = comp(&d, &or);
            for &i in sigma.support() {
                assert!(est.is_one(i), "seed {seed}: COMP dropped one-entry {i}");
            }
        }
    }

    #[test]
    fn dd_has_no_false_positives() {
        for seed in 0..6 {
            let (d, sigma, or) = setup(500, 10, 120, seed);
            let est = dd(&d, &or);
            for &i in est.support() {
                assert!(sigma.is_one(i), "seed {seed}: DD invented one-entry {i}");
            }
        }
    }

    #[test]
    fn comp_recovers_with_generous_tests() {
        // m well above the COMP threshold e·k·ln(n/k)… use 3·k·log2(n).
        let n = 300;
        let k = 5;
        let m = (3.0 * k as f64 * (n as f64).log2()).ceil() as usize;
        let mut exact = 0;
        for seed in 0..6 {
            let (d, sigma, or) = setup(n, k, m, 50 + seed);
            if comp(&d, &or) == sigma {
                exact += 1;
            }
        }
        assert!(exact >= 4, "{exact}/6 COMP recoveries at m={m}");
    }

    #[test]
    fn dd_subset_of_comp() {
        let (d, _, or) = setup(400, 8, 60, 9);
        let c = comp(&d, &or);
        let def = dd(&d, &or);
        for &i in def.support() {
            assert!(c.is_one(i));
        }
    }

    #[test]
    fn all_negative_results_clear_everything() {
        let (d, _, _) = setup(100, 3, 40, 11);
        let all_neg = vec![false; d.m()];
        let est = comp(&d, &all_neg);
        // Entries never touched by any pool stay candidates; with pools of
        // size ~n·ln2/k = 23 and 40 queries, every entry should be touched.
        assert!(est.weight() <= 5, "weight {}", est.weight());
    }

    #[test]
    #[should_panic(expected = "must equal m")]
    fn comp_checks_result_length() {
        let d = CsrDesign::sample(10, 3, 5, &SeedSequence::new(1));
        let _ = comp(&d, &[true]);
    }
}
