//! Orthogonal Matching Pursuit (Pati, Rezaiifar & Krishnaprasad 1993).
//!
//! Greedy compressed sensing: repeatedly pick the (centered) design column
//! best correlated with the residual, re-project onto the selected columns,
//! and iterate `k` times. The selected column set is the support estimate.
//! The paper quotes OMP at `(2+o(1))·k·ln n` queries — noticeably above MN
//! on this design, which the `baselines_table` experiment reproduces.

use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_linalg::lstsq::{residual, solve_least_squares};
use pooled_linalg::Matrix;

use crate::{centered_system, AdditiveDecoder};

/// OMP decoder configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmpDecoder {
    /// Stop early when the residual norm² falls below this (0 disables).
    pub residual_tol: f64,
}

impl OmpDecoder {
    /// Default decoder (runs the full `k` iterations).
    pub fn new() -> Self {
        Self { residual_tol: 1e-9 }
    }
}

impl AdditiveDecoder for OmpDecoder {
    fn name(&self) -> &'static str {
        "omp"
    }

    fn reconstruct(&self, design: &CsrDesign, y: &[u64], k: usize) -> Signal {
        let n = design.n();
        let k = k.min(n);
        if k == 0 {
            return Signal::from_support(n, vec![]);
        }
        let (a, yc) = centered_system(design, y, k);
        let col_norms: Vec<f64> = (0..n)
            .map(|j| (0..a.rows()).map(|r| a[(r, j)] * a[(r, j)]).sum::<f64>().sqrt())
            .collect();
        let mut selected: Vec<usize> = Vec::with_capacity(k);
        let mut in_set = vec![false; n];
        let mut r = yc.clone();
        for _ in 0..k.min(a.rows()) {
            // Correlation screening.
            let corr = a.matvec_t(&r);
            let mut best: Option<(usize, f64)> = None;
            for j in 0..n {
                if in_set[j] || col_norms[j] < 1e-12 {
                    continue;
                }
                let score = corr[j].abs() / col_norms[j];
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((j, score));
                }
            }
            let Some((j, _)) = best else { break };
            selected.push(j);
            in_set[j] = true;
            // Re-project: least squares on the selected columns.
            let sub = submatrix(&a, &selected);
            let x = solve_least_squares(&sub, &yc);
            r = residual(&sub, &x, &yc);
            if pooled_linalg::lstsq::norm2_sq(&r) < self.residual_tol {
                break;
            }
        }
        // If early exit left fewer than k entries, the estimate is smaller —
        // that is the honest OMP output (it found a consistent sparser fit).
        selected.sort_unstable();
        Signal::from_support(n, selected)
    }
}

fn submatrix(a: &Matrix, cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), cols.len());
    for r in 0..a.rows() {
        for (cc, &j) in cols.iter().enumerate() {
            out[(r, cc)] = a[(r, j)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_core::metrics::overlap_fraction;
    use pooled_core::query::execute_queries;
    use pooled_rng::SeedSequence;

    fn run(n: usize, k: usize, m: usize, seed: u64) -> (Signal, Signal) {
        let seeds = SeedSequence::new(seed);
        let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&d, &sigma);
        let est = OmpDecoder::new().reconstruct(&d, &y, k);
        (sigma, est)
    }

    #[test]
    fn recovers_with_generous_queries() {
        // m = 3·k·ln n queries: OMP's comfortable regime.
        let (n, k) = (200usize, 4usize);
        let m = (3.0 * k as f64 * (n as f64).ln()).ceil() as usize;
        let mut total_overlap = 0.0;
        for seed in 0..5 {
            let (sigma, est) = run(n, k, m, seed);
            total_overlap += overlap_fraction(&sigma, &est);
        }
        assert!(total_overlap / 5.0 > 0.8, "mean overlap {}", total_overlap / 5.0);
    }

    #[test]
    fn estimate_weight_bounded_by_k() {
        let (_, est) = run(100, 5, 80, 42);
        assert!(est.weight() <= 5);
    }

    #[test]
    fn k_zero_returns_empty() {
        let seeds = SeedSequence::new(1);
        let d = CsrDesign::sample(50, 10, 25, &seeds);
        let est = OmpDecoder::new().reconstruct(&d, &[0; 10], 0);
        assert_eq!(est.weight(), 0);
    }

    #[test]
    fn degrades_with_too_few_queries() {
        // A handful of queries cannot drive OMP to exact recovery reliably.
        let mut exact = 0;
        for seed in 0..5 {
            let (sigma, est) = run(200, 6, 5, 100 + seed);
            if sigma == est {
                exact += 1;
            }
        }
        assert!(exact <= 1, "{exact}/5 exact with m=5");
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(OmpDecoder::new().name(), "omp");
    }
}
