//! Sparse-graph peeling decoder — the Karimi et al. (2019) family.
//!
//! Karimi et al. decode quantitative group tests over *sparse* graph codes:
//! pools are small enough that many queries are fully determined
//! (“saturated” or “empty”) and resolving their members triggers a peeling
//! cascade, exactly like LT/LDPC erasure decoding. Two rules drive it:
//!
//! * residual count 0 ⇒ every unresolved member is a **zero**;
//! * residual count = total multiplicity of unresolved members ⇒ every
//!   unresolved member is a **one**.
//!
//! Each resolution updates the member's other queries, possibly unlocking
//! them. The decoder either resolves everything (success) or stalls on a
//! core (failure / partial output).
//!
//! Unlike the MN pipeline this needs a *sparse* design: pool size
//! `Γ' = ν·n/k` for a constant ν (≈1–2), so a pool holds O(1) positives.
//! [`sparse_design_for`] picks that design; the decoder itself runs on any
//! [`CsrDesign`].

use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_rng::SeedSequence;

/// Result of a peeling run.
#[derive(Clone, Debug)]
pub struct PeelOutcome {
    /// Per-entry resolution: `Some(true)` = one, `Some(false)` = zero,
    /// `None` = stuck in the core.
    pub resolved: Vec<Option<bool>>,
    /// Whether every entry was resolved.
    pub complete: bool,
    /// Number of peeling steps performed (resolved queries).
    pub steps: usize,
}

impl PeelOutcome {
    /// Convert to a signal; unresolved entries default to zero (the
    /// Bayes-optimal guess in the sparse regime).
    pub fn to_signal(&self) -> Signal {
        let support: Vec<usize> = self
            .resolved
            .iter()
            .enumerate()
            .filter_map(|(i, r)| matches!(r, Some(true)).then_some(i))
            .collect();
        Signal::from_support(self.resolved.len(), support)
    }
}

/// Recommended sparse design for peeling: pool size `ν·n/k` (clamped to
/// `[1, n]`), same seed contract as every other design.
pub fn sparse_design_for(n: usize, m: usize, k: usize, nu: f64, seeds: &SeedSequence) -> CsrDesign {
    assert!(k >= 1, "peeling design needs k ≥ 1");
    assert!(nu > 0.0, "pool-size factor must be positive");
    let gamma = ((nu * n as f64 / k as f64).round() as usize).clamp(1, n);
    CsrDesign::sample(n, m, gamma, seeds)
}

/// Run the peeling decoder on `(G, y)`.
///
/// # Panics
/// Panics if `y.len() != design.m()`.
pub fn peel(design: &CsrDesign, y: &[u64]) -> PeelOutcome {
    let (n, m) = (design.n(), design.m());
    assert_eq!(y.len(), m, "result vector length must equal m");
    let mut resolved: Vec<Option<bool>> = vec![None; n];
    // Per-query residual state.
    let mut residual: Vec<i64> = y.iter().map(|&v| v as i64).collect();
    let mut unresolved_mult: Vec<i64> = (0..m)
        .map(|q| {
            let (_, mults) = design.query_row(q);
            mults.iter().map(|&c| c as i64).sum()
        })
        .collect();
    let mut queue: Vec<usize> = (0..m).collect();
    let mut in_queue = vec![true; m];
    let mut steps = 0usize;
    while let Some(q) = queue.pop() {
        in_queue[q] = false;
        let decide = if residual[q] == 0 {
            Some(false)
        } else if residual[q] == unresolved_mult[q] && unresolved_mult[q] > 0 {
            Some(true)
        } else {
            None
        };
        let Some(value) = decide else { continue };
        steps += 1;
        // Resolve every still-unresolved member of q to `value`.
        let (entries, _) = design.query_row(q);
        let to_resolve: Vec<usize> =
            entries.iter().map(|&e| e as usize).filter(|&e| resolved[e].is_none()).collect();
        for e in to_resolve {
            resolved[e] = Some(value);
            let (qs, mults) = design.entry_row(e);
            for (&qq, &c) in qs.iter().zip(mults) {
                let qq = qq as usize;
                unresolved_mult[qq] -= c as i64;
                if value {
                    residual[qq] -= c as i64;
                }
                debug_assert!(unresolved_mult[qq] >= 0);
                if !in_queue[qq] {
                    in_queue[qq] = true;
                    queue.push(qq);
                }
            }
        }
    }
    let complete = resolved.iter().all(|r| r.is_some());
    PeelOutcome { resolved, complete, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_core::metrics::overlap_fraction;
    use pooled_core::query::execute_queries;

    fn run(n: usize, k: usize, m: usize, nu: f64, seed: u64) -> (Signal, PeelOutcome) {
        let seeds = SeedSequence::new(seed);
        let d = sparse_design_for(n, m, k, nu, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&d, &sigma);
        (sigma, peel(&d, &y))
    }

    #[test]
    fn hand_example_resolves_fully() {
        // Queries: {0,1} y=1, {1} y=1, {2} y=0.
        // {1}=1 resolves entry 1 ⇒ {0,1} residual 0 resolves 0 ⇒ done.
        let d = CsrDesign::from_pools(3, &[vec![0, 1], vec![1], vec![2]]);
        let sigma = Signal::from_support(3, vec![1]);
        let y = execute_queries(&d, &sigma);
        let out = peel(&d, &y);
        assert!(out.complete);
        assert_eq!(out.to_signal(), sigma);
    }

    #[test]
    fn multiplicity_aware_saturation() {
        // Query {0,0,1} with y = 2 is *not* saturated (needs y = 3); with
        // σ = {0} only, y = 2 and peeling must not mark entry 1 as one.
        let d = CsrDesign::from_pools(2, &[vec![0, 0, 1], vec![0]]);
        let sigma = Signal::from_support(2, vec![0]);
        let y = execute_queries(&d, &sigma);
        assert_eq!(y, vec![2, 1]);
        let out = peel(&d, &y);
        assert!(out.complete);
        assert_eq!(out.to_signal(), sigma);
    }

    #[test]
    fn recovers_sparse_instances_whp() {
        // n=400, k=8, pools of ~50, m=160 ⇒ plenty of empty/saturated pools.
        let mut exact = 0;
        for seed in 0..6 {
            let (sigma, out) = run(400, 8, 160, 1.0, seed);
            if out.complete && out.to_signal() == sigma {
                exact += 1;
            }
        }
        assert!(exact >= 4, "{exact}/6 complete peels");
    }

    #[test]
    fn stalls_gracefully_with_too_few_queries() {
        let (sigma, out) = run(400, 20, 10, 1.0, 77);
        // Must not crash; partial output still has no false claims among
        // resolved entries... verify resolved-one entries are truly ones.
        for (i, r) in out.resolved.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, sigma.is_one(i), "entry {i} mis-resolved");
            }
        }
    }

    #[test]
    fn peeling_never_misclassifies_on_exact_data() {
        for seed in 0..8 {
            let (sigma, out) = run(300, 10, 120, 1.5, 200 + seed);
            for (i, r) in out.resolved.iter().enumerate() {
                if let Some(v) = r {
                    assert_eq!(*v, sigma.is_one(i), "seed {seed} entry {i}");
                }
            }
        }
    }

    #[test]
    fn partial_output_overlap_reasonable() {
        let (sigma, out) = run(500, 12, 100, 1.0, 5);
        let est = out.to_signal();
        // Unresolved default to zero, so overlap counts resolved ones only.
        let ov = overlap_fraction(&sigma, &est);
        assert!((0.0..=1.0).contains(&ov));
    }

    #[test]
    fn empty_query_set_resolves_nothing() {
        let d = CsrDesign::sample(10, 0, 5, &SeedSequence::new(1));
        let out = peel(&d, &[]);
        assert!(!out.complete);
        assert!(out.resolved.iter().all(|r| r.is_none()));
    }

    #[test]
    #[should_panic(expected = "must equal m")]
    fn length_mismatch_panics() {
        let d = CsrDesign::sample(10, 3, 5, &SeedSequence::new(1));
        let _ = peel(&d, &[0, 0]);
    }
}
