//! Unbiased bounded integer sampling.
//!
//! The pooling design draws `Γ = n/2` uniform indices *per query*; any modulo
//! bias would systematically skew low indices and silently shift the empirical
//! phase-transition points we are trying to measure. We therefore use Lemire's
//! multiply-with-rejection method (“Fast Random Integer Generation in an
//! Interval”, TOMACS 2019), which is exact and needs ~1 multiplication per
//! draw in the common case.

use crate::Rng64;

/// Draw a uniform integer in `[0, bound)` using Lemire's debiased
/// multiply-shift.
///
/// # Panics
/// Panics if `bound == 0`.
#[inline]
pub fn lemire_u64<R: Rng64 + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "bound must be positive");
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        // Rejection threshold: 2^64 mod bound.
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A fixed-bound sampler that precomputes the rejection threshold.
///
/// Useful in the design-sampling hot loop where millions of draws share the
/// same bound `n`.
#[derive(Clone, Copy, Debug)]
pub struct FixedBound {
    bound: u64,
    threshold: u64,
}

impl FixedBound {
    /// Prepare a sampler for `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn new(bound: u64) -> Self {
        assert!(bound > 0, "bound must be positive");
        Self { bound, threshold: bound.wrapping_neg() % bound }
    }

    /// The exclusive upper bound.
    #[inline]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Draw one uniform value in `[0, bound)`.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let m = (rng.next_u64() as u128) * (self.bound as u128);
            if (m as u64) >= self.threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mt19937_64, SplitMix64};

    #[test]
    fn bound_one_always_zero() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(lemire_u64(&mut rng, 1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        let mut rng = SplitMix64::new(1);
        let _ = lemire_u64(&mut rng, 0);
    }

    #[test]
    fn fixed_bound_matches_free_function() {
        // Identical rejection scheme ⇒ identical streams.
        let mut a = Mt19937_64::new(42);
        let mut b = Mt19937_64::new(42);
        let fixed = FixedBound::new(1000);
        for _ in 0..10_000 {
            assert_eq!(lemire_u64(&mut a, 1000), fixed.sample(&mut b));
        }
    }

    #[test]
    fn chi_square_uniformity_small_bound() {
        // 60k draws over 6 cells: chi² with 5 dof, reject above 20.5 (p≈0.001).
        let mut rng = Mt19937_64::new(7);
        let mut counts = [0f64; 6];
        let draws = 60_000;
        for _ in 0..draws {
            counts[lemire_u64(&mut rng, 6) as usize] += 1.0;
        }
        let expected = draws as f64 / 6.0;
        let chi2: f64 = counts.iter().map(|c| (c - expected).powi(2) / expected).sum();
        assert!(chi2 < 20.5, "chi²={chi2}");
    }

    #[test]
    fn powers_of_two_have_no_rejection_threshold() {
        let fb = FixedBound::new(1 << 20);
        assert_eq!(fb.threshold, 0);
    }

    #[test]
    fn near_max_bound_is_handled() {
        let mut rng = SplitMix64::new(3);
        let bound = u64::MAX - 1;
        for _ in 0..50 {
            assert!(lemire_u64(&mut rng, bound) < bound);
        }
    }
}
