//! Shuffles and subset sampling.
//!
//! Signals are drawn “uniformly at random from all 0–1 vectors of length `n`
//! with exactly `k` non-zero entries” (paper §II). We provide three exact
//! ways to produce such supports, trading memory for speed:
//!
//! * [`fisher_yates`] — full in-place shuffle, O(n).
//! * [`sample_distinct_floyd`] — Floyd's algorithm, O(k) memory and expected
//!   O(k) time; the default for sparse supports (`k = n^θ ≪ n`).
//! * [`reservoir_sample`] — single-pass reservoir sampling for streamed
//!   universes.

use crate::Rng64;
use std::collections::HashSet;

/// In-place Fisher–Yates shuffle.
pub fn fisher_yates<T, R: Rng64 + ?Sized>(items: &mut [T], rng: &mut R) {
    let n = items.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// Sample `k` *distinct* values from `{0, …, n−1}` with Floyd's algorithm.
///
/// Returns the sample in ascending order (sorted for deterministic
/// downstream iteration). Expected time O(k log k) dominated by the final
/// sort; memory O(k).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct_floyd<R: Rng64 + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct values from a universe of {n}");
    let mut chosen: HashSet<usize> = HashSet::with_capacity(k * 2);
    // Floyd: for j = n-k .. n-1, pick t in [0, j]; insert t unless taken, else j.
    for j in (n - k)..n {
        let t = rng.below(j as u64 + 1) as usize;
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut out: Vec<usize> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

/// Sample `k` distinct values from `{0, …, n−1}` into `out` (ascending),
/// reusing its capacity — the allocation-free twin of
/// [`sample_distinct_floyd`] for serving loops that draw one signal per
/// job.
///
/// Same Floyd recursion, but membership is tracked by sorted insertion
/// into `out` itself (binary search + `O(k)` shift) instead of a hash
/// set: `O(k²)` worst case, which for the sparse supports this repo draws
/// (`k = n^θ`, tens to hundreds) is faster than hashing and touches no
/// heap after `out` has grown once.
///
/// Note: the *set* of sampled values is distributed identically to
/// [`sample_distinct_floyd`], but for a given RNG stream the two draws
/// differ (the hash-set variant resolves collisions in iteration order).
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_distinct_floyd_into<R: Rng64 + ?Sized>(
    n: usize,
    k: usize,
    rng: &mut R,
    out: &mut Vec<usize>,
) {
    assert!(k <= n, "cannot sample {k} distinct values from a universe of {n}");
    out.clear();
    out.reserve(k);
    for j in (n - k)..n {
        let t = rng.below(j as u64 + 1) as usize;
        match out.binary_search(&t) {
            Err(pos) => out.insert(pos, t),
            Ok(_) => {
                let pos = out.binary_search(&j).expect_err("j exceeds every prior draw");
                out.insert(pos, j);
            }
        }
    }
}

/// Single-pass reservoir sample of `k` items from an iterator (Algorithm R).
///
/// Returns fewer than `k` items if the iterator is shorter than `k`. Order of
/// the returned reservoir is unspecified.
pub fn reservoir_sample<I, T, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng64 + ?Sized,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (seen, item) in iter.into_iter().enumerate() {
        if seen < k {
            reservoir.push(item);
        } else {
            let j = rng.below(seen as u64 + 1) as usize;
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Sample `count` values from `{0, …, n−1}` **with replacement** into `out`.
///
/// This is the exact draw the pooling design performs per query; exposed here
/// so tests can cross-validate the design crate's streaming path.
pub fn sample_with_replacement<R: Rng64 + ?Sized>(
    n: usize,
    count: usize,
    rng: &mut R,
    out: &mut Vec<usize>,
) {
    assert!(n > 0, "universe must be non-empty");
    out.clear();
    out.reserve(count);
    let fb = crate::bounded::FixedBound::new(n as u64);
    for _ in 0..count {
        out.push(fb.sample(rng) as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mt19937_64, SplitMix64};

    #[test]
    fn fisher_yates_is_permutation() {
        let mut rng = Mt19937_64::new(11);
        let mut v: Vec<u32> = (0..1000).collect();
        fisher_yates(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(v, (0..1000).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fisher_yates_handles_tiny_inputs() {
        let mut rng = SplitMix64::new(1);
        let mut empty: Vec<u8> = vec![];
        fisher_yates(&mut empty, &mut rng);
        let mut one = vec![42];
        fisher_yates(&mut one, &mut rng);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn floyd_returns_k_distinct_sorted() {
        let mut rng = Mt19937_64::new(5);
        for (n, k) in [(100, 10), (100, 100), (10, 0), (1, 1), (1_000_000, 50)] {
            let s = sample_distinct_floyd(n, k, &mut rng);
            assert_eq!(s.len(), k);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn floyd_rejects_oversized_k() {
        let mut rng = SplitMix64::new(1);
        let _ = sample_distinct_floyd(3, 4, &mut rng);
    }

    #[test]
    fn floyd_is_approximately_uniform() {
        // Each element of {0..9} should appear in a 5-subset with prob 1/2.
        let mut rng = Mt19937_64::new(123);
        let mut hits = [0u32; 10];
        let trials = 20_000;
        for _ in 0..trials {
            for x in sample_distinct_floyd(10, 5, &mut rng) {
                hits[x] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let p = h as f64 / trials as f64;
            assert!((p - 0.5).abs() < 0.02, "element {i} hit with p={p}");
        }
    }

    #[test]
    fn floyd_into_returns_k_distinct_sorted_and_reuses_buffer() {
        let mut rng = Mt19937_64::new(7);
        let mut out = Vec::new();
        for (n, k) in [(100, 10), (100, 100), (10, 0), (1, 1), (1_000_000, 50)] {
            sample_distinct_floyd_into(n, k, &mut rng, &mut out);
            assert_eq!(out.len(), k);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
            assert!(out.iter().all(|&x| x < n));
        }
        // Repeated draws at a fixed shape never grow the buffer again.
        sample_distinct_floyd_into(500, 20, &mut rng, &mut out);
        let cap = out.capacity();
        for _ in 0..50 {
            sample_distinct_floyd_into(500, 20, &mut rng, &mut out);
            assert_eq!(out.capacity(), cap);
        }
    }

    #[test]
    fn floyd_into_is_approximately_uniform() {
        let mut rng = Mt19937_64::new(321);
        let mut hits = [0u32; 10];
        let mut out = Vec::new();
        let trials = 20_000;
        for _ in 0..trials {
            sample_distinct_floyd_into(10, 5, &mut rng, &mut out);
            for &x in &out {
                hits[x] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let p = h as f64 / trials as f64;
            assert!((p - 0.5).abs() < 0.02, "element {i} hit with p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn floyd_into_rejects_oversized_k() {
        let mut rng = SplitMix64::new(1);
        sample_distinct_floyd_into(3, 4, &mut rng, &mut Vec::new());
    }

    #[test]
    fn reservoir_matches_short_input() {
        let mut rng = SplitMix64::new(2);
        let got = reservoir_sample(0..3, 10, &mut rng);
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, vec![0, 1, 2]);
    }

    #[test]
    fn reservoir_size_and_membership() {
        let mut rng = Mt19937_64::new(8);
        let got = reservoir_sample(0..10_000, 32, &mut rng);
        assert_eq!(got.len(), 32);
        assert!(got.iter().all(|&x| x < 10_000));
    }

    #[test]
    fn reservoir_zero_k_is_empty() {
        let mut rng = SplitMix64::new(2);
        assert!(reservoir_sample(0..100, 0, &mut rng).is_empty());
    }

    #[test]
    fn with_replacement_hits_whole_range_eventually() {
        let mut rng = Mt19937_64::new(31);
        let mut out = Vec::new();
        sample_with_replacement(8, 10_000, &mut rng, &mut out);
        assert_eq!(out.len(), 10_000);
        let mut seen = [false; 8];
        for &x in &out {
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "10k draws missed some of 8 values");
    }

    #[test]
    fn with_replacement_reuses_buffer() {
        let mut rng = SplitMix64::new(4);
        let mut out = vec![999; 5];
        sample_with_replacement(10, 3, &mut rng, &mut out);
        assert_eq!(out.len(), 3);
    }
}
