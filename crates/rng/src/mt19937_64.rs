//! 64-bit Mersenne Twister (MT19937-64), the generator the paper's original
//! C++ simulator uses (`std::mt19937_64`).
//!
//! Ported from the reference implementation by Matsumoto & Nishimura (2004).
//! Correctness is pinned by the C++ standard's conformance vector: the
//! 10 000th output of a default-seeded engine must be
//! `9981545732273789042` (ISO/IEC 14882, [rand.predef]).

use crate::Rng64;

const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
/// Most significant 33 bits.
const UM: u64 = 0xFFFF_FFFF_8000_0000;
/// Least significant 31 bits.
const LM: u64 = 0x7FFF_FFFF;

/// Seed used by a default-constructed `std::mt19937_64`.
pub const DEFAULT_SEED: u64 = 5489;

/// The MT19937-64 engine.
///
/// State is 312 × 64 bits; period is 2^19937 − 1. Use [`Mt19937_64::new`]
/// for scalar seeding (identical to `init_genrand64` / C++ seeding) or
/// [`Mt19937_64::from_seed_array`] for array seeding (`init_by_array64`).
///
/// ```
/// use pooled_rng::{Mt19937_64, Rng64};
/// let mut a = Mt19937_64::new(1905);
/// let mut b = Mt19937_64::new(1905);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Clone)]
pub struct Mt19937_64 {
    mt: [u64; NN],
    mti: usize,
}

impl std::fmt::Debug for Mt19937_64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937_64").field("mti", &self.mti).finish_non_exhaustive()
    }
}

impl Default for Mt19937_64 {
    fn default() -> Self {
        Self::new(DEFAULT_SEED)
    }
}

impl Mt19937_64 {
    /// Seed the engine from a single 64-bit value (reference
    /// `init_genrand64`).
    pub fn new(seed: u64) -> Self {
        let mut mt = [0u64; NN];
        mt[0] = seed;
        for i in 1..NN {
            mt[i] = 6364136223846793005u64
                .wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Self { mt, mti: NN }
    }

    /// Seed the engine from an array (reference `init_by_array64`).
    ///
    /// # Panics
    /// Panics if `key` is empty.
    pub fn from_seed_array(key: &[u64]) -> Self {
        assert!(!key.is_empty(), "seed array must be non-empty");
        let mut this = Self::new(19650218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut count = NN.max(key.len());
        while count > 0 {
            this.mt[i] = (this.mt[i]
                ^ (this.mt[i - 1] ^ (this.mt[i - 1] >> 62)).wrapping_mul(3935559000370003845))
            .wrapping_add(key[j])
            .wrapping_add(j as u64);
            i += 1;
            j += 1;
            if i >= NN {
                this.mt[0] = this.mt[NN - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            count -= 1;
        }
        for _ in 0..NN - 1 {
            this.mt[i] = (this.mt[i]
                ^ (this.mt[i - 1] ^ (this.mt[i - 1] >> 62)).wrapping_mul(2862933555777941757))
            .wrapping_sub(i as u64);
            i += 1;
            if i >= NN {
                this.mt[0] = this.mt[NN - 1];
                i = 1;
            }
        }
        this.mt[0] = 1u64 << 63;
        this.mti = NN;
        this
    }

    /// Regenerate the internal state block (the "twist").
    fn twist(&mut self) {
        for i in 0..NN {
            let x = (self.mt[i] & UM) | (self.mt[(i + 1) % NN] & LM);
            let mut xa = x >> 1;
            if x & 1 != 0 {
                xa ^= MATRIX_A;
            }
            self.mt[i] = self.mt[(i + MM) % NN] ^ xa;
        }
        self.mti = 0;
    }
}

impl Rng64 for Mt19937_64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.mti >= NN {
            self.twist();
        }
        let mut x = self.mt[self.mti];
        self.mti += 1;
        // Tempering.
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISO C++ conformance vector: 10 000th draw of a default-seeded engine.
    #[test]
    fn cpp_standard_conformance_vector() {
        let mut rng = Mt19937_64::default();
        let mut last = 0;
        for _ in 0..10_000 {
            last = rng.next_u64();
        }
        assert_eq!(last, 9_981_545_732_273_789_042);
    }

    /// First outputs of the reference `init_by_array64` test program
    /// (mt19937-64.out.txt by Matsumoto & Nishimura).
    #[test]
    fn reference_array_seeding_vector() {
        let mut rng = Mt19937_64::from_seed_array(&[0x12345, 0x23456, 0x34567, 0x45678]);
        let expected: [u64; 5] = [
            7266447313870364031,
            4946485549665804864,
            16945909448695747420,
            16394063075524226720,
            4873882236456199058,
        ];
        for (i, &want) in expected.iter().enumerate() {
            let got = rng.next_u64();
            assert_eq!(got, want, "output #{i}");
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = Mt19937_64::new(1);
        let mut b = Mt19937_64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = Mt19937_64::new(77);
        for _ in 0..1000 {
            a.next_u64();
        }
        let mut b = a.clone();
        for _ in 0..500 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn twist_boundary_is_seamless() {
        // Crossing the 312-word block boundary must not repeat or skip.
        let mut a = Mt19937_64::new(5);
        let first: Vec<u64> = (0..NN * 2 + 3).map(|_| a.next_u64()).collect();
        let mut b = Mt19937_64::new(5);
        let second: Vec<u64> = (0..NN * 2 + 3).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        // No obvious short cycle.
        assert_ne!(first[0], first[NN]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_seed_array_panics() {
        let _ = Mt19937_64::from_seed_array(&[]);
    }

    #[test]
    fn mean_of_unit_draws_is_near_half() {
        let mut rng = Mt19937_64::new(2022);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }
}
