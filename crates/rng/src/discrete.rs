//! Discrete distributions used by the theory checks and noise models.
//!
//! The binomial sampler matters twice in this workspace: query noise
//! (`y' = y + Bin(n, p) − np` style perturbations) and the empirical
//! verification of the paper's Lemma 3 / Corollary 4 distributional claims.
//! It uses exact inversion (stable PMF recurrence) for small means and a
//! normal-approximation with exact correction (rejection against the true
//! PMF ratio is unnecessary at our accuracy targets; we instead switch to a
//! binary-splitting recursion that preserves exactness) for large `n`.

use crate::Rng64;

/// Bernoulli distribution with success probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Create a Bernoulli(p) sampler; `p` is clamped into `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Self { p: p.clamp(0.0, 1.0) }
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draw a sample.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_f64() < self.p
    }
}

/// Geometric distribution on `{0, 1, 2, …}`: number of failures before the
/// first success with per-trial success probability `p`.
#[derive(Clone, Copy, Debug)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Create a Geometric(p) sampler.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1], got {p}");
        Self { p }
    }

    /// Draw a sample via inversion of the closed-form CDF.
    #[inline]
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = 1.0 - rng.next_f64(); // in (0, 1]
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

/// Binomial distribution `Bin(n, p)`.
///
/// Sampling is exact for all parameter ranges:
/// * `n ≤ 64` — bit-population of Bernoulli words would be biased for
///   general `p`, so we use per-trial Bernoulli draws.
/// * small mean — inversion along the PMF recurrence
///   `P(X = x+1) = P(X = x) · (n−x)/(x+1) · p/(1−p)`.
/// * otherwise — exact binary splitting: `Bin(n,p)` decomposes around a
///   Beta-distributed pivot; we use the simpler recursive halving
///   `Bin(n,p) = Bin(n/2,p) + Bin(n−n/2,p)` until the mean is small enough
///   for inversion. Depth is logarithmic, so the cost is O(log n) inversions.
#[derive(Clone, Copy, Debug)]
pub struct Binomial {
    n: u64,
    p: f64,
}

/// Mean threshold below which plain inversion is both exact and fast.
const INVERSION_MEAN_LIMIT: f64 = 64.0;
/// Trial-count threshold below which per-trial Bernoulli draws win.
const DIRECT_TRIALS_LIMIT: u64 = 64;

impl Binomial {
    /// Create a `Bin(n, p)` sampler; `p` is clamped into `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        Self { n, p: p.clamp(0.0, 1.0) }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Draw a sample.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        sample_binomial(self.n, self.p, rng)
    }
}

fn sample_binomial<R: Rng64 + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    // Exploit symmetry so the inversion walk starts from the short side.
    if p > 0.5 {
        return n - sample_binomial(n, 1.0 - p, rng);
    }
    if n <= DIRECT_TRIALS_LIMIT {
        return (0..n).filter(|_| rng.next_f64() < p).count() as u64;
    }
    if n as f64 * p <= INVERSION_MEAN_LIMIT {
        return sample_inversion(n, p, rng);
    }
    // Binary splitting: halve trial counts until inversion applies.
    let half = n / 2;
    sample_binomial(half, p, rng) + sample_binomial(n - half, p, rng)
}

/// Inversion sampling: walk the CDF from 0 using the PMF recurrence.
fn sample_inversion<R: Rng64 + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    // P(X = 0) = q^n, computed in log space for stability.
    let mut pmf = (n as f64 * q.ln()).exp();
    let mut cdf = pmf;
    let mut u = rng.next_f64();
    // Guard: astronomically unlikely tail overflow falls back to the mode.
    let mut x: u64 = 0;
    while u > cdf {
        if x >= n {
            return n;
        }
        pmf *= s * (n - x) as f64 / (x + 1) as f64;
        x += 1;
        cdf += pmf;
        if pmf < f64::MIN_POSITIVE && cdf < u {
            // Numerical tail exhausted; re-draw (probability ~0).
            x = 0;
            pmf = (n as f64 * q.ln()).exp();
            cdf = pmf;
            u = rng.next_f64();
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mt19937_64;

    fn mean_var(samples: &[u64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = Mt19937_64::new(1);
        let d = Bernoulli::new(0.3);
        let hits = (0..50_000).filter(|_| d.sample(&mut rng)).count();
        let f = hits as f64 / 50_000.0;
        assert!((f - 0.3).abs() < 0.01, "freq={f}");
    }

    #[test]
    fn bernoulli_clamps_out_of_range() {
        assert_eq!(Bernoulli::new(2.0).p(), 1.0);
        assert_eq!(Bernoulli::new(-1.0).p(), 0.0);
    }

    #[test]
    fn geometric_mean_matches_theory() {
        // E[X] = (1-p)/p = 4 for p = 0.2.
        let mut rng = Mt19937_64::new(2);
        let d = Geometric::new(0.2);
        let samples: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = mean_var(&samples);
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn geometric_p_one_is_constant_zero() {
        let mut rng = Mt19937_64::new(3);
        let d = Geometric::new(1.0);
        assert!((0..100).all(|_| d.sample(&mut rng) == 0));
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn geometric_rejects_zero_p() {
        let _ = Geometric::new(0.0);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = Mt19937_64::new(4);
        assert_eq!(Binomial::new(0, 0.5).sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 1.0).sample(&mut rng), 100);
    }

    #[test]
    fn binomial_small_n_moments() {
        let mut rng = Mt19937_64::new(5);
        let d = Binomial::new(20, 0.25);
        let samples: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var - 3.75).abs() < 0.1, "var={var}");
    }

    #[test]
    fn binomial_inversion_regime_moments() {
        // n=1000, p=0.01 ⇒ mean 10, var 9.9 (inversion path).
        let mut rng = Mt19937_64::new(6);
        let d = Binomial::new(1000, 0.01);
        let samples: Vec<u64> = (0..60_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.9).abs() < 0.35, "var={var}");
    }

    #[test]
    fn binomial_splitting_regime_moments() {
        // n=100_000, p=0.3 ⇒ mean 30_000, var 21_000 (splitting path).
        let mut rng = Mt19937_64::new(7);
        let d = Binomial::new(100_000, 0.3);
        let samples: Vec<u64> = (0..4_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 30_000.0).abs() < 30.0, "mean={mean}");
        assert!((var - 21_000.0).abs() < 2_500.0, "var={var}");
    }

    #[test]
    fn binomial_symmetry_path_moments() {
        // p > 0.5 goes through the reflection branch.
        let mut rng = Mt19937_64::new(8);
        let d = Binomial::new(1000, 0.9);
        let samples: Vec<u64> = (0..60_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 900.0).abs() < 1.0, "mean={mean}");
        assert!((var - 90.0).abs() < 4.0, "var={var}");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = Mt19937_64::new(9);
        for &(n, p) in &[(1u64, 0.5), (10, 0.99), (1000, 0.5), (1 << 20, 0.001)] {
            let d = Binomial::new(n, p);
            for _ in 0..200 {
                assert!(d.sample(&mut rng) <= n);
            }
        }
    }

    /// The design's Δ_i degree is Bin(mΓ, 1/n); sanity-check that regime.
    #[test]
    fn binomial_design_degree_regime() {
        let mut rng = Mt19937_64::new(10);
        // n=1000, m=300, Γ=500 ⇒ Δ_i ~ Bin(150_000, 0.001), mean 150.
        let d = Binomial::new(150_000, 0.001);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - 150.0).abs() < 0.5, "mean={mean}");
        assert!((var - 149.85).abs() < 7.0, "var={var}");
    }
}
