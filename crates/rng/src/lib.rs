#![warn(missing_docs)]

//! PRNG substrate for the pooled-data workspace.
//!
//! The original simulation software of *“On the Parallel Reconstruction from
//! Pooled Data”* (IPDPS 2022) uses the C++11 `std::mt19937_64` engine. This
//! crate provides a faithful Rust port of that generator ([`Mt19937_64`]),
//! validated against the test vector mandated by the C++ standard, plus the
//! supporting machinery a reproducible parallel simulation needs:
//!
//! * [`SplitMix64`] — a tiny, fast generator used to derive independent
//!   per-query / per-trial substreams from one master seed ([`streams`]).
//! * Exact (unbiased) bounded sampling via Lemire's method ([`bounded`]).
//! * Fisher–Yates shuffling, Floyd's subset sampling and reservoir sampling
//!   ([`shuffle`]).
//! * Discrete distributions used by the theory/simulation layers:
//!   Bernoulli, binomial, geometric ([`discrete`]).
//!
//! Everything is deterministic given a seed; there is no global state and no
//! interior mutability, which is what makes the parallel experiment drivers
//! reproducible across thread counts.

pub mod bounded;
pub mod discrete;
pub mod mt19937_64;
pub mod shuffle;
pub mod splitmix;
pub mod streams;

pub use bounded::lemire_u64;
pub use discrete::{Bernoulli, Binomial, Geometric};
pub use mt19937_64::Mt19937_64;
pub use splitmix::SplitMix64;
pub use streams::SeedSequence;

/// Minimal pseudo-random generator interface used across the workspace.
///
/// All engines are `Send` so rayon tasks can own per-task generators; none of
/// them share state. The provided methods implement the derived draws every
/// consumer needs (floats, bounded integers, booleans) so that engines only
/// have to produce raw 64-bit outputs.
pub trait Rng64: Send {
    /// Produce the next raw 64-bit output of the engine.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits, the standard (x >> 11) * 2^-53 construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `{0, 1, …, bound−1}` without modulo bias.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        bounded::lemire_u64(self, bound)
    }

    /// Uniform draw in `[lo, hi)` without modulo bias.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform index into a slice of length `len`.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    #[inline]
    fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Fair coin flip.
    #[inline]
    fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bernoulli draw with success probability `p` (values outside `[0,1]`
    /// behave as the nearest endpoint).
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "draw {x} escaped [0,1)");
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Mt19937_64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SplitMix64::new(3);
        let _ = rng.range_u64(5, 5);
    }

    #[test]
    fn trait_object_usable_via_mut_ref() {
        fn draw(rng: &mut dyn Rng64) -> u64 {
            rng.next_u64()
        }
        let mut rng = SplitMix64::new(1);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b, "consecutive draws should differ with high probability");
    }

    #[test]
    fn flip_is_roughly_fair() {
        let mut rng = Mt19937_64::new(99);
        let heads = (0..20_000).filter(|_| rng.flip()).count();
        assert!((9_000..11_000).contains(&heads), "heads={heads}");
    }
}
