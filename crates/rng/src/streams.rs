//! Deterministic substream derivation.
//!
//! Every experiment in this workspace is keyed by a single master seed. From
//! it we derive independent streams for each *trial*, and within a trial for
//! each *query*, via [`mix64`] hashing of `(seed, label, index)` triples.
//! Because the derivation is a pure function, the same experiment row is
//! reproducible bit-for-bit regardless of thread scheduling — rayon tasks
//! just re-derive their generator instead of sharing one.
//!
//! ```
//! use pooled_rng::{Rng64, SeedSequence};
//! let root = SeedSequence::new(1905);
//! let trial7 = root.child("trial", 7);
//! let mut a = trial7.rng();
//! let mut b = root.child("trial", 7).rng(); // same path, same stream
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

use crate::splitmix::{mix64, SplitMix64};
use crate::Mt19937_64;

/// A node in the deterministic seed-derivation tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

/// Hash a label into a 64-bit domain separator (FNV-1a over the bytes).
fn label_hash(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SeedSequence {
    /// Root of a derivation tree.
    pub fn new(master_seed: u64) -> Self {
        Self { state: mix64(master_seed ^ 0x5EED_5EED_5EED_5EED) }
    }

    /// Derive the child at `(label, index)`.
    ///
    /// Distinct `(label, index)` pairs map to distinct children with
    /// overwhelming probability (the mixing function is a bijection applied
    /// to injectively-combined inputs at each step).
    pub fn child(&self, label: &str, index: u64) -> SeedSequence {
        let mixed = mix64(self.state ^ label_hash(label)).wrapping_add(index);
        SeedSequence { state: mix64(mixed) }
    }

    /// The raw 64-bit seed at this node.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// A fast [`SplitMix64`] stream rooted at this node (hot loops).
    pub fn rng(&self) -> SplitMix64 {
        SplitMix64::new(self.state)
    }

    /// A [`Mt19937_64`] stream rooted at this node (paper-faithful engine).
    pub fn twister(&self) -> Mt19937_64 {
        Mt19937_64::new(self.state)
    }
}

/// Convenience: derive `count` sibling RNGs at `(label, 0..count)`.
///
/// Used by parallel drivers that need one generator per rayon task.
pub fn sibling_rngs(root: &SeedSequence, label: &str, count: usize) -> Vec<SplitMix64> {
    (0..count).map(|i| root.child(label, i as u64).rng()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;
    use std::collections::HashSet;

    #[test]
    fn children_are_deterministic() {
        let root = SeedSequence::new(42);
        assert_eq!(root.child("q", 3), root.child("q", 3));
    }

    #[test]
    fn labels_separate_domains() {
        let root = SeedSequence::new(42);
        assert_ne!(root.child("query", 0), root.child("trial", 0));
    }

    #[test]
    fn indices_separate_streams() {
        let root = SeedSequence::new(42);
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(root.child("q", i).seed()), "seed collision at {i}");
        }
    }

    #[test]
    fn nested_paths_are_independent() {
        let root = SeedSequence::new(7);
        let a = root.child("trial", 1).child("query", 2).seed();
        let b = root.child("trial", 2).child("query", 1).seed();
        assert_ne!(a, b, "path transposition collided");
    }

    #[test]
    fn different_masters_diverge() {
        let a = SeedSequence::new(1).child("x", 0).seed();
        let b = SeedSequence::new(2).child("x", 0).seed();
        assert_ne!(a, b);
    }

    #[test]
    fn sibling_rngs_produce_distinct_streams() {
        let root = SeedSequence::new(9);
        let mut rngs = sibling_rngs(&root, "worker", 16);
        let firsts: HashSet<u64> = rngs.iter_mut().map(|r| r.next_u64()).collect();
        assert_eq!(firsts.len(), 16);
    }

    #[test]
    fn twister_and_splitmix_share_seed_but_not_stream() {
        let node = SeedSequence::new(3).child("t", 0);
        let mut tw = node.twister();
        let mut sm = node.rng();
        assert_ne!(tw.next_u64(), sm.next_u64());
    }
}
