//! SplitMix64: a tiny splittable generator (Steele, Lea & Flood, OOPSLA'14).
//!
//! We use it for two jobs where MT19937-64 is a poor fit:
//!
//! 1. **Substream derivation** — hashing `(master_seed, index)` into an
//!    independent child seed is a single invertible mixing step, which gives
//!    the per-query / per-trial streams their independence (see
//!    [`crate::streams`]).
//! 2. **Throughput-critical sampling** — drawing `Γ = n/2` pool members per
//!    query is the hot loop of the whole simulator; SplitMix64 is ~4× faster
//!    than the twister at indistinguishable quality for this purpose.

use crate::Rng64;

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mix a 64-bit value through the SplitMix64 finalizer (Stafford variant 13).
///
/// This is a bijection on `u64`, so distinct inputs always yield distinct
/// outputs — the property the substream scheme relies on.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 engine: a Weyl sequence pushed through [`mix64`].
///
/// ```
/// use pooled_rng::{Rng64, SplitMix64};
/// let mut rng = SplitMix64::new(0);
/// assert_eq!(rng.next_u64(), 0xE220A8397B1DCDAF);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create an engine whose first output is `mix64(seed + γ)`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Skip `n` outputs in O(1) (the underlying counter is a Weyl sequence).
    #[inline]
    pub fn jump(&mut self, n: u64) {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA.wrapping_mul(n));
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 0 (widely published test vector).
    #[test]
    fn reference_vector_seed_zero() {
        let mut rng = SplitMix64::new(0);
        let expected: [u64; 4] =
            [0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F, 0xF88BB8A8724C81EC];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), want, "output #{i}");
        }
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            assert!(seen.insert(mix64(i)), "collision at input {i}");
        }
    }

    #[test]
    fn jump_matches_sequential_draws() {
        let mut a = SplitMix64::new(12345);
        let mut b = SplitMix64::new(12345);
        for _ in 0..100 {
            a.next_u64();
        }
        b.jump(100);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn jump_zero_is_identity() {
        let mut a = SplitMix64::new(9);
        let mut b = a.clone();
        b.jump(0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn equidistribution_coarse_check() {
        // Bucket 1M draws into 16 buckets; each should hold ~62 500.
        let mut rng = SplitMix64::new(777);
        let mut buckets = [0u32; 16];
        for _ in 0..1_000_000 {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((60_000..65_000).contains(&b), "bucket {i} holds {b} draws");
        }
    }
}
