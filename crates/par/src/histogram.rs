//! Parallel histograms.
//!
//! Counting occurrences per bin is the inner step of the radix sort
//! ([`crate::radix`]), the degree statistics of the design crate, and
//! several experiment summaries. The parallel strategy is the standard
//! privatized one: each worker fills a thread-local count vector over its
//! chunk, then the per-chunk vectors are summed. No atomics, no contention,
//! and the result is independent of the chunking.

use rayon::prelude::*;

use crate::chunks::{chunk_count, even_ranges};

/// Minimum elements per chunk before the parallel path engages.
const PAR_GRAIN: usize = 1 << 14;

/// Count how many items fall into each of `bins` buckets.
///
/// `bin_of` maps an item to its bucket index and must return values in
/// `0..bins`.
///
/// # Panics
/// Panics (in debug builds at the offending index, in release via the
/// indexed add) if `bin_of` returns an out-of-range bucket.
pub fn par_histogram<T, F>(data: &[T], bins: usize, bin_of: F) -> Vec<u64>
where
    T: Sync,
    F: Fn(&T) -> usize + Sync,
{
    let parts = chunk_count(data.len(), PAR_GRAIN);
    if parts <= 1 {
        let mut counts = vec![0u64; bins];
        for x in data {
            counts[bin_of(x)] += 1;
        }
        return counts;
    }
    even_ranges(data.len(), parts)
        .into_par_iter()
        .map(|r| {
            let mut counts = vec![0u64; bins];
            for x in &data[r] {
                counts[bin_of(x)] += 1;
            }
            counts
        })
        .reduce(
            || vec![0u64; bins],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
}

/// Per-chunk histograms laid out as a `chunks × bins` row-major matrix,
/// plus the chunk ranges used. This is the building block of counting
/// sorts: the column-major exclusive scan of the matrix gives each chunk a
/// private, disjoint write cursor per bin.
pub fn chunked_histogram<T, F>(
    data: &[T],
    bins: usize,
    parts: usize,
    bin_of: F,
) -> (Vec<u64>, Vec<std::ops::Range<usize>>)
where
    T: Sync,
    F: Fn(&T) -> usize + Sync,
{
    let ranges = even_ranges(data.len(), parts.max(1));
    let mut matrix = vec![0u64; ranges.len() * bins];
    matrix.par_chunks_mut(bins).zip(ranges.par_iter()).for_each(|(row, r)| {
        for x in &data[r.clone()] {
            row[bin_of(x)] += 1;
        }
    });
    (matrix, ranges)
}

/// Turn a `chunks × bins` count matrix into write cursors, in place:
/// afterwards `matrix[c*bins + d]` is the first output index for chunk `c`,
/// digit `d`, under the ordering (all of digit 0, then digit 1, …; within a
/// digit, chunk 0 first). Returns the grand total.
pub fn cursors_from_counts(matrix: &mut [u64], bins: usize) -> u64 {
    if bins == 0 {
        return 0;
    }
    let chunks = matrix.len() / bins;
    debug_assert_eq!(chunks * bins, matrix.len());
    let mut acc = 0u64;
    for d in 0..bins {
        for c in 0..chunks {
            let at = c * bins + d;
            let count = matrix[at];
            matrix[at] = acc;
            acc += count;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_count() {
        let data: Vec<u32> = (0..100_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let bins = 64;
        let par = par_histogram(&data, bins, |&x| (x % 64) as usize);
        let mut seq = vec![0u64; bins];
        for &x in &data {
            seq[(x % 64) as usize] += 1;
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input_gives_zero_bins() {
        let h = par_histogram::<u32, _>(&[], 8, |_| 0);
        assert_eq!(h, vec![0u64; 8]);
    }

    #[test]
    fn total_count_is_len() {
        let data: Vec<u64> = (0..50_000).collect();
        let h = par_histogram(&data, 10, |&x| (x % 10) as usize);
        assert_eq!(h.iter().sum::<u64>(), 50_000);
    }

    #[test]
    fn single_bin_counts_everything() {
        let data = vec![7u8; 1000];
        assert_eq!(par_histogram(&data, 1, |_| 0), vec![1000]);
    }

    #[test]
    fn chunked_matrix_columns_sum_to_histogram() {
        let data: Vec<u64> = (0..40_000u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        let bins = 16;
        let (matrix, ranges) = chunked_histogram(&data, bins, 7, |&x| (x % 16) as usize);
        assert_eq!(matrix.len(), ranges.len() * bins);
        let flat = par_histogram(&data, bins, |&x| (x % 16) as usize);
        for d in 0..bins {
            let col: u64 = (0..ranges.len()).map(|c| matrix[c * bins + d]).sum();
            assert_eq!(col, flat[d], "digit {d}");
        }
    }

    #[test]
    fn cursors_are_exclusive_scan_in_digit_major_order() {
        // 2 chunks × 3 bins: counts [[1,2,3],[4,5,6]].
        let mut m = vec![1, 2, 3, 4, 5, 6];
        let total = cursors_from_counts(&mut m, 3);
        assert_eq!(total, 21);
        // Order: (c0,d0)=0, (c1,d0)=1, (c0,d1)=5, (c1,d1)=7, (c0,d2)=12,
        // (c1,d2)=15.
        assert_eq!(m, vec![0, 5, 12, 1, 7, 15]);
    }

    #[test]
    fn cursors_handle_zero_bins() {
        let mut m: Vec<u64> = Vec::new();
        assert_eq!(cursors_from_counts(&mut m, 0), 0);
    }
}
