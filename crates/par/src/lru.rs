//! A small bounded LRU cache.
//!
//! Serving workloads repeat themselves: the engine sees the same pooling
//! design keys over and over, and the thread-pool helper sees the same
//! worker counts. Both want *memoization with a memory bound* — an
//! unbounded map grows monotonically over a long sweep (the PR 1 pool
//! cache did exactly that). [`LruCache`] is the shared policy: a
//! `HashMap` plus a monotonic use-stamp per entry, evicting the
//! least-recently-used entry when full.
//!
//! Design notes:
//!
//! * Hits are allocation-free (a stamp bump on an existing entry), which
//!   the engine's steady-state zero-allocation contract relies on.
//! * Eviction scans for the minimal stamp, `O(len)`. Capacities here are
//!   small (designs, pools: tens at most), so a scan beats the pointer
//!   chasing of an intrusive list and keeps the structure trivially
//!   correct.
//! * Values are returned by clone; callers cache `Arc<T>` when the value
//!   is large (both in-repo users do).

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry on overflow.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    clock: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache needs capacity at least 1");
        Self { capacity, clock: 0, map: HashMap::with_capacity(capacity + 1) }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|(v, stamp)| {
            *stamp = clock;
            &*v
        })
    }

    /// Whether `key` is present (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Insert `key → value` as most-recently-used, evicting the
    /// least-recently-used entry if the cache is full. Returns the evicted
    /// `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        let evicted = if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            self.evict_lru()
        } else {
            None
        };
        self.map.insert(key, (value, self.clock));
        evicted
    }

    /// Look up `key`; on a miss, build the value with `make`, insert it,
    /// and return a clone. A hit clones the cached value and is
    /// allocation-free apart from the clone itself.
    pub fn get_or_insert_with(&mut self, key: &K, make: impl FnOnce() -> V) -> V
    where
        V: Clone,
    {
        if let Some(v) = self.get(key) {
            return v.clone();
        }
        let value = make();
        self.insert(key.clone(), value.clone());
        value
    }

    /// Drop every entry (capacity unchanged).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterate over the resident keys, in no particular order (does not
    /// touch recency). The engine's snapshot-lite path uses this to
    /// export the design cache's working set as keys only — values
    /// resample bit-identically from their keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    fn evict_lru(&mut self) -> Option<(K, V)> {
        let key = self.map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| k.clone())?;
        self.map.remove_entry(&key).map(|(k, (v, _))| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_at_most_capacity_entries() {
        let mut lru = LruCache::new(3);
        for i in 0..10 {
            lru.insert(i, i * 10);
            assert!(lru.len() <= 3);
        }
        assert_eq!(lru.len(), 3);
        // The three most recent survive.
        assert!(lru.contains(&7) && lru.contains(&8) && lru.contains(&9));
    }

    #[test]
    fn get_refreshes_recency() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.get(&"a"), Some(&1)); // "a" becomes most recent
        let evicted = lru.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(lru.contains(&"a") && lru.contains(&"c"));
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut lru = LruCache::new(2);
        lru.insert(1, "one");
        lru.insert(2, "two");
        assert_eq!(lru.insert(1, "uno"), None);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&1), Some(&"uno"));
    }

    #[test]
    fn get_or_insert_with_builds_once() {
        let mut lru = LruCache::new(4);
        let mut builds = 0;
        for _ in 0..5 {
            let v = lru.get_or_insert_with(&"k", || {
                builds += 1;
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(builds, 1);
    }

    #[test]
    fn eviction_order_is_least_recent_first() {
        let mut lru = LruCache::new(3);
        lru.insert(1, ());
        lru.insert(2, ());
        lru.insert(3, ());
        lru.get(&1);
        lru.get(&2);
        // 3 is now least recent.
        assert_eq!(lru.insert(4, ()), Some((3, ())));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut lru = LruCache::new(2);
        lru.insert(1, 1);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.capacity(), 2);
        lru.insert(2, 2);
        assert_eq!(lru.get(&2), Some(&2));
    }

    #[test]
    fn keys_export_the_resident_set_without_touching_recency() {
        let mut lru = LruCache::new(3);
        lru.insert(1, ());
        lru.insert(2, ());
        lru.insert(3, ());
        let mut keys: Vec<i32> = lru.keys().copied().collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2, 3]);
        // Exporting keys must not refresh anyone: 1 is still the LRU entry.
        assert_eq!(lru.insert(4, ()), Some((1, ())));
    }

    #[test]
    #[should_panic(expected = "capacity at least 1")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, u32>::new(0);
    }
}
