#![warn(missing_docs)]

//! Parallel primitives used by the pooled-data reconstruction pipeline.
//!
//! The paper observes (§I-C, “Parallelized Reconstruction”) that the MN
//! decoder is two sparse matrix–vector products followed by a sort, all of
//! which parallelize. This crate supplies those building blocks on top of
//! rayon, each with a sequential reference implementation that the tests and
//! property suites check against:
//!
//! * [`chunks`] — deterministic chunking of index ranges across workers.
//! * [`scan`] — parallel prefix sums (the classic two-pass blocked scan).
//! * [`sort`] — parallel merge sort and sample sort over `Copy` keys.
//! * [`radix`] — LSD radix sort for integer keys (the non-comparison
//!   alternative for the score-ranking step).
//! * [`histogram`] — privatized parallel histograms (radix passes, degree
//!   statistics).
//! * [`topk`] — parallel top-k selection (what Algorithm 1's final sort
//!   actually needs: the k largest scores).
//! * [`scatter`] — atomic scatter-add accumulators for the Ψ/Δ* sums.
//! * [`pool`] — scoped rayon thread-pool helpers for the ablation benches.

pub mod chunks;
pub mod histogram;
pub mod pool;
pub mod radix;
pub mod scan;
pub mod scatter;
pub mod sort;
pub mod topk;

pub use chunks::even_ranges;
pub use histogram::par_histogram;
pub use radix::{par_radix_sort_pairs, radix_rank_desc};
pub use scatter::AtomicCounters;
pub use topk::top_k_indices;
