#![warn(missing_docs)]

//! Parallel primitives used by the pooled-data reconstruction pipeline.
//!
//! The paper observes (§I-C, “Parallelized Reconstruction”) that the MN
//! decoder is two sparse matrix–vector products followed by a sort, all of
//! which parallelize. This crate supplies those building blocks on top of
//! rayon, each with a sequential reference implementation that the tests and
//! property suites check against:
//!
//! * [`chunks`] — deterministic chunking of index ranges across workers.
//! * [`scan`] — parallel prefix sums (the classic two-pass blocked scan).
//! * [`sort`] — parallel merge sort and sample sort over `Copy` keys.
//! * [`radix`] — LSD radix sort for integer keys (the non-comparison
//!   alternative for the score-ranking step).
//! * [`histogram`] — privatized parallel histograms (radix passes, degree
//!   statistics).
//! * [`topk`] — parallel top-k selection (what Algorithm 1's final sort
//!   actually needs: the k largest scores).
//! * [`scatter`] — atomic scatter-add accumulators for the Ψ/Δ* sums.
//! * [`blocked`] — privatized, cache-blocked scatter accumulation (the
//!   contention-free alternative), plus the kernel-choice heuristic.
//! * [`pool`] — scoped rayon thread-pool helpers for the ablation benches,
//!   with a process-wide memoized pool cache.
//!
//! # Choosing a scatter/gather kernel
//!
//! The Ψ/Δ* accumulation (`m·Γ` updates into `n` slots) has four kernels
//! across this crate and `pooled_design`:
//!
//! | kernel | where | atomics | extra memory | wins when |
//! |---|---|---|---|---|
//! | scatter (atomic) | [`scatter::AtomicCounters`] | yes | none | sparse updates (`m·Γ ≪ t·n`), streaming designs |
//! | scatter (blocked) | [`blocked::BlockedScatter`] | no | `t·n` words/plane | dense updates (`m·Γ ≳ 4·t·n`), replicate loops (buffers reused) |
//! | gather | `CsrDesign::gather_distinct_into` | no | none | materialized CSR with a transpose already built |
//! | fused | `pooled_design::fused` | no | arena (reused) | Monte-Carlo trials: `y`, Ψ and Δ* from **one** traversal |
//! | batched | `pooled_design::batched` | no | planes (reused) | B jobs sharing a design: one traversal serves the whole batch |
//!
//! [`blocked::choose_scatter`] encodes the density heuristic; the fused
//! kernels in `pooled_design` call it internally.

pub mod blocked;
pub mod chunks;
pub mod histogram;
pub mod lru;
pub mod pool;
pub mod radix;
pub mod scan;
pub mod scatter;
pub mod sort;
pub mod topk;

pub use blocked::{choose_scatter, BlockedScatter, ScatterKind};
pub use chunks::even_ranges;
pub use histogram::par_histogram;
pub use lru::LruCache;
pub use pool::{install_with_threads, pool_with_threads};
pub use radix::{par_radix_sort_pairs, radix_rank_desc};
pub use scatter::AtomicCounters;
pub use sort::{par_merge_sort, par_merge_sort_with};
pub use topk::{top_k_indices, top_k_into, TopKScratch};
