//! Radix sort for integer keys.
//!
//! The decoder's final ranking step sorts `(score, index)` pairs whose keys
//! are machine integers, which is exactly where an LSD radix sort shines:
//! `O(n)` work per 8-bit digit pass instead of `O(n log n)` comparisons.
//! The paper's §I-C points at the GPU sorting literature for this step; this
//! module is the CPU counterpart the ablation benches compare against the
//! comparison sorts in [`crate::sort`].
//!
//! Parallelism mirrors [`crate::sort::par_sample_sort`]: the digit
//! *histograms* are computed in parallel over fixed chunks
//! ([`crate::histogram::chunked_histogram`]), while the scatter itself is a
//! sequential cursor walk — it is memory-bound, and keeping it sequential
//! keeps the implementation free of `unsafe` (a workspace-wide invariant).
//! Passes whose digit is constant across all keys are skipped, which on the
//! decoder's score distributions removes most of the eight passes.

use rayon::prelude::*;

use crate::histogram::{chunked_histogram, cursors_from_counts};

/// Number of distinct 8-bit digits.
const RADIX: usize = 256;
/// Below this length the standard-library sort wins.
const SEQ_CUTOFF: usize = 1 << 12;
/// Histogram chunking grain (items per chunk).
const PAR_GRAIN: usize = 1 << 15;

/// Stable ascending sort of `(key, payload)` pairs by `key`.
///
/// Equal keys keep their input order, so combined with a payload that is the
/// original index the result is a deterministic total order.
pub fn par_radix_sort_pairs(data: &mut [(u64, u32)]) {
    if data.len() <= SEQ_CUTOFF {
        data.sort_by_key(|&(k, _)| k);
        return;
    }
    // Which digit positions actually vary? byte p varies iff the OR and AND
    // of all keys disagree there.
    let (or_all, and_all) = data
        .par_iter()
        .map(|&(k, _)| (k, k))
        .reduce(|| (0u64, u64::MAX), |(o1, a1), (o2, a2)| (o1 | o2, a1 & a2));
    let mut buf: Vec<(u64, u32)> = vec![(0, 0); data.len()];
    let mut src_is_data = true;
    for pass in 0..8 {
        let shift = 8 * pass;
        if (or_all >> shift) & 0xFF == (and_all >> shift) & 0xFF {
            continue; // digit constant across all keys — nothing to do
        }
        {
            type PairSlices<'a> = (&'a mut [(u64, u32)], &'a mut [(u64, u32)]);
            let (src, dst): PairSlices =
                if src_is_data { (data, &mut buf) } else { (&mut buf, data) };
            scatter_pass(src, dst, shift);
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

/// One counting-sort pass on the 8-bit digit at `shift`.
fn scatter_pass(src: &[(u64, u32)], dst: &mut [(u64, u32)], shift: u32) {
    let parts = crate::chunks::chunk_count(src.len(), PAR_GRAIN).max(1);
    let digit = |&(k, _): &(u64, u32)| ((k >> shift) & 0xFF) as usize;
    let (mut cursors, ranges) = chunked_histogram(src, RADIX, parts, digit);
    let total = cursors_from_counts(&mut cursors, RADIX);
    debug_assert_eq!(total as usize, src.len());
    for (c, r) in ranges.iter().enumerate() {
        let row = &mut cursors[c * RADIX..(c + 1) * RADIX];
        for &item in &src[r.clone()] {
            let d = ((item.0 >> shift) & 0xFF) as usize;
            dst[row[d] as usize] = item;
            row[d] += 1;
        }
    }
}

/// Indices `0..scores.len()` ranked by `(score desc, index asc)` — the
/// decoder's canonical ordering — computed with the radix sort.
///
/// Agrees element-for-element with sorting `(Reverse(score), index)`; the
/// property tests pin the equivalence against [`crate::topk::top_k_indices`].
pub fn radix_rank_desc(scores: &[i64]) -> Vec<u32> {
    // Map i64 → u64 order-preservingly (flip the sign bit), then invert so
    // that ascending radix order equals descending score order. Payload is
    // the index; stability turns ties into ascending-index order.
    let mut pairs: Vec<(u64, u32)> =
        scores.iter().enumerate().map(|(i, &s)| (!((s as u64) ^ (1u64 << 63)), i as u32)).collect();
    par_radix_sort_pairs(&mut pairs);
    pairs.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_sorted(mut v: Vec<(u64, u32)>) -> Vec<(u64, u32)> {
        v.sort_by_key(|&(k, _)| k);
        v
    }

    fn pseudo_random(len: usize, seed: u64) -> Vec<(u64, u32)> {
        let mut state = seed;
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state, i as u32)
            })
            .collect()
    }

    #[test]
    fn sorts_random_keys() {
        for len in [0usize, 1, 2, 100, SEQ_CUTOFF + 1, 100_000] {
            let mut v = pseudo_random(len, 42);
            let want = reference_sorted(v.clone());
            par_radix_sort_pairs(&mut v);
            assert_eq!(v, want, "len={len}");
        }
    }

    #[test]
    fn stable_on_equal_keys() {
        // All keys equal: payload order must be preserved.
        let mut v: Vec<(u64, u32)> = (0..20_000).map(|i| (7, i)).collect();
        par_radix_sort_pairs(&mut v);
        assert!(v.iter().enumerate().all(|(i, &(k, p))| k == 7 && p == i as u32));
    }

    #[test]
    fn stable_on_few_distinct_keys() {
        let mut v: Vec<(u64, u32)> = (0..30_000u32).map(|i| ((i % 3) as u64, i)).collect();
        par_radix_sort_pairs(&mut v);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    #[test]
    fn handles_extreme_keys() {
        let mut v =
            vec![(u64::MAX, 0u32), (0, 1), (u64::MAX - 1, 2), (1, 3), (u64::MAX, 4), (0, 5)];
        par_radix_sort_pairs(&mut v);
        assert_eq!(
            v,
            vec![(0, 1), (0, 5), (1, 3), (u64::MAX - 1, 2), (u64::MAX, 0), (u64::MAX, 4)]
        );
    }

    #[test]
    fn skip_pass_correct_when_high_bytes_constant() {
        // Keys fit in one byte: 7 of 8 passes skip.
        let mut v = pseudo_random(50_000, 9);
        for (k, _) in v.iter_mut() {
            *k &= 0xFF;
        }
        let want = reference_sorted(v.clone());
        par_radix_sort_pairs(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn rank_desc_matches_comparison_sort() {
        let mut state = 1905u64;
        let scores: Vec<i64> = (0..30_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state as i64) >> 32 // mix of positive and negative
            })
            .collect();
        let got = radix_rank_desc(&scores);
        let mut want: Vec<u32> = (0..scores.len() as u32).collect();
        want.sort_by_key(|&i| (std::cmp::Reverse(scores[i as usize]), i));
        assert_eq!(got, want);
    }

    #[test]
    fn rank_desc_negative_and_positive_scores() {
        let scores = vec![-5i64, 10, 0, 10, i64::MIN, i64::MAX, -5];
        let got = radix_rank_desc(&scores);
        assert_eq!(got, vec![5, 1, 3, 2, 0, 6, 4]);
    }

    #[test]
    fn rank_desc_empty() {
        assert!(radix_rank_desc(&[]).is_empty());
    }
}
