//! Parallel sorting.
//!
//! Algorithm 1 sorts the `n` coordinate scores; the paper points at the GPU
//! sorting literature for this step. We implement two classic parallel sorts
//! so the benches can compare them against rayon's built-in and against the
//! top-k shortcut:
//!
//! * [`par_merge_sort`] — recursive merge sort with a parallel two-way merge
//!   (split at the median of the longer run). Stable, O(n log n) work,
//!   O(log² n) depth.
//! * [`par_sample_sort`] — sample sort: pick splitters from a random-ish
//!   stride sample, bucket in parallel, sort buckets in parallel.
//!   Unstable, near-perfect balance for the integer score distributions
//!   the decoder produces.

use rayon::prelude::*;

/// Below this length the sequential standard-library sort wins.
const SEQ_CUTOFF: usize = 1 << 13;
/// Runs shorter than this are merged sequentially.
const MERGE_CUTOFF: usize = 1 << 12;

/// Stable parallel merge sort by a key function.
pub fn par_merge_sort<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    let mut buf: Vec<T> = data.to_vec();
    sort_into(data, &mut buf, &key);
}

/// [`par_merge_sort`] with a caller-owned scratch buffer (resized to
/// `data.len()`, capacity reused): repeated sorts at a stable shape touch
/// the heap only on the first call. The serving engine's Γ-general decode
/// path sorts per job through this entry point.
pub fn par_merge_sort_with<T, K, F>(data: &mut [T], scratch: &mut Vec<T>, key: F)
where
    T: Copy + Send + Sync + Default,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    // No clear(): sort_into fully overwrites the scratch during merging,
    // so shrinking truncates for free and growth default-fills only the
    // new tail — re-sorts at a stable shape write nothing here.
    scratch.resize(data.len(), T::default());
    sort_into(data, scratch, &key);
}

fn sort_into<T, K, F>(data: &mut [T], buf: &mut [T], key: &F)
where
    T: Copy + Send + Sync,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    debug_assert_eq!(data.len(), buf.len());
    if data.len() <= SEQ_CUTOFF {
        // Bottom-up stable merge sort into the provided scratch: unlike
        // the standard library's stable sort this never allocates, which
        // the engine's steady-state zero-allocation contract needs.
        seq_bottom_up_merge_sort(data, buf, key);
        return;
    }
    let mid = data.len() / 2;
    let (dl, dr) = data.split_at_mut(mid);
    let (bl, br) = buf.split_at_mut(mid);
    rayon::join(|| sort_into(dl, bl, key), || sort_into(dr, br, key));
    // Merge dl, dr into buf, then copy back.
    par_merge(dl, dr, buf, key);
    data.copy_from_slice(buf);
}

/// Leaf width below which runs are insertion-sorted in place before the
/// bottom-up merging starts (branch-friendly for nearly-sorted runs).
const RUN_WIDTH: usize = 32;

/// Stable, allocation-free bottom-up merge sort using `buf` as ping-pong
/// scratch.
fn seq_bottom_up_merge_sort<T, K, F>(data: &mut [T], buf: &mut [T], key: &F)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    let n = data.len();
    for start in (0..n).step_by(RUN_WIDTH) {
        insertion_sort(&mut data[start..(start + RUN_WIDTH).min(n)], key);
    }
    let mut width = RUN_WIDTH;
    let mut in_data = true;
    while width < n {
        if in_data {
            merge_pass(data, buf, width, key);
        } else {
            merge_pass(buf, data, width, key);
        }
        in_data = !in_data;
        width *= 2;
    }
    if !in_data {
        data.copy_from_slice(buf);
    }
}

/// One bottom-up pass: merge adjacent `width`-runs of `src` into `dst`.
fn merge_pass<T, K, F>(src: &[T], dst: &mut [T], width: usize, key: &F)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    let n = src.len();
    let mut i = 0;
    while i < n {
        let mid = (i + width).min(n);
        let end = (i + 2 * width).min(n);
        seq_merge(&src[i..mid], &src[mid..end], &mut dst[i..end], key);
        i = end;
    }
}

/// Stable in-place insertion sort (tiny runs only).
fn insertion_sort<T, K, F>(run: &mut [T], key: &F)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    for i in 1..run.len() {
        let mut j = i;
        while j > 0 && key(&run[j - 1]) > key(&run[j]) {
            run.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Merge two sorted runs into `out` in parallel.
fn par_merge<T, K, F>(left: &[T], right: &[T], out: &mut [T], key: &F)
where
    T: Copy + Send + Sync,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    debug_assert_eq!(left.len() + right.len(), out.len());
    if out.len() <= MERGE_CUTOFF {
        seq_merge(left, right, out, key);
        return;
    }
    // Split at the median of the longer run; binary-search the partner.
    let (l_split, r_split) = if left.len() >= right.len() {
        let lm = left.len() / 2;
        let pivot = key(&left[lm]);
        let rm = right.partition_point(|x| key(x) < pivot);
        (lm, rm)
    } else {
        let rm = right.len() / 2;
        let pivot = key(&right[rm]);
        // For stability, equal keys from `left` must come first.
        let lm = left.partition_point(|x| key(x) <= pivot);
        (lm, rm)
    };
    let (out_lo, out_hi) = out.split_at_mut(l_split + r_split);
    rayon::join(
        || par_merge(&left[..l_split], &right[..r_split], out_lo, key),
        || par_merge(&left[l_split..], &right[r_split..], out_hi, key),
    );
}

fn seq_merge<T, K, F>(left: &[T], right: &[T], out: &mut [T], key: &F)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        // `<=` keeps stability: ties favour the left (earlier) run.
        let take_left = i < left.len() && (j >= right.len() || key(&left[i]) <= key(&right[j]));
        if take_left {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

/// Unstable parallel sample sort by a key function.
pub fn par_sample_sort<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync + Default,
    K: Ord + Send + Sync + Clone,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    if n <= SEQ_CUTOFF {
        data.sort_unstable_by_key(&key);
        return;
    }
    let buckets = rayon::current_num_threads().clamp(2, 64);
    // Oversampled stride sample → splitters.
    let oversample = 8;
    let step = (n / (buckets * oversample)).max(1);
    let mut sample: Vec<K> = data.iter().step_by(step).map(&key).collect();
    sample.sort_unstable();
    let splitters: Vec<K> = (1..buckets)
        .map(|b| sample[(b * sample.len() / buckets).min(sample.len() - 1)].clone())
        .collect();
    // Classify every element (parallel), then histogram → offsets.
    let classes: Vec<u32> =
        data.par_iter().map(|x| splitters.partition_point(|s| *s <= key(x)) as u32).collect();
    let mut counts = vec![0u64; buckets];
    for &c in &classes {
        counts[c as usize] += 1;
    }
    let mut offsets = counts.clone();
    crate::scan::exclusive_scan_u64(&mut offsets);
    // Scatter into a scratch buffer (sequential pass keeps it simple and is
    // memory-bound anyway), then sort each bucket in parallel.
    let mut scratch: Vec<T> = vec![T::default(); n];
    let mut cursors = offsets.clone();
    for (idx, &c) in classes.iter().enumerate() {
        let at = cursors[c as usize] as usize;
        scratch[at] = data[idx];
        cursors[c as usize] += 1;
    }
    let mut slices: Vec<&mut [T]> = Vec::with_capacity(buckets);
    let mut rest: &mut [T] = &mut scratch;
    #[allow(clippy::needless_range_loop)] // cursor walk over two arrays
    for b in 0..buckets {
        let len = counts[b] as usize;
        let (head, tail) = rest.split_at_mut(len);
        slices.push(head);
        rest = tail;
    }
    slices.into_par_iter().for_each(|s| s.sort_unstable_by_key(&key));
    data.copy_from_slice(&scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::{Rng64, SplitMix64};

    fn random_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64() as i64 % 10_000).collect()
    }

    #[test]
    fn merge_sort_matches_std_small() {
        let mut a = random_vec(100, 1);
        let mut b = a.clone();
        par_merge_sort(&mut a, |x| *x);
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_sort_matches_std_large() {
        let mut a = random_vec(200_000, 2);
        let mut b = a.clone();
        par_merge_sort(&mut a, |x| *x);
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_sort_is_stable() {
        // Key only on the first tuple element; payload must keep input order.
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<(u8, u32)> = (0..100_000u32).map(|i| ((rng.below(4)) as u8, i)).collect();
        par_merge_sort(&mut v, |x| x.0);
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {w:?}");
            }
        }
    }

    #[test]
    fn scratch_variant_matches_and_reuses_capacity() {
        let mut scratch = Vec::new();
        for (n, seed) in [(100usize, 7u64), (5_000, 8), (60_000, 9)] {
            let mut a = random_vec(n, seed);
            let mut b = a.clone();
            par_merge_sort_with(&mut a, &mut scratch, |x| *x);
            b.sort();
            assert_eq!(a, b, "n={n}");
        }
        // At a fixed shape, repeated sorts never regrow the scratch.
        let cap = scratch.capacity();
        for seed in 20..25 {
            let mut a = random_vec(60_000, seed);
            par_merge_sort_with(&mut a, &mut scratch, |x| *x);
            assert_eq!(scratch.capacity(), cap);
        }
    }

    #[test]
    fn scratch_variant_is_stable() {
        let mut rng = SplitMix64::new(13);
        let mut v: Vec<(u8, u32)> = (0..50_000u32).map(|i| ((rng.below(4)) as u8, i)).collect();
        par_merge_sort_with(&mut v, &mut Vec::new(), |x| x.0);
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {w:?}");
            }
        }
    }

    #[test]
    fn merge_sort_descending_key() {
        let mut a = random_vec(50_000, 4);
        let mut b = a.clone();
        par_merge_sort(&mut a, |x| std::cmp::Reverse(*x));
        b.sort_by_key(|x| std::cmp::Reverse(*x));
        assert_eq!(a, b);
    }

    #[test]
    fn sample_sort_matches_std() {
        for seed in 0..4 {
            let mut a = random_vec(150_000, 10 + seed);
            let mut b = a.clone();
            par_sample_sort(&mut a, |x| *x);
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn sample_sort_constant_input() {
        let mut a = vec![7i64; 100_000];
        par_sample_sort(&mut a, |x| *x);
        assert!(a.iter().all(|&x| x == 7));
    }

    #[test]
    fn sample_sort_already_sorted() {
        let mut a: Vec<i64> = (0..120_000).collect();
        let want = a.clone();
        par_sample_sort(&mut a, |x| *x);
        assert_eq!(a, want);
    }

    #[test]
    fn sorts_handle_empty_and_tiny() {
        let mut empty: Vec<i64> = vec![];
        par_merge_sort(&mut empty, |x| *x);
        par_sample_sort(&mut empty, |x| *x);
        let mut one = vec![5i64];
        par_merge_sort(&mut one, |x| *x);
        par_sample_sort(&mut one, |x| *x);
        assert_eq!(one, vec![5]);
    }

    #[test]
    fn score_shape_input() {
        // (score, index) pairs as produced by the MN decoder: sort by
        // descending score, ascending index.
        let mut rng = SplitMix64::new(6);
        let mut v: Vec<(i64, u32)> =
            (0..80_000u32).map(|i| ((rng.below(500) as i64) - 250, i)).collect();
        let mut want = v.clone();
        par_merge_sort(&mut v, |&(s, i)| (std::cmp::Reverse(s), i));
        want.sort_by_key(|&(s, i)| (std::cmp::Reverse(s), i));
        assert_eq!(v, want);
    }
}
