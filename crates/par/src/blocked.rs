//! Privatized, cache-blocked scatter accumulation — the contention-free
//! alternative to [`crate::scatter::AtomicCounters`].
//!
//! The decoder's Ψ/Δ* sums scatter `m·Γ` updates into `n` slots. The atomic
//! accumulator serializes on hot slots (every update is a `fetch_add` on a
//! shared cache line); this module removes the contention entirely by
//! *privatizing*: each worker counts into its own dense buffer, then the
//! buffers are merged block-by-block in parallel (each output block is owned
//! by exactly one merging worker, so the merge is also write-contention
//! free and streams through the buffers cache-line by cache-line).
//!
//! # Choosing a kernel
//!
//! | kernel | memory | wins when |
//! |---|---|---|
//! | direct (sequential) | — | 1 worker: plain adds beat any machinery |
//! | blocked (this module) | `t·n` words/plane | dense updates, `m·Γ ≳ 4·t·n` |
//! | atomic ([`crate::scatter`]) | none extra | sparse updates or huge `n` |
//!
//! The crossover is a cost model: privatization pays `O(t·n)` for zeroing
//! and merging regardless of the update count, while atomics pay per update.
//! [`choose_scatter`] encodes the `m·Γ / n` density heuristic; callers can
//! override it.
//!
//! [`BlockedScatter`] doubles as a reusable scratch arena: buffers persist
//! across calls, so Monte-Carlo replicate loops allocate only on the first
//! decode (warm-up) and run allocation-free afterwards.

use rayon::prelude::*;

use crate::chunks::even_ranges;

/// Merge granularity: 8K slots (64 KiB of `u64`) per merge block, sized to
/// stay resident in L2 while `t` source buffers stream through it.
const MERGE_BLOCK: usize = 1 << 13;

/// Density threshold for [`choose_scatter`]: privatize when the update count
/// exceeds this multiple of `threads · slots`.
const BLOCKED_DENSITY: usize = 4;

/// Which scatter kernel a workload should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScatterKind {
    /// Single worker: write straight into the output, no machinery.
    Direct,
    /// Privatized per-worker buffers with a blocked parallel merge.
    Blocked,
    /// Shared atomic accumulator ([`crate::scatter::AtomicCounters`]).
    Atomic,
}

/// Pick a scatter kernel from the workload shape.
///
/// `slots` is the output length (`n` for the decoder), `updates` the total
/// scatter-add count (`m·Γ` for the decoder; the `m·Γ/n` density of the
/// paper's design). Privatization needs `updates` to dominate the `t·n`
/// zero-and-merge overhead; sparse workloads keep the atomic kernel.
pub fn choose_scatter(slots: usize, updates: usize, threads: usize) -> ScatterKind {
    if threads <= 1 {
        ScatterKind::Direct
    } else if updates >= BLOCKED_DENSITY * threads * slots.max(1) {
        ScatterKind::Blocked
    } else {
        ScatterKind::Atomic
    }
}

/// Reusable privatized accumulator with two planes (the decoder needs Ψ and
/// Δ* from the same traversal; single-plane users just take plane A).
///
/// All buffers are kept across calls — create one [`BlockedScatter`] per
/// worker/replicate loop and reuse it.
#[derive(Default)]
pub struct BlockedScatter {
    plane_a: Vec<Vec<u64>>,
    plane_b: Vec<Vec<u64>>,
    parts: usize,
    len: usize,
}

impl BlockedScatter {
    /// New arena with no buffers; they grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroed per-part buffers for both planes: `parts` buffers of `len`
    /// slots each. Reuses existing allocations whenever possible.
    ///
    /// Returns `(plane_a, plane_b)`; index them `[part][slot]`.
    pub fn planes(&mut self, parts: usize, len: usize) -> (&mut [Vec<u64>], &mut [Vec<u64>]) {
        prepare_plane(&mut self.plane_a, parts, len);
        prepare_plane(&mut self.plane_b, parts, len);
        self.parts = parts;
        self.len = len;
        (&mut self.plane_a[..parts], &mut self.plane_b[..parts])
    }

    /// Zeroed single-plane buffers (plane A only).
    pub fn plane(&mut self, parts: usize, len: usize) -> &mut [Vec<u64>] {
        prepare_plane(&mut self.plane_a, parts, len);
        self.parts = parts;
        self.len = len;
        &mut self.plane_a[..parts]
    }

    /// Merge both planes into the outputs: `out_a[j] = Σ_p plane_a[p][j]`,
    /// blocked over `j` and parallel across blocks.
    ///
    /// # Panics
    /// Panics if the outputs are shorter than the prepared plane length.
    pub fn merge_pair_into(&self, out_a: &mut [u64], out_b: &mut [u64]) {
        assert!(out_a.len() >= self.len && out_b.len() >= self.len, "merge output too short");
        let (parts, len) = (self.parts, self.len);
        out_a[..len]
            .par_chunks_mut(MERGE_BLOCK)
            .zip(out_b[..len].par_chunks_mut(MERGE_BLOCK))
            .enumerate()
            .for_each(|(block, (dst_a, dst_b))| {
                let base = block * MERGE_BLOCK;
                dst_a.copy_from_slice(&self.plane_a[0][base..base + dst_a.len()]);
                dst_b.copy_from_slice(&self.plane_b[0][base..base + dst_b.len()]);
                for p in 1..parts {
                    let src_a = &self.plane_a[p][base..base + dst_a.len()];
                    let src_b = &self.plane_b[p][base..base + dst_b.len()];
                    for (d, s) in dst_a.iter_mut().zip(src_a) {
                        *d += s;
                    }
                    for (d, s) in dst_b.iter_mut().zip(src_b) {
                        *d += s;
                    }
                }
            });
    }

    /// Merge plane A into `out` (single-plane workloads).
    ///
    /// # Panics
    /// Panics if `out` is shorter than the prepared plane length.
    pub fn merge_into(&self, out: &mut [u64]) {
        assert!(out.len() >= self.len, "merge output too short");
        let (parts, len) = (self.parts, self.len);
        out[..len].par_chunks_mut(MERGE_BLOCK).enumerate().for_each(|(block, dst)| {
            let base = block * MERGE_BLOCK;
            dst.copy_from_slice(&self.plane_a[0][base..base + dst.len()]);
            for p in 1..parts {
                let src = &self.plane_a[p][base..base + dst.len()];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
        });
    }

    /// Convenience driver for the common pattern: partition `items` work
    /// units across workers, let `fill(part_buffer_a, part_buffer_b, range)`
    /// scatter each range into its private buffers, merge into the outputs.
    ///
    /// Runs the `Direct` kernel (no buffers, no parallelism, no allocation)
    /// when only one worker is available.
    pub fn scatter_pair<F>(&mut self, out_a: &mut [u64], out_b: &mut [u64], items: usize, fill: F)
    where
        F: Fn(&mut [u64], &mut [u64], std::ops::Range<usize>) + Sync,
    {
        let threads = rayon::current_num_threads().max(1);
        let parts = threads.min(items.max(1));
        if parts <= 1 {
            out_a.fill(0);
            out_b.fill(0);
            fill(out_a, out_b, 0..items);
            return;
        }
        let len = out_a.len();
        let (plane_a, plane_b) = self.planes(parts, len);
        let ranges = even_ranges(items, parts);
        plane_a
            .par_iter_mut()
            .zip(plane_b.par_iter_mut())
            .zip(ranges.into_par_iter())
            .for_each(|((buf_a, buf_b), range)| fill(buf_a, buf_b, range));
        self.merge_pair_into(out_a, out_b);
    }

    /// Single-plane variant of [`Self::scatter_pair`].
    pub fn scatter<F>(&mut self, out: &mut [u64], items: usize, fill: F)
    where
        F: Fn(&mut [u64], std::ops::Range<usize>) + Sync,
    {
        let threads = rayon::current_num_threads().max(1);
        let parts = threads.min(items.max(1));
        if parts <= 1 {
            out.fill(0);
            fill(out, 0..items);
            return;
        }
        let len = out.len();
        let plane = self.plane(parts, len);
        let ranges = even_ranges(items, parts);
        plane.par_iter_mut().zip(ranges.into_par_iter()).for_each(|(buf, range)| fill(buf, range));
        self.merge_into(out);
    }
}

/// Grow a plane to `parts` buffers of `len` zeroed slots, reusing existing
/// allocations (zeroing is parallel: each buffer is owned by one worker).
fn prepare_plane(plane: &mut Vec<Vec<u64>>, parts: usize, len: usize) {
    if plane.len() < parts {
        plane.resize_with(parts, Vec::new);
    }
    plane[..parts].par_iter_mut().for_each(|buf| {
        if buf.len() != len {
            buf.clear();
            buf.resize(len, 0);
        } else {
            buf.fill(0);
        }
    });
}

impl std::fmt::Debug for BlockedScatter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockedScatter")
            .field("parts", &self.parts)
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::AtomicCounters;

    fn reference(pairs: &[(usize, u64)], slots: usize) -> Vec<u64> {
        let mut out = vec![0u64; slots];
        for &(s, w) in pairs {
            out[s] += w;
        }
        out
    }

    fn test_pairs(count: usize, slots: usize) -> Vec<(usize, u64)> {
        (0..count).map(|i| ((i * 2654435761) % slots, (i % 7 + 1) as u64)).collect()
    }

    #[test]
    fn matches_reference_and_atomic() {
        let slots = 1000;
        let pairs = test_pairs(200_000, slots);
        let want = reference(&pairs, slots);

        let mut blocked = BlockedScatter::new();
        let mut out = vec![0u64; slots];
        blocked.scatter(&mut out, pairs.len(), |buf, range| {
            for &(s, w) in &pairs[range] {
                buf[s] += w;
            }
        });
        assert_eq!(out, want);

        let atomic = AtomicCounters::new(slots);
        for &(s, w) in &pairs {
            atomic.add(s, w);
        }
        assert_eq!(atomic.into_vec(), want);
    }

    #[test]
    fn pair_planes_accumulate_independently() {
        let slots = 500;
        let pairs = test_pairs(50_000, slots);
        let want_a = reference(&pairs, slots);
        let want_b: Vec<u64> = {
            let mut out = vec![0u64; slots];
            for &(s, _) in &pairs {
                out[s] += 1;
            }
            out
        };
        let mut blocked = BlockedScatter::new();
        let mut out_a = vec![0u64; slots];
        let mut out_b = vec![0u64; slots];
        blocked.scatter_pair(&mut out_a, &mut out_b, pairs.len(), |a, b, range| {
            for &(s, w) in &pairs[range] {
                a[s] += w;
                b[s] += 1;
            }
        });
        assert_eq!(out_a, want_a);
        assert_eq!(out_b, want_b);
    }

    #[test]
    fn reuse_across_different_shapes() {
        let mut blocked = BlockedScatter::new();
        for (slots, count) in [(100usize, 10_000usize), (1 << 14, 200_000), (100, 5_000)] {
            let pairs = test_pairs(count, slots);
            let mut out = vec![0u64; slots];
            blocked.scatter(&mut out, pairs.len(), |buf, range| {
                for &(s, w) in &pairs[range] {
                    buf[s] += w;
                }
            });
            assert_eq!(out, reference(&pairs, slots), "slots={slots}");
        }
    }

    #[test]
    fn single_threaded_direct_path() {
        let slots = 64;
        let pairs = test_pairs(5_000, slots);
        let want = reference(&pairs, slots);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            let mut blocked = BlockedScatter::new();
            let mut out = vec![0u64; slots];
            blocked.scatter(&mut out, pairs.len(), |buf, range| {
                for &(s, w) in &pairs[range] {
                    buf[s] += w;
                }
            });
            assert_eq!(out, want);
        });
    }

    #[test]
    fn empty_work_is_fine() {
        let mut blocked = BlockedScatter::new();
        let mut out = vec![7u64; 10];
        blocked.scatter(&mut out, 0, |_, _| {});
        assert_eq!(out, vec![0u64; 10]);
    }

    #[test]
    fn heuristic_prefers_direct_then_density() {
        assert_eq!(choose_scatter(1000, 1_000_000, 1), ScatterKind::Direct);
        assert_eq!(choose_scatter(1000, 1_000_000, 8), ScatterKind::Blocked);
        assert_eq!(choose_scatter(1_000_000, 10_000, 8), ScatterKind::Atomic);
        // Boundary: updates == 4·t·slots engages privatization.
        assert_eq!(choose_scatter(100, 4 * 8 * 100, 8), ScatterKind::Blocked);
        assert_eq!(choose_scatter(100, 4 * 8 * 100 - 1, 8), ScatterKind::Atomic);
    }

    #[test]
    fn merge_block_boundaries_are_exact() {
        // Slot count straddling several merge blocks, all slots hit once.
        let slots = MERGE_BLOCK * 2 + 37;
        let mut blocked = BlockedScatter::new();
        let mut out = vec![0u64; slots];
        blocked.scatter(&mut out, slots, |buf, range| {
            for s in range {
                buf[s] += s as u64;
            }
        });
        for (s, &v) in out.iter().enumerate() {
            assert_eq!(v, s as u64);
        }
    }
}
