//! Parallel prefix sums.
//!
//! Used to build CSR offset arrays from per-row counts (design crate) and to
//! turn per-chunk histogram counts into write cursors (sample sort). The
//! implementation is the textbook two-pass blocked scan: local sums, then an
//! exclusive scan of block totals, then a local fix-up pass.

use rayon::prelude::*;

use crate::chunks::{chunk_count, even_ranges};

/// Minimum elements per block before the parallel path engages.
const PAR_GRAIN: usize = 1 << 14;

/// In-place **exclusive** prefix sum; returns the grand total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` with total `8`.
pub fn exclusive_scan_u64(data: &mut [u64]) -> u64 {
    if data.len() < PAR_GRAIN {
        let mut acc = 0u64;
        for v in data.iter_mut() {
            let next = acc + *v;
            *v = acc;
            acc = next;
        }
        return acc;
    }
    let ranges = even_ranges(data.len(), chunk_count(data.len(), PAR_GRAIN));
    // Pass 1: block totals.
    let totals: Vec<u64> = {
        // Split into disjoint slices so each task owns its block.
        let blocks = split_by_ranges(data, &ranges);
        blocks.into_par_iter().map(|b| b.iter().sum()).collect()
    };
    // Scan of block totals (small, sequential).
    let mut offsets = totals;
    let mut acc = 0u64;
    for v in offsets.iter_mut() {
        let next = acc + *v;
        *v = acc;
        acc = next;
    }
    // Pass 2: local exclusive scans seeded by block offsets.
    let blocks = split_by_ranges(data, &ranges);
    blocks.into_par_iter().zip(offsets.par_iter()).for_each(|(block, &seed)| {
        let mut local = seed;
        for v in block.iter_mut() {
            let next = local + *v;
            *v = local;
            local = next;
        }
    });
    acc
}

/// In-place **inclusive** prefix sum; returns the grand total.
pub fn inclusive_scan_u64(data: &mut [u64]) -> u64 {
    if data.is_empty() {
        return 0;
    }
    // inclusive[i] = exclusive[i] + original[i]; cheaper to just shift:
    let originals_last = *data.last().unwrap();
    let total = exclusive_scan_u64(data);
    // data now holds the exclusive scan; rebuild inclusive in one pass.
    // exclusive[i+1] = inclusive[i], so shift left and append total.
    let len = data.len();
    data.copy_within(1..len, 0);
    data[len - 1] = total;
    debug_assert!(total >= originals_last);
    total
}

/// Carve a mutable slice into the given contiguous, gap-free ranges.
fn split_by_ranges<'a, T>(
    mut data: &'a mut [T],
    ranges: &[std::ops::Range<usize>],
) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0;
    for r in ranges {
        debug_assert_eq!(r.start, consumed, "ranges must be contiguous from 0");
        let (head, tail) = data.split_at_mut(r.len());
        out.push(head);
        data = tail;
        consumed = r.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::Rng64 as _;
    use pooled_rng::SplitMix64;

    fn reference_exclusive(v: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(v.len());
        let mut acc = 0u64;
        for &x in v {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn exclusive_small_matches_reference() {
        let mut v = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let (want, want_total) = reference_exclusive(&v);
        let total = exclusive_scan_u64(&mut v);
        assert_eq!(v, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn exclusive_large_matches_reference() {
        let mut rng = SplitMix64::new(5);
        let orig: Vec<u64> = (0..100_000).map(|_| rng.below(1000)).collect();
        let (want, want_total) = reference_exclusive(&orig);
        let mut v = orig.clone();
        let total = exclusive_scan_u64(&mut v);
        assert_eq!(total, want_total);
        assert_eq!(v, want);
    }

    #[test]
    fn exclusive_empty_and_single() {
        let mut empty: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_u64(&mut empty), 0);
        let mut one = vec![7u64];
        assert_eq!(exclusive_scan_u64(&mut one), 7);
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn inclusive_matches_manual() {
        let mut v = vec![1u64, 2, 3, 4];
        let total = inclusive_scan_u64(&mut v);
        assert_eq!(v, vec![1, 3, 6, 10]);
        assert_eq!(total, 10);
    }

    #[test]
    fn inclusive_large_matches_reference() {
        let mut rng = SplitMix64::new(9);
        let orig: Vec<u64> = (0..50_000).map(|_| rng.below(10)).collect();
        let mut want = Vec::with_capacity(orig.len());
        let mut acc = 0u64;
        for &x in &orig {
            acc += x;
            want.push(acc);
        }
        let mut v = orig.clone();
        let total = inclusive_scan_u64(&mut v);
        assert_eq!(total, acc);
        assert_eq!(v, want);
    }

    #[test]
    fn csr_offsets_use_case() {
        // counts -> offsets -> the last offset equals total nnz.
        let mut counts = vec![2u64, 0, 3, 1];
        let nnz = exclusive_scan_u64(&mut counts);
        assert_eq!(counts, vec![0, 2, 2, 5]);
        assert_eq!(nnz, 6);
    }
}
