//! Parallel top-k selection.
//!
//! Lines 7–9 of Algorithm 1 sort all `n` scores only to keep the largest
//! `k`. Since `k = n^θ ≪ n`, selection beats sorting asymptotically; this
//! module provides the parallel selection path the decoder uses by default
//! (the faithful full-sort path lives next to it in `pooled-core` and the
//! two are property-tested equal).
//!
//! Strategy: each worker scans a contiguous chunk keeping a local min-heap
//! of its k best items; the heaps are then merged sequentially (k·workers
//! items, negligible). Ties are broken by ascending index so the result is
//! deterministic and matches a stable descending sort.

use rayon::prelude::*;
use std::collections::BinaryHeap;

use crate::chunks::{chunk_count, even_ranges};

/// Minimum chunk size before parallel selection engages.
const PAR_GRAIN: usize = 1 << 14;

/// Entry in the selection heap: ordered by (score asc, index desc) so the
/// heap root is the *weakest* current member under the deterministic
/// (score desc, index asc) ranking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Weakest {
    score: i64,
    index: usize,
}

impl Ord for Weakest {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we want the root to be the entry that
        // loses first, i.e. smallest score, largest index on ties.
        other.score.cmp(&self.score).then_with(|| self.index.cmp(&other.index))
    }
}

impl PartialOrd for Weakest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Indices of the `k` largest scores, ranked by `(score desc, index asc)`.
///
/// Returns exactly `min(k, scores.len())` indices in ranking order. The
/// result is identical to sorting `(Reverse(score), index)` and truncating —
/// the decoder's property tests rely on that equivalence.
pub fn top_k_indices(scores: &[i64], k: usize) -> Vec<usize> {
    let n = scores.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let parts = chunk_count(n, PAR_GRAIN.max(k));
    let merged: Vec<Weakest> = if parts <= 1 {
        chunk_top_k(scores, 0..n, k)
    } else {
        let ranges = even_ranges(n, parts);
        let locals: Vec<Vec<Weakest>> =
            ranges.into_par_iter().map(|r| chunk_top_k(scores, r, k)).collect();
        let mut all: Vec<Weakest> = locals.into_iter().flatten().collect();
        // Global cut: rank and keep the best k.
        all.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.index.cmp(&b.index)));
        all.truncate(k);
        all
    };
    let mut out: Vec<Weakest> = merged;
    out.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.index.cmp(&b.index)));
    out.into_iter().map(|w| w.index).collect()
}

fn chunk_top_k(scores: &[i64], range: std::ops::Range<usize>, k: usize) -> Vec<Weakest> {
    let mut heap: BinaryHeap<Weakest> = BinaryHeap::with_capacity(k + 1);
    select_into_heap(&mut heap, scores, range, k);
    heap.into_vec()
}

/// The one selection loop both paths share: keep the `k` best of `range`
/// in `heap` under the deterministic `(score desc, index asc)` ranking.
fn select_into_heap(
    heap: &mut BinaryHeap<Weakest>,
    scores: &[i64],
    range: std::ops::Range<usize>,
    k: usize,
) {
    for i in range {
        let cand = Weakest { score: scores[i], index: i };
        if heap.len() < k {
            heap.push(cand);
        } else if let Some(&root) = heap.peek() {
            // Candidate beats the weakest member under (score desc, idx asc)?
            let beats =
                cand.score > root.score || (cand.score == root.score && cand.index < root.index);
            if beats {
                heap.pop();
                heap.push(cand);
            }
        }
    }
}

/// Reusable scratch for [`top_k_into`]: holds the selection heap's backing
/// storage across calls so repeated selections allocate nothing after
/// warm-up.
#[derive(Default)]
pub struct TopKScratch {
    heap_buf: Vec<Weakest>,
    merge_buf: Vec<Weakest>,
}

impl TopKScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for TopKScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKScratch").field("capacity", &self.heap_buf.capacity()).finish()
    }
}

/// Workspace variant of [`top_k_indices`]: writes the result into `out`
/// (cleared first) and reuses `scratch` for the selection heap.
///
/// Identical output to [`top_k_indices`] — deterministic `(score desc,
/// index asc)` ranking. Allocation-free once `out` and `scratch` have grown
/// to the workload's `k` (single-worker sequential selection; with more
/// workers it currently delegates to the parallel path, which allocates its
/// per-chunk heaps).
pub fn top_k_into(scores: &[i64], k: usize, out: &mut Vec<usize>, scratch: &mut TopKScratch) {
    out.clear();
    let n = scores.len();
    let k = k.min(n);
    if k == 0 {
        return;
    }
    if chunk_count(n, PAR_GRAIN.max(k)) > 1 {
        // Parallel regime: reuse the multi-chunk kernel.
        out.extend(top_k_indices(scores, k));
        return;
    }
    // Sequential selection on the reusable heap buffer (cleared *before*
    // the conversion so no stale elements get heapified).
    let mut heap_vec = std::mem::take(&mut scratch.heap_buf);
    heap_vec.clear();
    let mut heap = BinaryHeap::from(heap_vec);
    // `reserve` takes an *additional* count (len is 0 here), so this
    // guarantees capacity ≥ k+1 outright — no mid-selection regrowth.
    heap.reserve(k + 1);
    select_into_heap(&mut heap, scores, 0..n, k);
    let mut merged = std::mem::take(&mut scratch.merge_buf);
    merged.clear();
    let mut heap_vec = heap.into_vec();
    merged.extend_from_slice(&heap_vec);
    heap_vec.clear();
    scratch.heap_buf = heap_vec;
    merged.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.index.cmp(&b.index)));
    out.extend(merged.iter().map(|w| w.index));
    scratch.merge_buf = merged;
}

/// Reference sequential implementation (full sort) used by tests and the
/// faithful Algorithm 1 path.
pub fn top_k_indices_by_sort(scores: &[i64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].cmp(&scores[a]).then(a.cmp(&b)));
    order.truncate(k.min(scores.len()));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_rng::{Rng64, SplitMix64};

    #[test]
    fn matches_sort_reference_small() {
        let scores = vec![5i64, -2, 9, 9, 0, 3];
        assert_eq!(top_k_indices(&scores, 3), top_k_indices_by_sort(&scores, 3));
        assert_eq!(top_k_indices(&scores, 3), vec![2, 3, 0]);
    }

    #[test]
    fn matches_sort_reference_large() {
        let mut rng = SplitMix64::new(12);
        let scores: Vec<i64> = (0..300_000).map(|_| rng.below(1000) as i64 - 500).collect();
        for k in [1usize, 7, 64, 1000] {
            assert_eq!(top_k_indices(&scores, k), top_k_indices_by_sort(&scores, k), "k={k}");
        }
    }

    #[test]
    fn ties_break_by_ascending_index() {
        let scores = vec![1i64; 100_000];
        let got = top_k_indices(&scores, 5);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k_zero_and_k_ge_n() {
        let scores = vec![3i64, 1, 2];
        assert!(top_k_indices(&scores, 0).is_empty());
        assert_eq!(top_k_indices(&scores, 10), vec![0, 2, 1]);
    }

    #[test]
    fn empty_scores() {
        assert!(top_k_indices(&[], 4).is_empty());
    }

    #[test]
    fn extreme_values_do_not_overflow_ordering() {
        let scores = vec![i64::MAX, i64::MIN, 0, i64::MAX - 1];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 3]);
    }

    #[test]
    fn sparse_support_shape() {
        // Mimic decoder input: k large positive scores buried in noise.
        let mut rng = SplitMix64::new(77);
        let n = 200_000;
        let k = 450;
        let mut scores: Vec<i64> = (0..n).map(|_| rng.below(100) as i64).collect();
        let mut support: Vec<usize> = (0..k).map(|_| rng.index(n)).collect();
        support.sort_unstable();
        support.dedup();
        for &i in &support {
            scores[i] += 1_000_000;
        }
        let got = top_k_indices(&scores, support.len());
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, support);
    }
}
