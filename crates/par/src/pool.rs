//! Scoped thread-pool helpers.
//!
//! The thread-scaling ablation bench runs the same decode under 1, 2, 4, …
//! workers; rayon's global pool cannot be resized, so the bench builds
//! pools through this module. Experiment binaries also use
//! [`install_with_threads`] to honour a `--threads` flag.
//!
//! Pools are memoized process-wide by worker count ([`pool_with_threads`]):
//! building a rayon pool costs ~100 µs, which used to dominate short
//! ablation iterations that rebuilt the pool per measurement. The memo is
//! a bounded [`LruCache`] (the same policy the reconstruction engine uses
//! for pooling designs): a long sweep over many worker counts keeps at
//! most [`POOL_CACHE_CAPACITY`] pools alive instead of growing without
//! limit. Evicted pools stay valid for existing holders — the `Arc` keeps
//! them alive until the last clone drops.

use std::sync::{Arc, Mutex, OnceLock};

use rayon::{ThreadPool, ThreadPoolBuilder};

use crate::lru::LruCache;

/// Bound on the number of distinct worker counts memoized at once. Sweeps
/// use powers of two up to the machine width, so a handful of entries
/// covers every realistic caller; anything beyond that rebuilds on demand.
pub const POOL_CACHE_CAPACITY: usize = 8;

/// Process-wide LRU of pools keyed by worker count.
static POOL_CACHE: OnceLock<Mutex<LruCache<usize, Arc<ThreadPool>>>> = OnceLock::new();

/// The memoized pool with exactly `threads` workers, built on first request
/// and shared while it stays among the [`POOL_CACHE_CAPACITY`]
/// most-recently-used worker counts.
///
/// # Panics
/// Panics if the pool cannot be built (thread spawn failure).
pub fn pool_with_threads(threads: usize) -> Arc<ThreadPool> {
    let cache = POOL_CACHE.get_or_init(|| Mutex::new(LruCache::new(POOL_CACHE_CAPACITY)));
    if let Some(pool) = cache.lock().expect("pool cache poisoned").get(&threads) {
        return Arc::clone(pool);
    }
    // Build outside the critical section: a failed build must not poison
    // the cache for thread counts whose pools already exist. Two racing
    // builders are harmless — the loser's pool is dropped.
    let pool = Arc::new(
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("pooled-worker-{i}"))
            .build()
            .expect("failed to build rayon pool"),
    );
    let mut cache = cache.lock().expect("pool cache poisoned");
    cache.get_or_insert_with(&threads, || pool)
}

/// Run `op` inside the memoized rayon pool with exactly `threads` workers.
///
/// `threads == 0` means "use the default parallelism".
pub fn install_with_threads<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    if threads == 0 {
        return op();
    }
    pool_with_threads(threads).install(op)
}

/// The effective parallelism of the current context.
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    /// The memoization and eviction tests share the process-wide cache;
    /// serialize them so the eviction sweep cannot race the identity check.
    static CACHE_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn install_limits_worker_count() {
        for t in [1usize, 2, 4] {
            let seen = install_with_threads(t, rayon::current_num_threads);
            assert_eq!(seen, t);
        }
    }

    #[test]
    fn pools_are_memoized_per_thread_count() {
        let _guard = CACHE_TESTS.lock().unwrap();
        let a = pool_with_threads(2);
        let b = pool_with_threads(2);
        assert!(Arc::ptr_eq(&a, &b), "same worker count must share one pool");
        let c = pool_with_threads(3);
        assert!(!Arc::ptr_eq(&a, &c), "different worker counts get distinct pools");
    }

    #[test]
    fn cache_is_bounded_and_evicted_pools_still_work() {
        let _guard = CACHE_TESTS.lock().unwrap();
        // Sweep far past the capacity; every pool handed out stays usable
        // even after the cache drops its own reference.
        let held: Vec<Arc<ThreadPool>> =
            (1..=2 * POOL_CACHE_CAPACITY).map(pool_with_threads).collect();
        let cache = POOL_CACHE.get().expect("cache initialized by the sweep");
        assert!(cache.lock().unwrap().len() <= POOL_CACHE_CAPACITY);
        for (i, pool) in held.iter().enumerate() {
            assert_eq!(pool.install(rayon::current_num_threads), i + 1);
        }
        // A re-request for an evicted count rebuilds rather than panics.
        let again = pool_with_threads(1);
        assert_eq!(again.install(rayon::current_num_threads), 1);
    }

    #[test]
    fn zero_uses_ambient_pool() {
        let ambient = rayon::current_num_threads();
        let seen = install_with_threads(0, rayon::current_num_threads);
        assert_eq!(seen, ambient);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let data: Vec<u64> = (0..100_000).collect();
        let sums: Vec<u64> = [1usize, 3, 8]
            .iter()
            .map(|&t| install_with_threads(t, || data.par_iter().sum::<u64>()))
            .collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }
}
