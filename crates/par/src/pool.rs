//! Scoped thread-pool helpers.
//!
//! The thread-scaling ablation bench runs the same decode under 1, 2, 4, …
//! workers; rayon's global pool cannot be resized, so the bench builds
//! throwaway pools through this module. Experiment binaries also use
//! [`install_with_threads`] to honour a `--threads` flag.

use rayon::ThreadPoolBuilder;

/// Run `op` inside a fresh rayon pool with exactly `threads` workers.
///
/// `threads == 0` means "use the default parallelism". Building a pool costs
/// ~100 µs; callers in hot paths should reuse pools instead.
pub fn install_with_threads<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    if threads == 0 {
        return op();
    }
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .thread_name(|i| format!("pooled-worker-{i}"))
        .build()
        .expect("failed to build rayon pool");
    pool.install(op)
}

/// The effective parallelism of the current context.
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn install_limits_worker_count() {
        for t in [1usize, 2, 4] {
            let seen = install_with_threads(t, rayon::current_num_threads);
            assert_eq!(seen, t);
        }
    }

    #[test]
    fn zero_uses_ambient_pool() {
        let ambient = rayon::current_num_threads();
        let seen = install_with_threads(0, rayon::current_num_threads);
        assert_eq!(seen, ambient);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let data: Vec<u64> = (0..100_000).collect();
        let sums: Vec<u64> = [1usize, 3, 8]
            .iter()
            .map(|&t| install_with_threads(t, || data.par_iter().sum::<u64>()))
            .collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }
}
