//! Atomic scatter-add accumulators.
//!
//! The Ψ/Δ* sums of Algorithm 1 are a transpose-free sparse matrix–vector
//! product: iterate queries in parallel and add each query's result into the
//! slots of its (distinct) member entries. Different queries share member
//! entries, so the adds race — [`AtomicCounters`] makes them safe, relaxed
//! (the sums commute, no ordering is needed) and still cache-friendly.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size array of `u64` counters supporting concurrent adds.
pub struct AtomicCounters {
    slots: Vec<AtomicU64>,
}

impl AtomicCounters {
    /// Allocate `len` zeroed counters.
    pub fn new(len: usize) -> Self {
        let mut slots = Vec::with_capacity(len);
        slots.resize_with(len, || AtomicU64::new(0));
        Self { slots }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no counters.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Concurrently add `value` to slot `i` (relaxed; sums commute).
    #[inline]
    pub fn add(&self, i: usize, value: u64) {
        self.slots[i].fetch_add(value, Ordering::Relaxed);
    }

    /// Concurrently increment slot `i` by one.
    #[inline]
    pub fn incr(&self, i: usize) {
        self.add(i, 1);
    }

    /// Read slot `i` (only meaningful after all writers joined).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }

    /// Consume the accumulator into a plain vector.
    pub fn into_vec(self) -> Vec<u64> {
        self.slots.into_iter().map(|a| a.into_inner()).collect()
    }

    /// Snapshot to a plain vector without consuming.
    pub fn to_vec(&self) -> Vec<u64> {
        self.slots.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Copy all counters into `out` without allocating (workspace path).
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn copy_into(&self, out: &mut [u64]) {
        assert_eq!(out.len(), self.len(), "output length must match counter count");
        for (dst, slot) in out.iter_mut().zip(&self.slots) {
            *dst = slot.load(Ordering::Relaxed);
        }
    }

    /// Reset every counter to zero (requires exclusive access).
    pub fn reset(&mut self) {
        for s in self.slots.iter_mut() {
            *s.get_mut() = 0;
        }
    }
}

impl std::fmt::Debug for AtomicCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicCounters").field("len", &self.slots.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn sequential_adds_accumulate() {
        let acc = AtomicCounters::new(4);
        acc.add(0, 5);
        acc.add(0, 7);
        acc.incr(3);
        assert_eq!(acc.to_vec(), vec![12, 0, 0, 1]);
    }

    #[test]
    fn concurrent_adds_lose_nothing() {
        let acc = AtomicCounters::new(64);
        (0..100_000u64).into_par_iter().for_each(|i| {
            acc.add((i % 64) as usize, 1);
        });
        let v = acc.into_vec();
        assert_eq!(v.iter().sum::<u64>(), 100_000);
        assert!(v.iter().all(|&c| c == 100_000 / 64 || c == 100_000 / 64 + 1));
    }

    #[test]
    fn concurrent_scatter_matches_sequential_histogram() {
        // The decoder's exact access pattern: many (slot, weight) pairs.
        let pairs: Vec<(usize, u64)> =
            (0..200_000).map(|i| ((i * 2654435761usize) % 1000, (i % 7 + 1) as u64)).collect();
        let mut want = vec![0u64; 1000];
        for &(s, w) in &pairs {
            want[s] += w;
        }
        let acc = AtomicCounters::new(1000);
        pairs.par_iter().for_each(|&(s, w)| acc.add(s, w));
        assert_eq!(acc.into_vec(), want);
    }

    #[test]
    fn reset_zeroes_all() {
        let mut acc = AtomicCounters::new(8);
        for i in 0..8 {
            acc.add(i, i as u64 + 1);
        }
        acc.reset();
        assert_eq!(acc.to_vec(), vec![0; 8]);
    }

    #[test]
    fn empty_accumulator() {
        let acc = AtomicCounters::new(0);
        assert!(acc.is_empty());
        assert!(acc.into_vec().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let acc = AtomicCounters::new(2);
        acc.add(2, 1);
    }
}
