//! Deterministic work partitioning.
//!
//! Experiments must produce identical output regardless of worker count, so
//! all parallel loops in the workspace are expressed over *fixed* index
//! ranges rather than rayon's adaptive splitting whenever the loop body
//! carries RNG state. `even_ranges` is the single source of truth for that
//! partitioning.

use std::ops::Range;

/// Split `0..len` into at most `parts` contiguous ranges whose lengths differ
/// by at most one. Returns fewer ranges when `len < parts`; never returns an
/// empty range.
///
/// ```
/// use pooled_par::chunks::even_ranges;
/// assert_eq!(even_ranges(10, 3), vec![0..4, 4..7, 7..10]);
/// assert_eq!(even_ranges(2, 8).len(), 2);
/// ```
pub fn even_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Number of chunks to use for `len` items given a per-chunk work target.
///
/// Caps at the available parallelism so tiny inputs do not pay the
/// fork/join overhead.
pub fn chunk_count(len: usize, min_per_chunk: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let by_grain = len.div_ceil(min_per_chunk.max(1));
    by_grain.min(rayon::current_num_threads().max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_whole_range_without_overlap() {
        for len in [0usize, 1, 2, 7, 100, 101, 1024] {
            for parts in [1usize, 2, 3, 8, 200] {
                let rs = even_ranges(len, parts);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                for w in rs.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "gap/overlap in {rs:?}");
                }
                if let (Some(first), Some(last)) = (rs.first(), rs.last()) {
                    assert_eq!(first.start, 0);
                    assert_eq!(last.end, len);
                }
            }
        }
    }

    #[test]
    fn balanced_within_one() {
        let rs = even_ranges(103, 8);
        let min = rs.iter().map(|r| r.len()).min().unwrap();
        let max = rs.iter().map(|r| r.len()).max().unwrap();
        assert!(max - min <= 1, "imbalance: {rs:?}");
    }

    #[test]
    fn no_empty_ranges() {
        for len in 1..40usize {
            for parts in 1..40usize {
                assert!(even_ranges(len, parts).iter().all(|r| !r.is_empty()));
            }
        }
    }

    #[test]
    fn zero_inputs_yield_no_ranges() {
        assert!(even_ranges(0, 4).is_empty());
        assert!(even_ranges(4, 0).is_empty());
    }

    #[test]
    fn chunk_count_respects_grain() {
        assert_eq!(chunk_count(0, 100), 0);
        assert_eq!(chunk_count(50, 100), 1);
        assert!(chunk_count(10_000, 100) >= 1);
        assert!(chunk_count(10_000, 100) <= rayon::current_num_threads());
    }
}
