//! Per-shard job processing.
//!
//! Each worker owns a [`WorkerScratch`] — every buffer one job needs,
//! reused forever — and runs jobs end to end: draw the hidden signal,
//! simulate query execution (the paper's dominant cost), execute the
//! additive queries, decode through the registry, and score against the
//! truth. After warm-up at a stable job shape the MN paths perform zero
//! heap allocations per job (pinned by `tests/alloc_free.rs`).
//!
//! [`process_batch`] is the design-affinity fast path: a run of MN jobs
//! sharing one cached design is served by **one** traversal of the design
//! (`pooled_design::batched::decode_sums_fused_batch`) — query execution
//! and Ψ accumulation for every lane while each CSR row is in cache, one
//! shared Δ*, and one overlapped query-latency sleep — instead of
//! re-streaming the CSR index arrays once per job. Every lane's result is
//! bit-identical to [`process_job`] on that spec alone.

use std::time::Instant;

use pooled_core::batch::BatchWorkspace;
use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries_dense_into;
use pooled_design::batched::decode_sums_fused_batch;
use pooled_design::factory::AnyDesign;
use pooled_design::PoolingDesign;
use pooled_rng::shuffle::sample_distinct_floyd_into;
use pooled_rng::SeedSequence;

use crate::job::{DecoderKind, Digest, JobResult, JobSpec};
use crate::registry::{decoder, DecodeScratch};
use crate::telemetry::{FlightRecorder, JobTrace, Span};

/// All buffers a worker reuses across jobs.
pub struct WorkerScratch {
    /// This worker's shard index (stamped into results).
    worker: u32,
    /// Hidden-signal support, ascending.
    support: Vec<usize>,
    /// Hidden signal, dense 0/1.
    truth: Vec<u8>,
    /// Additive query results.
    y: Vec<u64>,
    /// Decoder scratch (MN workspace + threshold bits).
    decode: DecodeScratch,
    /// Batched-path planes (lane-major truths/ys + the batch workspace).
    batch: BatchScratch,
}

/// Reusable planes for [`process_batch`].
#[derive(Default)]
struct BatchScratch {
    /// The widest run this worker may be handed (the engine's batch
    /// window); planes are capacity-reserved for it on first use, so the
    /// first maximal run after warm-up at a shape never allocates.
    window: usize,
    /// Hidden signals, lane-major `lanes × n` dense 0/1.
    truths: Vec<u8>,
    /// Query results, lane-major `lanes × m`.
    ys: Vec<u64>,
    /// Ψ lanes + shared Δ* + per-lane finish scratch.
    bw: BatchWorkspace,
}

impl WorkerScratch {
    /// Empty scratch for shard `worker`; buffers grow on first use.
    /// Equivalent to [`Self::with_batch_window`] at window 1.
    pub fn new(worker: u32) -> Self {
        Self::with_batch_window(worker, 1)
    }

    /// Empty scratch for shard `worker` serving runs of up to
    /// `batch_window` jobs: the batch planes reserve capacity for the
    /// full window the first time a traffic shape is seen, so run-length
    /// jitter (queue timing decides how many jobs a worker drains) can
    /// never trigger a mid-serving allocation after warm-up.
    pub fn with_batch_window(worker: u32, batch_window: usize) -> Self {
        Self {
            worker,
            support: Vec::new(),
            truth: Vec::new(),
            y: Vec::new(),
            decode: DecodeScratch::new(),
            batch: BatchScratch { window: batch_window.max(1), ..BatchScratch::default() },
        }
    }

    /// The shard index.
    pub fn worker(&self) -> u32 {
        self.worker
    }
}

/// Whether `candidate` may join a batch anchored by `first`: both must
/// request the classic MN decoder (the batched kernel's algorithm) and
/// resolve to the same design key, so one traversal serves the run.
/// `k` and the job seed may differ per lane — each lane finishes with its
/// own decoder weight against its own hidden signal.
pub fn batch_compatible(first: &JobSpec, candidate: &JobSpec) -> bool {
    first.decoder == DecoderKind::Mn
        && candidate.decoder == DecoderKind::Mn
        && crate::cache::DesignKey::of(first) == crate::cache::DesignKey::of(candidate)
}

/// Run one job against its (cached) design. Deterministic: every random
/// draw derives from `spec.seed` / `spec.design.seed`, so the result
/// fingerprint is independent of worker placement and timing.
pub fn process_job(spec: &JobSpec, design: &AnyDesign, scratch: &mut WorkerScratch) -> JobResult {
    process_job_traced(spec, design, scratch, None)
}

/// [`process_job`] with span tracing: when `tracing` carries a flight
/// recorder and a live trace, the decode stage's entry and exit are
/// stamped on the recorder's clock (`decode_start` / `decode_end`).
/// Timestamps never feed a seed or a kernel input, so the result is
/// bit-identical to the untraced call — tracing is fingerprint-invisible
/// by construction.
pub fn process_job_traced(
    spec: &JobSpec,
    design: &AnyDesign,
    scratch: &mut WorkerScratch,
    mut tracing: Option<(&FlightRecorder, &mut JobTrace)>,
) -> JobResult {
    let started = Instant::now();
    let seeds = SeedSequence::new(spec.seed);

    // 1. Draw the hidden weight-k signal into reusable buffers.
    let mut rng = seeds.child("signal", 0).rng();
    sample_distinct_floyd_into(spec.n, spec.k, &mut rng, &mut scratch.support);
    scratch.truth.clear();
    scratch.truth.resize(spec.n, 0);
    for &i in &scratch.support {
        scratch.truth[i] = 1;
    }

    // 2. Simulate executing the pooled queries — the latency the paper's
    // parallel design exists to hide. Worker shards overlap these sleeps
    // exactly like parallel lab equipment.
    if spec.query_cost_micros > 0 {
        std::thread::sleep(std::time::Duration::from_micros(spec.query_cost_micros as u64));
    }

    // 3. Additive query results y = Aᵀσ.
    execute_queries_dense_into(design, &scratch.truth, &mut scratch.y);

    // 4. Decode through the registry.
    if let Some((recorder, trace)) = tracing.as_mut() {
        trace.stamp(Span::DecodeStart, recorder.now_micros());
    }
    let decode_started = Instant::now();
    let out = decoder(spec.decoder).decode(
        design,
        &scratch.y,
        spec.k,
        spec.seed,
        &scratch.truth,
        &mut scratch.decode,
    );
    let decode_micros = decode_started.elapsed().as_micros() as u64;
    if let Some((recorder, trace)) = tracing.as_mut() {
        trace.stamp(Span::DecodeEnd, recorder.now_micros());
    }

    JobResult {
        id: spec.id,
        decoder: spec.decoder,
        exact: out.hits as usize == spec.k && out.weight as usize == spec.k,
        hits: out.hits,
        weight: out.weight,
        support_digest: out.support_digest,
        score_digest: out.score_digest,
        decode_micros,
        // Service time only; the engine adds the queue wait it measured.
        queue_micros: 0,
        total_micros: started.elapsed().as_micros() as u64,
        worker: scratch.worker,
    }
}

/// Serve a whole run of batch-compatible jobs (see [`batch_compatible`])
/// against their shared design: one design traversal for every lane's
/// query execution and Ψ accumulation, one shared Δ*, and one sleep for
/// the batch's query latency (the simulated query executions overlap —
/// they would run on parallel lab equipment — so the batch waits for the
/// slowest lane, not the sum).
///
/// Appends one [`JobResult`] per spec, in spec order. Deterministic:
/// every lane's result fingerprint equals [`process_job`]'s for the same
/// spec (exact `u64` sums make the batched accumulation bit-identical);
/// only the timing fields differ — `decode_micros` is the batch's decode
/// time split evenly across lanes, and every lane shares the batch's
/// service time.
///
/// # Panics
/// Panics (debug) if the specs are not mutually batch-compatible.
pub fn process_batch(
    specs: &[JobSpec],
    design: &AnyDesign,
    scratch: &mut WorkerScratch,
    out: &mut Vec<JobResult>,
) {
    debug_assert!(specs.windows(2).all(|w| batch_compatible(&specs[0], &w[1])));
    if specs.is_empty() {
        return;
    }
    let started = Instant::now();
    let csr = design.csr();
    let (n, m) = (csr.n(), csr.m());
    let lanes = specs.len();
    let batch = &mut scratch.batch;

    // Reserve every plane for the widest run this worker can be handed
    // at this shape: run lengths jitter with queue timing, so without
    // this a first-ever maximal run after warm-up would allocate.
    let window = batch.window.max(lanes);
    batch.bw.reserve(window, n);

    // 1. Draw every lane's hidden weight-k signal into the truth plane.
    batch.truths.clear();
    batch.truths.reserve(window * n);
    batch.truths.resize(lanes * n, 0);
    for (b, spec) in specs.iter().enumerate() {
        let mut rng = SeedSequence::new(spec.seed).child("signal", 0).rng();
        sample_distinct_floyd_into(spec.n, spec.k, &mut rng, &mut scratch.support);
        let lane = &mut batch.truths[b * n..(b + 1) * n];
        for &i in &scratch.support {
            lane[i] = 1;
        }
    }

    // 2. One overlapped query-execution sleep for the whole batch.
    let cost = specs.iter().map(|s| s.query_cost_micros).max().unwrap_or(0);
    if cost > 0 {
        std::thread::sleep(std::time::Duration::from_micros(cost as u64));
    }

    // 3. One traversal: every lane's y = Aᵀσ and Ψ, plus the shared Δ*.
    let decode_started = Instant::now();
    batch.ys.clear();
    batch.ys.reserve(window * m);
    batch.ys.resize(lanes * m, 0);
    batch.bw.prepare(lanes, n);
    {
        let (psis, dstar) = batch.bw.sums_mut();
        decode_sums_fused_batch(csr, &batch.truths, lanes, &mut batch.ys, psis, dstar);
    }

    // 4. Finish each lane with its own decoder weight and score it.
    let first = out.len();
    for (b, spec) in specs.iter().enumerate() {
        let ws = batch.bw.finish_lane(&MnDecoder::new(spec.k), b);
        let mut d = Digest::new();
        for &s in ws.scores() {
            d.push(s as u64);
        }
        let truth = &batch.truths[b * n..(b + 1) * n];
        let hits = ws.support().iter().filter(|&&i| truth[i] == 1).count() as u32;
        let weight = ws.support().len() as u32;
        out.push(JobResult {
            id: spec.id,
            decoder: spec.decoder,
            exact: hits as usize == spec.k && weight as usize == spec.k,
            hits,
            weight,
            support_digest: crate::job::digest_support(ws.support()),
            score_digest: d.finish(),
            decode_micros: 0, // patched below once the batch is timed
            queue_micros: 0,  // the engine adds the wait it measured
            total_micros: 0,
            worker: scratch.worker,
        });
    }
    let decode_micros = decode_started.elapsed().as_micros() as u64 / lanes as u64;
    let total_micros = started.elapsed().as_micros() as u64;
    for result in &mut out[first..] {
        result.decode_micros = decode_micros;
        result.total_micros = total_micros;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DesignKey;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            id: seed,
            n: 400,
            k: 6,
            m: 300,
            design: DesignSpec::random_regular(11),
            decoder: DecoderKind::Mn,
            seed,
            query_cost_micros: 0,
        }
    }

    #[test]
    fn same_spec_same_fingerprint_different_scratch() {
        let spec = spec(5);
        let design = DesignKey::of(&spec).sample();
        let mut a = WorkerScratch::new(0);
        let mut b = WorkerScratch::new(3);
        let ra = process_job(&spec, &design, &mut a);
        let rb = process_job(&spec, &design, &mut b);
        assert_eq!(ra.fingerprint(), rb.fingerprint());
        assert_eq!(rb.worker, 3, "worker stamp reflects the shard");
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let sa = spec(1);
        let sb = spec(2);
        let design = DesignKey::of(&sa).sample();
        let mut ws = WorkerScratch::new(0);
        let ra = process_job(&sa, &design, &mut ws);
        let rb = process_job(&sb, &design, &mut ws);
        assert_ne!(ra.fingerprint(), rb.fingerprint());
    }

    #[test]
    fn batch_fingerprints_match_per_job_processing() {
        // A batch of same-design MN jobs (different seeds, different k)
        // must produce bit-identical fingerprints to serving each spec
        // alone — the batcher's core contract.
        let mut specs: Vec<JobSpec> = (0..7).map(spec).collect();
        specs[3].k = 9; // mixed weights are batchable
        let design = DesignKey::of(&specs[0]).sample();
        let mut per_job = WorkerScratch::new(0);
        let want: Vec<u64> =
            specs.iter().map(|s| process_job(s, &design, &mut per_job).fingerprint()).collect();
        let mut batched = WorkerScratch::new(1);
        let mut out = Vec::new();
        process_batch(&specs, &design, &mut batched, &mut out);
        assert_eq!(out.len(), specs.len());
        let got: Vec<u64> = out.iter().map(|r| r.fingerprint()).collect();
        assert_eq!(got, want);
        assert!(out.iter().all(|r| r.worker == 1));
    }

    #[test]
    fn batch_compatibility_requires_mn_and_one_design() {
        let a = spec(1);
        let mut other_design = spec(2);
        other_design.design = DesignSpec::random_regular(99);
        let mut other_decoder = spec(3);
        other_decoder.decoder = DecoderKind::GeneralMn;
        let mut other_k = spec(4);
        other_k.k = 11;
        assert!(batch_compatible(&a, &spec(5)));
        assert!(batch_compatible(&a, &other_k), "k may vary per lane");
        assert!(!batch_compatible(&a, &other_design));
        assert!(!batch_compatible(&a, &other_decoder));
        assert!(!batch_compatible(&other_decoder, &a));
    }

    #[test]
    fn batch_sleeps_the_slowest_lane_once() {
        let mut specs: Vec<JobSpec> = (0..4).map(spec).collect();
        for (i, s) in specs.iter_mut().enumerate() {
            s.query_cost_micros = 5_000 * (i as u32 + 1);
        }
        let design = DesignKey::of(&specs[0]).sample();
        let mut ws = WorkerScratch::new(0);
        let started = Instant::now();
        let mut out = Vec::new();
        process_batch(&specs, &design, &mut ws, &mut out);
        let elapsed = started.elapsed().as_micros() as u64;
        assert!(elapsed >= 20_000, "batch must wait for the slowest lane ({elapsed}µs)");
        assert!(elapsed < 50_000, "batch slept lanes serially ({elapsed}µs ≥ sum of costs)");
    }

    #[test]
    fn query_cost_is_reflected_in_total_latency() {
        let mut s = spec(3);
        s.query_cost_micros = 20_000; // 20 ms
        let design = DesignKey::of(&s).sample();
        let mut ws = WorkerScratch::new(0);
        let r = process_job(&s, &design, &mut ws);
        assert!(r.total_micros >= 20_000, "total {}µs < simulated 20ms", r.total_micros);
        assert!(r.decode_micros < r.total_micros);
    }
}
