//! Per-shard job processing.
//!
//! Each worker owns a [`WorkerScratch`] — every buffer one job needs,
//! reused forever — and runs jobs end to end: draw the hidden signal,
//! simulate query execution (the paper's dominant cost), execute the
//! additive queries, decode through the registry, and score against the
//! truth. After warm-up at a stable job shape the MN paths perform zero
//! heap allocations per job (pinned by `tests/alloc_free.rs`).

use std::time::Instant;

use pooled_core::query::execute_queries_dense_into;
use pooled_design::factory::AnyDesign;
use pooled_rng::shuffle::sample_distinct_floyd_into;
use pooled_rng::SeedSequence;

use crate::job::{JobResult, JobSpec};
use crate::registry::{decoder, DecodeScratch};

/// All buffers a worker reuses across jobs.
pub struct WorkerScratch {
    /// This worker's shard index (stamped into results).
    worker: u32,
    /// Hidden-signal support, ascending.
    support: Vec<usize>,
    /// Hidden signal, dense 0/1.
    truth: Vec<u8>,
    /// Additive query results.
    y: Vec<u64>,
    /// Decoder scratch (MN workspace + threshold bits).
    decode: DecodeScratch,
}

impl WorkerScratch {
    /// Empty scratch for shard `worker`; buffers grow on first use.
    pub fn new(worker: u32) -> Self {
        Self {
            worker,
            support: Vec::new(),
            truth: Vec::new(),
            y: Vec::new(),
            decode: DecodeScratch::new(),
        }
    }

    /// The shard index.
    pub fn worker(&self) -> u32 {
        self.worker
    }
}

/// Run one job against its (cached) design. Deterministic: every random
/// draw derives from `spec.seed` / `spec.design.seed`, so the result
/// fingerprint is independent of worker placement and timing.
pub fn process_job(spec: &JobSpec, design: &AnyDesign, scratch: &mut WorkerScratch) -> JobResult {
    let started = Instant::now();
    let seeds = SeedSequence::new(spec.seed);

    // 1. Draw the hidden weight-k signal into reusable buffers.
    let mut rng = seeds.child("signal", 0).rng();
    sample_distinct_floyd_into(spec.n, spec.k, &mut rng, &mut scratch.support);
    scratch.truth.clear();
    scratch.truth.resize(spec.n, 0);
    for &i in &scratch.support {
        scratch.truth[i] = 1;
    }

    // 2. Simulate executing the pooled queries — the latency the paper's
    // parallel design exists to hide. Worker shards overlap these sleeps
    // exactly like parallel lab equipment.
    if spec.query_cost_micros > 0 {
        std::thread::sleep(std::time::Duration::from_micros(spec.query_cost_micros as u64));
    }

    // 3. Additive query results y = Aᵀσ.
    execute_queries_dense_into(design, &scratch.truth, &mut scratch.y);

    // 4. Decode through the registry.
    let decode_started = Instant::now();
    let out = decoder(spec.decoder).decode(
        design,
        &scratch.y,
        spec.k,
        spec.seed,
        &scratch.truth,
        &mut scratch.decode,
    );
    let decode_micros = decode_started.elapsed().as_micros() as u64;

    JobResult {
        id: spec.id,
        decoder: spec.decoder,
        exact: out.hits as usize == spec.k && out.weight as usize == spec.k,
        hits: out.hits,
        weight: out.weight,
        support_digest: out.support_digest,
        score_digest: out.score_digest,
        decode_micros,
        // Service time only; the engine adds the queue wait it measured.
        queue_micros: 0,
        total_micros: started.elapsed().as_micros() as u64,
        worker: scratch.worker,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DesignKey;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            id: seed,
            n: 400,
            k: 6,
            m: 300,
            design: DesignSpec::random_regular(11),
            decoder: DecoderKind::Mn,
            seed,
            query_cost_micros: 0,
        }
    }

    #[test]
    fn same_spec_same_fingerprint_different_scratch() {
        let spec = spec(5);
        let design = DesignKey::of(&spec).sample();
        let mut a = WorkerScratch::new(0);
        let mut b = WorkerScratch::new(3);
        let ra = process_job(&spec, &design, &mut a);
        let rb = process_job(&spec, &design, &mut b);
        assert_eq!(ra.fingerprint(), rb.fingerprint());
        assert_eq!(rb.worker, 3, "worker stamp reflects the shard");
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let sa = spec(1);
        let sb = spec(2);
        let design = DesignKey::of(&sa).sample();
        let mut ws = WorkerScratch::new(0);
        let ra = process_job(&sa, &design, &mut ws);
        let rb = process_job(&sb, &design, &mut ws);
        assert_ne!(ra.fingerprint(), rb.fingerprint());
    }

    #[test]
    fn query_cost_is_reflected_in_total_latency() {
        let mut s = spec(3);
        s.query_cost_micros = 20_000; // 20 ms
        let design = DesignKey::of(&s).sample();
        let mut ws = WorkerScratch::new(0);
        let r = process_job(&s, &design, &mut ws);
        assert!(r.total_micros >= 20_000, "total {}µs < simulated 20ms", r.total_micros);
        assert!(r.decode_micros < r.total_micros);
    }
}
