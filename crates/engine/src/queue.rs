//! Bounded multi-producer/multi-consumer queue with blocking backpressure.
//!
//! The engine's submission and completion channels. A plain
//! `Mutex<VecDeque>` + two condvars is deliberately boring: the queue is
//! touched once per job (milliseconds of work), so lock cost is noise,
//! and the `VecDeque` is preallocated at construction — pushes within
//! capacity never allocate, which the engine's steady-state
//! zero-allocation contract depends on.
//!
//! Semantics:
//!
//! * [`BoundedQueue::push`] blocks while the queue is full (backpressure
//!   propagates to the submitter) and fails only once the queue is closed.
//! * [`BoundedQueue::pop`] blocks while the queue is empty and returns
//!   `None` only when the queue is closed **and** drained — consumers see
//!   every item accepted before the close (graceful shutdown).
//! * [`BoundedQueue::close`] is idempotent and wakes all waiters.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error: the queue was closed; the rejected item is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct Closed<T>(pub T);

/// Outcome of a non-blocking push.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// Queue at capacity; retry later (backpressure signal).
    Full(T),
    /// Queue closed; the item will never be accepted.
    Closed(T),
}

/// Outcome of a non-blocking pop.
///
/// `Empty` and `Closed` are distinct on purpose: a non-blocking consumer
/// (the transport's writer-drain loop, a poller) must tell "nothing *yet*
/// — come back" apart from "nothing *ever again* — terminate". Collapsing
/// both into `None` forced such callers to poll a dead queue forever.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPop<T> {
    /// One item, in FIFO order.
    Item(T),
    /// Momentarily empty; more items may still arrive.
    Empty,
    /// Closed **and** drained; no item will ever arrive again.
    Closed,
}

impl<T> TryPop<T> {
    /// The item, if any (`Empty` and `Closed` both map to `None`).
    pub fn item(self) -> Option<T> {
        match self {
            TryPop::Item(item) => Some(item),
            TryPop::Empty | TryPop::Closed => None,
        }
    }
}

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. See the module docs for semantics.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items, preallocated.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue needs capacity at least 1");
        Self {
            capacity,
            state: Mutex::new(State { buf: VecDeque::with_capacity(capacity), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of buffered items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").buf.len()
    }

    /// Whether no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking push: waits while full, errs once closed.
    pub fn push(&self, item: T) -> Result<(), Closed<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if state.closed {
                return Err(Closed(item));
            }
            if state.buf.len() < self.capacity {
                state.buf.push_back(item);
                drop(state);
                self.not_empty.notify_one();
                return Ok(());
            }
            state = self.not_full.wait(state).expect("queue poisoned");
        }
    }

    /// Non-blocking push: `Full` when at capacity, `Closed` after close.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.buf.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.buf.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits while empty; `None` once closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.buf.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Blocking pop of a *run*: wait for one item, then — under the same
    /// lock — keep taking items while the head is `compatible` with the
    /// run's first item, up to `max` total. Appends the run to `out` and
    /// returns its length (0 only once the queue is closed and drained).
    ///
    /// This is the design-affinity batcher's primitive: a worker drains a
    /// run of same-design jobs in one lock acquisition without ever
    /// waiting for more traffic (only items already queued can join a
    /// run, so batching never adds latency), and without reordering — the
    /// first incompatible item stays at the head for the next pop, which
    /// bounds how long mixed traffic can sit behind a batch.
    ///
    /// # Panics
    /// Panics if `max == 0`.
    pub fn pop_run<F>(&self, max: usize, out: &mut Vec<T>, compatible: F) -> usize
    where
        F: Fn(&T, &T) -> bool,
    {
        assert!(max > 0, "a run needs room for at least one item");
        let anchor = out.len();
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(first) = state.buf.pop_front() {
                out.push(first);
                let mut taken = 1;
                while taken < max {
                    match state.buf.front() {
                        Some(next) if compatible(&out[anchor], next) => {
                            let item = state.buf.pop_front().expect("front checked");
                            out.push(item);
                            taken += 1;
                        }
                        _ => break,
                    }
                }
                drop(state);
                // A multi-item run frees several slots at once, so wake
                // every blocked producer; a single pop (the batch_window=1
                // hot path) wakes one, exactly like `pop`.
                if taken > 1 {
                    self.not_full.notify_all();
                } else {
                    self.not_full.notify_one();
                }
                return taken;
            }
            if state.closed {
                return 0;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Non-blocking pop. Buffered items are returned even after close
    /// (graceful drain); `Closed` means closed **and** drained.
    pub fn try_pop(&self) -> TryPop<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        match state.buf.pop_front() {
            Some(item) => {
                drop(state);
                self.not_full.notify_one();
                TryPop::Item(item)
            }
            None if state.closed => TryPop::Closed,
            None => TryPop::Empty,
        }
    }

    /// Close the queue: no further pushes are accepted, buffered items
    /// remain poppable, all waiters wake. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

/// One consistent snapshot of two queue occupancies plus an arbitrary
/// companion read: both queue locks are held while `with` runs, so the
/// three values describe a single instant — an item mid-hand-off
/// between the queues can never be double-counted by one reading and
/// missed by the other, which is exactly what three independent point
/// reads allow. Locks are taken in argument order and `with` must not
/// touch either queue; callers must agree on one global order (the
/// engine's only call site passes `jobs` then `results`).
pub fn snapshot_lens<A, B, R>(
    a: &BoundedQueue<A>,
    b: &BoundedQueue<B>,
    with: impl FnOnce() -> R,
) -> (usize, usize, R) {
    let sa = a.state.lock().expect("queue poisoned");
    let sb = b.state.lock().expect("queue poisoned");
    let r = with();
    (sa.buf.len(), sb.buf.len(), r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(9), Err(TryPushError::Full(9)));
        assert_eq!(
            (0..4).map(|_| q.try_pop().item().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(q.try_pop(), TryPop::Empty);
    }

    #[test]
    fn try_pop_distinguishes_empty_from_closed_and_drained() {
        // Regression: a non-blocking consumer must be able to terminate.
        // `try_pop` used to return `None` both when momentarily empty and
        // when closed-and-drained, so writer-drain loops could not tell
        // "retry later" from "shut down".
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_pop(), TryPop::Empty, "open and empty is retryable");
        q.try_push(7).unwrap();
        q.close();
        // Buffered items still drain after close…
        assert_eq!(q.try_pop(), TryPop::Item(7));
        // …and only then does the queue report terminal closure.
        assert_eq!(q.try_pop(), TryPop::Closed);
        assert_eq!(q.try_pop(), TryPop::Closed, "closure is sticky");
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(TryPushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        // Give the producer time to block, then make room.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_exactly_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(p * 1000 + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let want: Vec<u64> = (0..4u64).flat_map(|p| (0..100).map(move |i| p * 1000 + i)).collect();
        assert_eq!(all, want);
    }

    #[test]
    #[should_panic(expected = "capacity at least 1")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn snapshot_lens_reads_both_queues_under_one_critical_section() {
        let a = BoundedQueue::new(4);
        let b = BoundedQueue::new(4);
        a.try_push(1u8).unwrap();
        a.try_push(2u8).unwrap();
        b.try_push(9u64).unwrap();
        let (la, lb, companion) = snapshot_lens(&a, &b, || 42);
        assert_eq!((la, lb, companion), (2, 1, 42));
        // The companion closure runs while both locks are held: another
        // thread's push cannot land between the two length reads.
        let a = Arc::new(a);
        let a2 = Arc::clone(&a);
        let (la, lb, pusher) = snapshot_lens(&a, &b, || {
            let pusher = std::thread::spawn(move || a2.push(3u8).unwrap());
            // The push above must block until the snapshot releases `a`.
            std::thread::sleep(std::time::Duration::from_millis(20));
            pusher
        });
        assert_eq!((la, lb), (2, 1), "a concurrent push cannot skew the snapshot");
        pusher.join().unwrap();
        assert_eq!(a.len(), 3, "the blocked push lands after the snapshot");
    }

    #[test]
    fn pop_run_drains_compatible_prefix_only() {
        // Head run [2,4,6] is even; 5 breaks the run and stays queued.
        let q = BoundedQueue::new(8);
        for v in [2, 4, 6, 5, 8] {
            q.try_push(v).unwrap();
        }
        let mut run = Vec::new();
        let taken = q.pop_run(8, &mut run, |a: &i32, b: &i32| a % 2 == b % 2);
        assert_eq!(taken, 3);
        assert_eq!(run, vec![2, 4, 6]);
        assert_eq!(q.len(), 2, "the incompatible head stays for the next pop");
        run.clear();
        assert_eq!(q.pop_run(8, &mut run, |a, b| a % 2 == b % 2), 1);
        assert_eq!(run, vec![5]);
    }

    #[test]
    fn pop_run_respects_the_window_bound() {
        let q = BoundedQueue::new(8);
        for v in 0..6 {
            q.try_push(v).unwrap();
        }
        let mut run = Vec::new();
        assert_eq!(q.pop_run(4, &mut run, |_, _| true), 4);
        assert_eq!(run, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pop_run_returns_zero_after_close_and_drain() {
        let q = BoundedQueue::<u8>::new(2);
        q.try_push(9).unwrap();
        q.close();
        let mut run = Vec::new();
        assert_eq!(q.pop_run(4, &mut run, |_, _| true), 1);
        assert_eq!(q.pop_run(4, &mut run, |_, _| true), 0);
        assert_eq!(run, vec![9]);
    }

    #[test]
    fn pop_run_compares_against_the_run_anchor() {
        // Monotone-step predicate: with last-item chaining [0,1,2,3] would
        // all join; anchored on the first item only 0 and 1 may.
        let q = BoundedQueue::new(8);
        for v in 0..4 {
            q.try_push(v).unwrap();
        }
        let mut run = Vec::new();
        q.pop_run(8, &mut run, |first: &i32, next: &i32| next - first <= 1);
        assert_eq!(run, vec![0, 1]);
    }
}
