//! The engine proper: worker shards around the job/result queues.
//!
//! ```text
//!  submit ──► [ jobs: BoundedQueue ] ──► worker 0 ─┐
//!   (backpressure when full)      ├──► worker 1 ─┼──► [ results ] ──► drain
//!                                 └──► worker L ─┘
//!                      each worker: design cache → scratch → decode
//! ```
//!
//! Every worker pins its *inner* rayon parallelism to 1 — shard-level
//! parallelism comes from running `L` workers side by side, which is both
//! faster for many small jobs (no fan-out overhead) and the configuration
//! under which the decode path is allocation-free. Determinism therefore
//! holds by construction: a job's result depends only on its spec, never
//! on which shard ran it or how many shards exist.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pooled_lab::histogram::LatencyHistogram;
use pooled_stats::summary::Summary;
use rayon::ThreadPoolBuilder;

use crate::cache::{DesignCache, DesignKey};
use crate::durability::{self, DesignJournal, DurabilityConfig, WalJournal};
use crate::job::{JobResult, JobSpec};
use crate::queue::{snapshot_lens, BoundedQueue, TryPushError};
use crate::telemetry::{
    CausalKind, FlightRecorder, JobTrace, Metric, MetricsRegistry, Span, TelemetryConfig,
};
use crate::worker::{batch_compatible, process_batch, process_job, WorkerScratch};

/// Engine sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker shards (`L` in the paper's partial-parallelism question).
    pub workers: usize,
    /// Submission queue bound — how many jobs may wait before `submit`
    /// blocks (backpressure).
    pub queue_capacity: usize,
    /// Completion queue bound.
    pub results_capacity: usize,
    /// Design cache capacity (distinct designs resident at once).
    pub design_cache_capacity: usize,
    /// Design-affinity batch window: the longest run of same-design MN
    /// jobs a worker may drain from the queue and serve with **one**
    /// batched design traversal. `1` (the default) disables batching —
    /// every job is served individually, exactly as before. Batching is
    /// fingerprint-invisible; only throughput and timing change. The
    /// window also bounds fairness: a worker never takes more than
    /// `batch_window` queued jobs ahead of a non-matching job, and never
    /// waits for a batch to fill.
    pub batch_window: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        Self {
            workers,
            queue_capacity: 256,
            results_capacity: 256,
            design_cache_capacity: 16,
            batch_window: 1,
        }
    }
}

impl EngineConfig {
    /// Default sizing with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }

    /// This configuration with a design-affinity batch window.
    pub fn with_batch_window(mut self, batch_window: usize) -> Self {
        self.batch_window = batch_window;
        self
    }
}

/// Aggregate serving telemetry (see [`Engine::stats`]).
///
/// `Copy` and `PartialEq` are part of the wire contract: the transport's
/// STATS frame carries a whole `EngineStats` by value, and the codec
/// round-trip tests compare decoded stats bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineStats {
    /// Jobs fully served.
    pub jobs_completed: u64,
    /// Of those, jobs whose decoder panicked and came back as a
    /// contained, poisoned REJECT-class result.
    pub jobs_poisoned: u64,
    /// Of those, exact recoveries.
    pub exact_recoveries: u64,
    /// Per-job sojourn latency (µs): queue wait + service.
    pub total_latency: Summary,
    /// Decode-stage per-job latency (µs).
    pub decode_latency: Summary,
    /// Log₂-bucketed sojourn-latency histogram (tail shape).
    pub histogram: LatencyHistogram,
    /// Design-cache hits.
    pub cache_hits: u64,
    /// Design-cache misses (cold samples).
    pub cache_misses: u64,
    /// Designs currently resident.
    pub cache_len: usize,
    /// Jobs waiting in the submission queue.
    pub queued_jobs: usize,
    /// Results waiting to be drained.
    pub pending_results: usize,
    /// Worker shards.
    pub workers: usize,
}

impl EngineStats {
    /// The additive identity for [`Self::merge`]: an engine that has
    /// served nothing with zero workers. The cluster router folds
    /// per-node stats into this.
    pub fn zero() -> Self {
        Self {
            jobs_completed: 0,
            jobs_poisoned: 0,
            exact_recoveries: 0,
            total_latency: Summary::new(),
            decode_latency: Summary::new(),
            histogram: LatencyHistogram::new(),
            cache_hits: 0,
            cache_misses: 0,
            cache_len: 0,
            queued_jobs: 0,
            pending_results: 0,
            workers: 0,
        }
    }

    /// Fold another engine's telemetry into this one, so a router can
    /// aggregate per-node stats into one cluster summary. Every counter
    /// saturates at its type's ceiling instead of wrapping (the same
    /// contract as [`LatencyHistogram::merge`], which this reuses);
    /// latency moments merge exactly via [`Summary::merge`].
    pub fn merge(&mut self, other: &EngineStats) {
        self.jobs_completed = self.jobs_completed.saturating_add(other.jobs_completed);
        self.jobs_poisoned = self.jobs_poisoned.saturating_add(other.jobs_poisoned);
        self.exact_recoveries = self.exact_recoveries.saturating_add(other.exact_recoveries);
        self.total_latency.merge(&other.total_latency);
        self.decode_latency.merge(&other.decode_latency);
        self.histogram.merge(&other.histogram);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.cache_len = self.cache_len.saturating_add(other.cache_len);
        self.queued_jobs = self.queued_jobs.saturating_add(other.queued_jobs);
        self.pending_results = self.pending_results.saturating_add(other.pending_results);
        self.workers = self.workers.saturating_add(other.workers);
    }

    /// Design-cache hit rate over everything merged so far (0 when the
    /// cache was never consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let accesses = self.cache_hits.saturating_add(self.cache_misses);
        if accesses == 0 {
            0.0
        } else {
            self.cache_hits as f64 / accesses as f64
        }
    }
}

/// Per-worker latency telemetry. Plain counters live in the lock-free
/// [`MetricsRegistry`]; the moment/histogram instruments (which need
/// more than an atomic add) fold into one of these slots — each worker
/// owns its own, so the per-job lock below is uncontended in steady
/// state (only [`Engine::stats`] readers ever share it).
struct WorkerTelemetry {
    total_latency: Summary,
    decode_latency: Summary,
    histogram: LatencyHistogram,
}

impl WorkerTelemetry {
    fn new() -> Self {
        Self {
            total_latency: Summary::new(),
            decode_latency: Summary::new(),
            histogram: LatencyHistogram::new(),
        }
    }

    fn record(&mut self, result: &JobResult) {
        self.total_latency.push(result.total_micros as f64);
        self.decode_latency.push(result.decode_micros as f64);
        self.histogram.record_micros(result.total_micros);
    }
}

/// Route id of the shared completion queue (plain `submit`/`recv`).
const SHARED_ROUTE: u32 = u32::MAX;

/// A submitted job plus its enqueue instant, so sojourn time (queue
/// wait plus service) is measurable — under open-loop overload the wait
/// *is* the latency story. `route` says which completion queue receives
/// the result: [`SHARED_ROUTE`] for the engine-wide stream, otherwise a
/// registered per-tenant route (the transport's per-connection queues).
#[derive(Clone, Copy)]
struct QueuedJob {
    spec: JobSpec,
    enqueued: std::time::Instant,
    route: u32,
    /// Span timeline riding with the job — `Copy`, inert padding when
    /// the sampling knob skipped this job.
    trace: JobTrace,
}

struct Shared {
    jobs: BoundedQueue<QueuedJob>,
    results: BoundedQueue<JobResult>,
    cache: DesignCache,
    /// Per-worker latency slots, indexed by shard id.
    worker_telemetry: Vec<Mutex<WorkerTelemetry>>,
    /// Lock-free counters (per-outcome job counts et al).
    metrics: Arc<MetricsRegistry>,
    /// Bounded trace + causal rings for postmortems.
    recorder: Arc<FlightRecorder>,
    /// Trace-sampling knobs.
    tel: TelemetryConfig,
    active_workers: AtomicUsize,
    /// Design-affinity batch window (≥ 1; 1 = per-job serving).
    batch_window: usize,
    /// Serializes `run_batch` callers: a batch owns the completion stream
    /// while it runs (interleaved batches would steal each other's
    /// results).
    batch_lock: Mutex<()>,
    /// Registered completion routes (`route id → per-tenant queue` plus
    /// its optional waker). Touched per *routed* result only; plain
    /// `submit` traffic never takes this lock.
    routes: Mutex<HashMap<u32, RouteEntry>>,
    /// Next route id (route ids are never reused within an engine).
    next_route: AtomicU32,
    /// Telemetry recovered from a previous incarnation's checkpoint
    /// (zero for non-durable engines). [`Engine::stats`] merges it in,
    /// so counters and latency histograms are cumulative across
    /// restarts; point-in-time gauges in the baseline are pre-zeroed
    /// ([`durability::Recovery::stats_baseline`]).
    recovered: Mutex<EngineStats>,
    /// The durable tier's journal when this engine was started with
    /// [`Engine::start_durable`]; shutdown checkpoints through it.
    journal: Mutex<Option<Arc<WalJournal>>>,
}

/// Callback fired after a result lands in a route's queue (and on route
/// close), so an event-loop consumer parked in `poll(2)` learns of
/// completions without polling the queue. Must be cheap and non-blocking
/// — it runs on the worker that finished the job.
pub type RouteWaker = Arc<dyn Fn() + Send + Sync>;

/// A registered completion route: the per-tenant result queue plus the
/// optional waker its consumer installed.
struct RouteEntry {
    queue: Arc<BoundedQueue<JobResult>>,
    waker: Option<RouteWaker>,
}

impl Shared {
    /// Deliver one finished result to its completion queue, then fire
    /// the route's waker (push-then-wake: by the time the consumer runs,
    /// the result is visible). Returns `false` only when the *shared*
    /// stream is closed — full shutdown; a closed or vanished per-tenant
    /// route just drops the result (the tenant disconnected; telemetry
    /// already recorded the job).
    fn deliver(&self, route: u32, result: &JobResult) -> bool {
        if route == SHARED_ROUTE {
            return self.results.push(*result).is_ok();
        }
        let entry = {
            let routes = self.routes.lock().expect("route table poisoned");
            routes.get(&route).map(|e| (Arc::clone(&e.queue), e.waker.clone()))
        };
        if let Some((queue, waker)) = entry {
            let _ = queue.push(*result);
            if let Some(waker) = waker {
                waker();
            }
        }
        true
    }

    /// Close every registered route queue (wakes blocked tenants and any
    /// worker mid-push) and fire their wakers (a consumer parked in
    /// `poll` must observe the close too); the routes stay registered so
    /// late results are dropped by `deliver`, never redirected.
    fn close_routes(&self) {
        let entries: Vec<_> = {
            let routes = self.routes.lock().expect("route table poisoned");
            routes.values().map(|e| (Arc::clone(&e.queue), e.waker.clone())).collect()
        };
        for (queue, waker) in entries {
            queue.close();
            if let Some(waker) = waker {
                waker();
            }
        }
    }
}

/// A private completion stream registered with [`Engine::open_route`].
///
/// Results of jobs submitted through [`Engine::submit_routed`] /
/// [`Engine::try_submit_routed`] with this route land in this queue
/// instead of the engine-wide stream, so concurrent tenants (one per
/// transport connection) each see exactly their own completions —
/// including while `run_batch` owns the shared stream.
///
/// Clones share the same underlying queue. [`ResultRoute::close`] (or
/// engine shutdown) closes it: a worker finishing a routed job after
/// that drops the result — the tenant is gone.
#[derive(Clone)]
pub struct ResultRoute {
    id: u32,
    queue: Arc<BoundedQueue<JobResult>>,
    shared: Arc<Shared>,
}

impl ResultRoute {
    /// This route's id (unique within its engine, never reused).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Blocking receive; `None` once the route is closed **and** drained.
    pub fn recv(&self) -> Option<JobResult> {
        self.queue.pop()
    }

    /// Non-blocking receive with the tri-state the writer-drain loop
    /// needs: `Empty` (retry later) vs `Closed` (terminate).
    pub fn try_recv(&self) -> crate::queue::TryPop<JobResult> {
        self.queue.try_pop()
    }

    /// Close and unregister the route. Buffered results stay receivable;
    /// results finishing after the close are dropped. Idempotent.
    pub fn close(&self) {
        self.queue.close();
        self.shared.routes.lock().expect("route table poisoned").remove(&self.id);
    }

    /// Install (or replace) the waker fired after every delivery to this
    /// route — the push half of the event-loop integration: workers
    /// push-then-wake, the loop drains [`Self::try_recv`] until `Empty`.
    /// The waker also fires when the engine closes its routes at
    /// shutdown, so a parked consumer observes `Closed` promptly. A
    /// no-op on a route already unregistered by [`Self::close`].
    pub fn register_waker(&self, waker: RouteWaker) {
        if let Some(entry) =
            self.shared.routes.lock().expect("route table poisoned").get_mut(&self.id)
        {
            entry.waker = Some(waker);
        }
    }
}

/// Error: the engine is shutting down; the rejected spec is handed back.
#[derive(Debug, PartialEq)]
pub struct EngineClosed(pub JobSpec);

/// Outcome of a non-blocking submission.
#[derive(Debug, PartialEq)]
pub enum SubmitError {
    /// Submission queue full — backpressure; retry after draining.
    Backpressure(JobSpec),
    /// Engine shutting down.
    Closed(JobSpec),
}

/// A running reconstruction engine. See the module docs for the shape.
pub struct Engine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start `config.workers` shards.
    ///
    /// # Panics
    /// Panics if `config.workers == 0` or a worker thread cannot spawn.
    pub fn start(config: EngineConfig) -> Self {
        Self::start_prewarmed(config, &[])
    }

    /// [`Self::start`] with explicit telemetry knobs (trace sampling and
    /// flight-recorder capacity). The plain constructors run with
    /// tracing off; either way the lock-free metric counters are always
    /// live, and fingerprints are bit-identical at any sampling rate.
    ///
    /// # Panics
    /// Panics if `config.workers == 0` or a worker thread cannot spawn.
    pub fn start_with(config: EngineConfig, telemetry: TelemetryConfig) -> Self {
        Self::start_prewarmed_with(config, &[], telemetry)
    }

    /// [`Self::start`], but warm the design cache from a key snapshot
    /// **before** any worker accepts traffic — the snapshot/restore-lite
    /// path: designs resample bit-identically from their keys
    /// ([`DesignCache::keys`] exports them), so a restarted node
    /// regenerates its working set up front instead of paying cold
    /// misses under live traffic. Prewarming does not count toward the
    /// cache's hit/miss telemetry.
    ///
    /// # Panics
    /// Panics if `config.workers == 0` or a worker thread cannot spawn.
    pub fn start_prewarmed(config: EngineConfig, prewarm: &[DesignKey]) -> Self {
        Self::start_prewarmed_with(config, prewarm, TelemetryConfig::off())
    }

    /// [`Self::start_prewarmed`] with explicit telemetry knobs (see
    /// [`Self::start_with`]).
    ///
    /// # Panics
    /// Panics if `config.workers == 0` or a worker thread cannot spawn.
    pub fn start_prewarmed_with(
        config: EngineConfig,
        prewarm: &[DesignKey],
        telemetry: TelemetryConfig,
    ) -> Self {
        Self::start_full(config, telemetry, Arc::new(MetricsRegistry::new()), |shared| {
            shared.cache.prewarm(prewarm)
        })
    }

    /// [`Self::start`] with crash recovery and a live write-ahead log:
    /// replay the WAL prefix in `durability.dir`, load spilled design
    /// snapshots (resampling any key whose snapshot is missing or
    /// rejected), restore the persisted stats/histogram checkpoint, and
    /// only then spawn workers — a recovered node is at full warmth
    /// *before* it accepts its first job. Once running, every cache
    /// admission/eviction is journaled, so the next crash recovers this
    /// incarnation's working set too.
    ///
    /// Errors are filesystem failures or a corrupt WAL segment before
    /// the log's tail ([`durability::wal::WalError::CorruptSegment`],
    /// surfaced as [`std::io::ErrorKind::InvalidData`]) — recovery
    /// refuses to guess rather than serve from a wrong key set. A torn
    /// *tail* is the expected crash shape and recovers the valid prefix.
    ///
    /// # Panics
    /// Panics if `config.workers == 0` or a worker thread cannot spawn.
    pub fn start_durable(config: EngineConfig, durability: DurabilityConfig) -> io::Result<Self> {
        Self::start_durable_with(config, durability, TelemetryConfig::off())
    }

    /// [`Self::start_durable`] with explicit telemetry knobs (see
    /// [`Self::start_with`]).
    ///
    /// # Panics
    /// Panics if `config.workers == 0` or a worker thread cannot spawn.
    pub fn start_durable_with(
        config: EngineConfig,
        durability: DurabilityConfig,
        telemetry: TelemetryConfig,
    ) -> io::Result<Self> {
        let metrics = Arc::new(MetricsRegistry::new());
        std::fs::create_dir_all(&durability.dir)?;
        let recovery = durability::recover(&durability, &metrics).map_err(|e| match e {
            durability::wal::WalError::Io(e) => e,
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        })?;
        let journal = Arc::new(WalJournal::open(&durability, Arc::clone(&metrics))?);
        let engine = Self::start_full(config, telemetry, metrics, |shared| {
            // Loaded snapshots install directly (no resampling); every
            // other recovered key resamples bit-identically from itself.
            for (key, design) in &recovery.designs {
                shared.cache.install(key, Arc::clone(design));
            }
            shared.cache.prewarm(&recovery.keys);
            *shared.recovered.lock().expect("recovered stats poisoned") = recovery.stats_baseline();
        });
        // Checkpoint the recovered state (compacting the replayed log
        // down to the live set), then attach the journal. No traffic
        // can interleave here: the caller holds the only handle.
        let baseline = *engine.shared.recovered.lock().expect("recovered stats poisoned");
        journal.checkpoint(&engine.shared.cache.keys(), &baseline)?;
        engine.shared.cache.set_journal(Arc::clone(&journal) as Arc<dyn DesignJournal>);
        *engine.shared.journal.lock().expect("journal slot poisoned") = Some(journal);
        Ok(engine)
    }

    /// The one true constructor: build the shared state, run `warm`
    /// (cache prewarm or crash recovery) before any worker exists, then
    /// spawn the shards. Every public `start_*` routes here, so the
    /// "warm before traffic" guarantee is structural — there is no
    /// ordering to get wrong at a call site.
    fn start_full(
        config: EngineConfig,
        telemetry: TelemetryConfig,
        metrics: Arc<MetricsRegistry>,
        warm: impl FnOnce(&Shared),
    ) -> Self {
        assert!(config.workers > 0, "engine needs at least one worker");
        let shared = Arc::new(Shared {
            jobs: BoundedQueue::new(config.queue_capacity),
            results: BoundedQueue::new(config.results_capacity),
            cache: DesignCache::new(config.design_cache_capacity),
            worker_telemetry: (0..config.workers)
                .map(|_| Mutex::new(WorkerTelemetry::new()))
                .collect(),
            metrics,
            recorder: Arc::new(FlightRecorder::new(config.workers, telemetry.recorder_capacity)),
            tel: telemetry,
            active_workers: AtomicUsize::new(config.workers),
            batch_window: config.batch_window.max(1),
            batch_lock: Mutex::new(()),
            routes: Mutex::new(HashMap::new()),
            next_route: AtomicU32::new(0),
            recovered: Mutex::new(EngineStats::zero()),
            journal: Mutex::new(None),
        });
        // Workers don't exist yet, so the warm-up can never race traffic.
        warm(&shared);
        let handles = (0..config.workers as u32)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{idx}"))
                    .spawn(move || worker_main(&shared, idx))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker shards.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The engine's lock-free metrics registry — scrape freely from any
    /// thread; reads never block a worker.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// The engine's flight recorder (per-shard trace rings plus the
    /// causal-event ring); share it with a cluster router so failover
    /// records land next to the job traces they explain.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.recorder)
    }

    /// Warm the design cache for `keys` while the engine is live — the
    /// cluster's standby keep-warm path: a node designated as a key's
    /// failover target samples the design *before* any failover, so
    /// inheriting the key costs zero cold misses. Resident keys are
    /// skipped; like [`Self::start_prewarmed`], warming never touches
    /// the hit/miss telemetry (it is administrative, not traffic).
    pub fn prewarm(&self, keys: &[DesignKey]) {
        self.shared.cache.prewarm(keys);
    }

    /// Blocking submission: waits under backpressure, errs on shutdown.
    ///
    /// # Panics
    /// Panics if the spec is infeasible ([`JobSpec::validate`]).
    pub fn submit(&self, spec: JobSpec) -> Result<(), EngineClosed> {
        self.submit_with_route(spec, SHARED_ROUTE)
    }

    /// Non-blocking submission; `Backpressure` when the queue is full.
    ///
    /// # Panics
    /// Panics if the spec is infeasible ([`JobSpec::validate`]).
    pub fn try_submit(&self, spec: JobSpec) -> Result<(), SubmitError> {
        self.try_submit_with_route(spec, SHARED_ROUTE)
    }

    /// Register a private completion stream holding up to `capacity`
    /// buffered results (see [`ResultRoute`]).
    ///
    /// # Panics
    /// Panics if `capacity == 0` or the engine has exhausted route ids.
    pub fn open_route(&self, capacity: usize) -> ResultRoute {
        let id = self.shared.next_route.fetch_add(1, Ordering::Relaxed);
        assert!(id != SHARED_ROUTE, "route ids exhausted");
        let queue = Arc::new(BoundedQueue::new(capacity));
        self.shared
            .routes
            .lock()
            .expect("route table poisoned")
            .insert(id, RouteEntry { queue: Arc::clone(&queue), waker: None });
        ResultRoute { id, queue, shared: Arc::clone(&self.shared) }
    }

    /// Blocking submission whose result is delivered to `route` instead
    /// of the shared stream.
    ///
    /// # Panics
    /// Panics if the spec is infeasible ([`JobSpec::validate`]).
    pub fn submit_routed(&self, spec: JobSpec, route: &ResultRoute) -> Result<(), EngineClosed> {
        self.submit_with_route(spec, route.id)
    }

    /// Non-blocking submission whose result is delivered to `route`;
    /// `Backpressure` when the submission queue is full — the transport
    /// turns that into an explicit `BUSY` reply, never a silent drop.
    ///
    /// # Panics
    /// Panics if the spec is infeasible ([`JobSpec::validate`]).
    pub fn try_submit_routed(&self, spec: JobSpec, route: &ResultRoute) -> Result<(), SubmitError> {
        self.try_submit_with_route(spec, route.id)
    }

    /// [`Self::try_submit_routed`] carrying the monotonic instant the
    /// spec's SUBMIT frame came off a socket: a sampled job's trace gets
    /// its `wire_rx` span stamped so wire-path timelines show ingress →
    /// admit. `None` behaves exactly like [`Self::try_submit_routed`].
    ///
    /// # Panics
    /// Panics if the spec is infeasible ([`JobSpec::validate`]).
    pub fn try_submit_routed_stamped(
        &self,
        spec: JobSpec,
        route: &ResultRoute,
        wire_rx: Option<std::time::Instant>,
    ) -> Result<(), SubmitError> {
        spec.validate();
        let mut job = self.queued(spec, route.id);
        if let (true, Some(at)) = (job.trace.sampled, wire_rx) {
            let micros = at
                .checked_duration_since(self.shared.recorder.epoch())
                .map_or(0, |d| d.as_micros() as u64);
            job.trace.stamp(Span::WireRx, micros);
        }
        self.try_push_queued(job)
    }

    /// Record the wire-tx causal counterpart for job `id` — the
    /// transport server calls this as the job's RESULT frame leaves its
    /// socket, after the trace itself has already been drained to the
    /// flight recorder. No-op unless the sampling knob selects the id.
    pub fn note_wire_tx(&self, id: u64) {
        let every = self.shared.tel.trace_sample_every;
        if every != 0 && id.is_multiple_of(every) {
            self.shared.recorder.record_causal(CausalKind::WireTx, 0, id);
        }
    }

    /// Wrap a validated spec for the queue, opening its span trace when
    /// the sampling knob selects it (the `admit` span is stamped here).
    fn queued(&self, spec: JobSpec, route: u32) -> QueuedJob {
        let mut trace = JobTrace::empty();
        if self.shared.tel.samples(&spec) {
            trace = JobTrace::sampled_for(spec.id);
            trace.stamp(Span::Admit, self.shared.recorder.now_micros());
        }
        QueuedJob { spec, enqueued: std::time::Instant::now(), route, trace }
    }

    fn submit_with_route(&self, spec: JobSpec, route: u32) -> Result<(), EngineClosed> {
        spec.validate();
        self.shared.jobs.push(self.queued(spec, route)).map_err(|c| EngineClosed(c.0.spec))
    }

    fn try_submit_with_route(&self, spec: JobSpec, route: u32) -> Result<(), SubmitError> {
        spec.validate();
        self.try_push_queued(self.queued(spec, route))
    }

    fn try_push_queued(&self, job: QueuedJob) -> Result<(), SubmitError> {
        self.shared.jobs.try_push(job).map_err(|e| match e {
            TryPushError::Full(q) => {
                self.shared.metrics.inc(Metric::JobsBusyShed);
                SubmitError::Backpressure(q.spec)
            }
            TryPushError::Closed(q) => SubmitError::Closed(q.spec),
        })
    }

    /// Non-blocking receive of one completed result.
    ///
    /// The completion stream is shared: concurrent receivers each see an
    /// arbitrary subset of results (route by [`JobResult::id`] if several
    /// tenants share one engine).
    pub fn try_recv(&self) -> Option<JobResult> {
        self.shared.results.try_pop().item()
    }

    /// Blocking receive; `None` only after shutdown has drained everything.
    /// Same shared-stream caveat as [`Self::try_recv`].
    pub fn recv(&self) -> Option<JobResult> {
        self.shared.results.pop()
    }

    /// Serve a whole batch: submit every spec (draining completions
    /// whenever backpressure pushes back, so the pair of bounded queues
    /// can never deadlock), then collect exactly `specs.len()` results.
    /// Results are appended to `out` sorted by job id — deterministic
    /// regardless of worker count. Allocation-free when `out` has
    /// capacity.
    ///
    /// Batches are serialized: a second `run_batch` caller blocks until
    /// the first finishes (a batch owns the completion stream while it
    /// runs). Don't mix `run_batch` with concurrent `recv` callers.
    ///
    /// # Panics
    /// Panics if the engine shuts down mid-batch (a batch is a unit of
    /// work; losing part of it is a caller bug, not a recoverable state).
    pub fn run_batch(&self, specs: &[JobSpec], out: &mut Vec<JobResult>) {
        let _batch = self.shared.batch_lock.lock().expect("batch lock poisoned");
        let start = out.len();
        let mut collected = 0usize;
        for &spec in specs {
            let mut pending = spec;
            loop {
                match self.try_submit(pending) {
                    Ok(()) => break,
                    Err(SubmitError::Backpressure(s)) => {
                        pending = s;
                        // Safe to block: a full submission queue means jobs
                        // are in flight, and a worker stuck on a full
                        // results queue implies try-before-block would have
                        // succeeded — so a completion is always coming.
                        match self.recv() {
                            Some(r) => {
                                out.push(r);
                                collected += 1;
                            }
                            None => panic!("engine closed mid-batch"),
                        }
                    }
                    Err(SubmitError::Closed(_)) => panic!("engine closed mid-batch"),
                }
            }
        }
        while collected < specs.len() {
            let r = self.recv().expect("engine closed mid-batch");
            out.push(r);
            collected += 1;
        }
        out[start..].sort_unstable_by_key(|r| r.id);
    }

    /// Current aggregate telemetry.
    ///
    /// The three occupancy gauges (`queued_jobs`, `pending_results`,
    /// `cache_len`) are read from **one** consistent snapshot — both
    /// queue locks held together while the cache length is sampled —
    /// instead of three racy point reads, so a job can never be counted
    /// in two gauges at once or vanish from both.
    pub fn stats(&self) -> EngineStats {
        let (cache_hits, cache_misses) = self.shared.cache.stats();
        let mut total_latency = Summary::new();
        let mut decode_latency = Summary::new();
        let mut histogram = LatencyHistogram::new();
        for slot in &self.shared.worker_telemetry {
            let t = slot.lock().expect("telemetry poisoned");
            total_latency.merge(&t.total_latency);
            decode_latency.merge(&t.decode_latency);
            histogram.merge(&t.histogram);
        }
        let (queued_jobs, pending_results, cache_len) =
            snapshot_lens(&self.shared.jobs, &self.shared.results, || self.shared.cache.len());
        let mut stats = EngineStats {
            jobs_completed: self.shared.metrics.get(Metric::JobsCompleted),
            jobs_poisoned: self.shared.metrics.get(Metric::JobsPoisoned),
            exact_recoveries: self.shared.metrics.get(Metric::ExactRecoveries),
            total_latency,
            decode_latency,
            histogram,
            cache_hits,
            cache_misses,
            cache_len,
            queued_jobs,
            pending_results,
            workers: self.handles.len(),
        };
        // Durable engines report cumulative-across-restarts telemetry:
        // fold in the recovered checkpoint (gauges there are pre-zeroed,
        // so the live gauge values above pass through unchanged).
        let recovered = *self.shared.recovered.lock().expect("recovered stats poisoned");
        stats.merge(&recovered);
        stats
    }

    /// Graceful shutdown: stop accepting jobs, let the shards finish
    /// everything already queued, and join them. Undelivered results are
    /// appended to `out` (sorted by id).
    pub fn shutdown_into(mut self, out: &mut Vec<JobResult>) -> EngineStats {
        let start = out.len();
        let workers = self.handles.len();
        self.shared.jobs.close();
        // Routed tenants are cut loose first: their queues close so a
        // worker mid-push can never stall the join below waiting on a
        // writer that will not drain (disconnected tenants' late results
        // are dropped, with telemetry already recorded).
        self.shared.close_routes();
        // Drain until the last exiting worker closes the completion queue
        // (see `ExitGuard`): keeps the queue flowing so a full `results`
        // can never wedge a worker finishing queued jobs, without a spin.
        while let Some(r) = self.shared.results.pop() {
            out.push(r);
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("engine worker panicked");
        }
        out[start..].sort_unstable_by_key(|r| r.id);
        self.shared.results.close();
        let mut stats = self.stats();
        stats.workers = workers;
        // Clean shutdown checkpoints the durable tier: the log compacts
        // to the final live set and the *cumulative* stats (baseline
        // included), so the next incarnation's counters keep counting
        // from here. An abrupt drop skips this — that's the crash path,
        // and per-admission WAL records already cover the key set.
        let journal = self.shared.journal.lock().expect("journal slot poisoned").clone();
        if let Some(journal) = journal {
            let _ = journal.checkpoint(&self.shared.cache.keys(), &stats);
        }
        stats
    }

    /// Graceful shutdown discarding undelivered results (batch callers
    /// have already drained theirs).
    pub fn shutdown(self) -> EngineStats {
        let mut discard = Vec::new();
        self.shutdown_into(&mut discard)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // A dropped engine must not leave shards parked on the queues.
        self.shared.jobs.close();
        self.shared.results.close();
        self.shared.close_routes();
    }
}

fn worker_main(shared: &Shared, idx: u32) {
    // Runs on every exit path, panicking included: a shard that dies
    // mid-job must still decrement the active count and — on panic —
    // close both queues, so `run_batch`/`shutdown` fail fast instead of
    // waiting forever on a result that will never come. The last shard
    // out closes the completion queue either way, which is what ends
    // `shutdown_into`'s drain (workers only exit once `jobs` is closed).
    struct ExitGuard<'a>(&'a Shared);
    impl Drop for ExitGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.jobs.close();
                self.0.results.close();
                self.0.close_routes();
            }
            if self.0.active_workers.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.0.results.close();
            }
        }
    }
    let _guard = ExitGuard(shared);

    // Pin inner rayon parallelism to 1: shard-level parallelism is the
    // engine's own, and single-threaded decode is the allocation-free
    // configuration. Each shard owns a *private* 1-thread pool: under
    // the vendored rayon (a thread-count marker) this is free, and under
    // real rayon it keeps shards independent instead of funneling every
    // worker through one shared pool thread.
    let pool = ThreadPoolBuilder::new()
        .num_threads(1)
        .thread_name(move |i| format!("engine-shard-{idx}-rayon-{i}"))
        .build()
        .expect("failed to build shard pool");
    pool.install(|| {
        let window = shared.batch_window;
        let mut scratch = WorkerScratch::with_batch_window(idx, window);
        // Run buffers, reused forever (capacity = the batch window).
        let mut run: Vec<QueuedJob> = Vec::with_capacity(window);
        let mut specs: Vec<crate::job::JobSpec> = Vec::with_capacity(window);
        let mut served: Vec<JobResult> = Vec::with_capacity(window);
        'serve: loop {
            run.clear();
            // Drain a run of batch-compatible jobs (always 1 when the
            // window is 1 — the predicate is never consulted then).
            if shared.jobs.pop_run(window, &mut run, |a, b| batch_compatible(&a.spec, &b.spec)) == 0
            {
                break;
            }
            // Queue waits end now — service time must not leak into them.
            let popped = std::time::Instant::now();
            // One clock read stamps the whole run's queue-exit spans.
            let tracing = run.iter().any(|q| q.trace.sampled);
            if tracing {
                let now = shared.recorder.now_micros();
                for q in &mut run {
                    if q.trace.sampled {
                        q.trace.stamp(Span::Dequeue, now);
                    }
                }
            }
            // One cache access serves the whole run (design affinity).
            let design = shared.cache.get_or_sample(&DesignKey::of(&run[0].spec));
            if tracing {
                let now = shared.recorder.now_micros();
                for q in &mut run {
                    if q.trace.sampled {
                        q.trace.stamp(Span::CacheProbe, now);
                    }
                }
            }
            served.clear();
            // Contain decode-stage panics to the job that caused them: a
            // panicking decoder yields a REJECT-class poisoned result and
            // the shard keeps serving. The scratch buffers are safe to
            // reuse after an unwind — every stage resizes/clears them at
            // use, none carries cross-job state.
            if run.len() == 1 {
                let spec = run[0].spec;
                let mut trace = run[0].trace;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let tracing = trace.sampled.then(|| (&*shared.recorder, &mut trace));
                    crate::worker::process_job_traced(&spec, &design, &mut scratch, tracing)
                }));
                // A poisoned decode leaves `decode_start` stamped with no
                // `decode_end` — exactly what a postmortem wants to see.
                run[0].trace = trace;
                served.push(outcome.unwrap_or_else(|_| JobResult::decode_poisoned(&spec, idx)));
            } else {
                specs.clear();
                specs.extend(run.iter().map(|q| q.spec));
                let whole = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    process_batch(&specs, &design, &mut scratch, &mut served)
                }));
                if whole.is_err() {
                    // One lane poisoned the fused batch: re-serve per job
                    // so exactly the offending spec fails.
                    served.clear();
                    for spec in &specs {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                process_job(spec, &design, &mut scratch)
                            }));
                        served.push(
                            outcome.unwrap_or_else(|_| JobResult::decode_poisoned(spec, idx)),
                        );
                    }
                }
                // Derived decode spans for batched lanes: the fused
                // traversal has no per-lane decode window, so each
                // lane's start is back-computed from its (evenly split)
                // decode time at the batch's shared serve end.
                if tracing {
                    let end = shared.recorder.now_micros();
                    for (q, r) in run.iter_mut().zip(&served) {
                        if q.trace.sampled {
                            q.trace.stamp(Span::DecodeEnd, end);
                            q.trace.stamp(Span::DecodeStart, end.saturating_sub(r.decode_micros));
                        }
                    }
                }
            }
            for (queued, result) in run.iter().zip(&mut served) {
                let queue_micros = popped.duration_since(queued.enqueued).as_micros() as u64;
                result.queue_micros = queue_micros;
                result.total_micros += queue_micros;
                // This worker's own slot: uncontended in steady state.
                shared.worker_telemetry[idx as usize]
                    .lock()
                    .expect("telemetry poisoned")
                    .record(result);
                shared.metrics.inc(Metric::JobsCompleted);
                if result.exact {
                    shared.metrics.inc(Metric::ExactRecoveries);
                }
                if result.is_decode_poisoned() {
                    shared.metrics.inc(Metric::JobsPoisoned);
                }
                // Drain the trace *before* delivery: once a caller
                // observes the result, its trace is guaranteed to be in
                // the recorder.
                let mut trace = queued.trace;
                if trace.sampled {
                    trace.worker = idx;
                    trace.stamp(Span::RouteHop, shared.recorder.now_micros());
                    if shared.recorder.record_trace(idx as usize, &trace) {
                        shared.metrics.inc(Metric::TracesDropped);
                    }
                    shared.metrics.inc(Metric::TracesRecorded);
                }
                if !shared.deliver(queued.route, result) {
                    break 'serve; // shared results closed: shutdown discards the rest
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            n: 300,
            k: 5,
            m: 200,
            design: DesignSpec::random_regular(3),
            decoder: DecoderKind::Mn,
            seed: 1000 + id,
            query_cost_micros: 0,
        }
    }

    #[test]
    fn batch_results_are_sorted_and_complete() {
        let engine = Engine::start(EngineConfig {
            workers: 3,
            queue_capacity: 4,
            results_capacity: 4,
            design_cache_capacity: 2,
            batch_window: 1,
        });
        let specs: Vec<JobSpec> = (0..40).map(spec).collect();
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 40);
        assert!(out.windows(2).all(|w| w[0].id < w[1].id));
        let stats = engine.shutdown();
        assert_eq!(stats.jobs_completed, 40);
        // Workers racing on the single cold key coalesce onto one sampler
        // (single-flight); afterwards everything hits.
        assert_eq!(stats.cache_misses, 1, "racing cold misses must single-flight");
        assert_eq!(stats.cache_hits + stats.cache_misses, 40);
    }

    #[test]
    fn a_panicking_decoder_fails_its_job_and_the_shard_keeps_serving() {
        // Panic containment: the hidden probe decoder panics mid-decode;
        // that one job must come back as a poisoned REJECT-class result
        // while every other job — including later ones on the *same*
        // single shard — completes normally.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            design_cache_capacity: 2,
            batch_window: 1,
        });
        let mut specs: Vec<JobSpec> = (0..6).map(spec).collect();
        specs[2].decoder = DecoderKind::PanicProbe;
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 6, "the poisoned shard must keep serving");
        for r in &out {
            if r.id == 2 {
                assert!(r.is_decode_poisoned(), "the probe job must fail poisoned");
                assert!(!r.exact);
            } else {
                assert!(!r.is_decode_poisoned(), "job {} wrongly poisoned", r.id);
                assert_eq!(r.weight, 5);
            }
        }
        let stats = engine.shutdown();
        assert_eq!(stats.jobs_completed, 6);
    }

    #[test]
    fn a_panicking_lane_poisons_only_itself_in_a_batched_run() {
        // Under a batching window the probe job (never batch-compatible,
        // so it serves alone between fused runs) still fails alone while
        // the surrounding Mn batches complete; the fused path's unwind
        // fallback re-serves per job for the same guarantee.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 16,
            results_capacity: 16,
            design_cache_capacity: 2,
            batch_window: 8,
        });
        let mut specs: Vec<JobSpec> = (0..8).map(spec).collect();
        specs[5].decoder = DecoderKind::PanicProbe;
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 8);
        let poisoned: Vec<u64> =
            out.iter().filter(|r| r.is_decode_poisoned()).map(|r| r.id).collect();
        assert_eq!(poisoned, vec![5], "exactly the probe lane fails");
        engine.shutdown();
    }

    #[test]
    fn tiny_queues_exercise_backpressure_without_deadlock() {
        let engine = Engine::start(EngineConfig {
            workers: 2,
            queue_capacity: 1,
            results_capacity: 1,
            design_cache_capacity: 1,
            batch_window: 1,
        });
        let specs: Vec<JobSpec> = (0..25).map(spec).collect();
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 25);
        engine.shutdown();
    }

    #[test]
    fn shutdown_finishes_queued_jobs() {
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 32,
            results_capacity: 32,
            design_cache_capacity: 2,
            batch_window: 1,
        });
        for id in 0..10 {
            engine.submit(spec(id)).unwrap();
        }
        let mut out = Vec::new();
        let stats = engine.shutdown_into(&mut out);
        assert_eq!(out.len(), 10, "graceful shutdown serves everything accepted");
        assert!(out.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(stats.jobs_completed, 10);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let engine = Engine::start(EngineConfig::with_workers(1));
        let shared = Arc::clone(&engine.shared);
        engine.shutdown();
        let queued = QueuedJob {
            spec: spec(0),
            enqueued: std::time::Instant::now(),
            route: SHARED_ROUTE,
            trace: JobTrace::empty(),
        };
        assert!(shared.jobs.push(queued).is_err());
    }

    #[test]
    fn telemetry_counts_latency_and_recoveries() {
        let engine = Engine::start(EngineConfig::with_workers(2));
        let specs: Vec<JobSpec> = (0..12).map(spec).collect();
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        let stats = engine.stats();
        assert_eq!(stats.jobs_completed, 12);
        assert_eq!(stats.total_latency.count(), 12);
        assert_eq!(stats.histogram.count(), 12);
        assert!(stats.total_latency.mean() > 0.0);
        assert!(stats.exact_recoveries as usize == out.iter().filter(|r| r.exact).count());
        engine.shutdown();
    }

    #[test]
    fn batch_window_is_fingerprint_invisible() {
        // The same traffic served per-job, with a window of 4, and with a
        // window larger than the queue must produce bit-identical result
        // fingerprints — batching may only change timing and throughput.
        let specs: Vec<JobSpec> = (0..30).map(spec).collect();
        let mut want: Option<Vec<(u64, u64)>> = None;
        for window in [1usize, 4, 64] {
            let engine = Engine::start(EngineConfig {
                workers: 2,
                queue_capacity: 16,
                results_capacity: 16,
                design_cache_capacity: 2,
                batch_window: window,
            });
            let mut out = Vec::new();
            engine.run_batch(&specs, &mut out);
            let stats = engine.shutdown();
            assert_eq!(stats.jobs_completed, 30, "window {window}");
            let got: Vec<(u64, u64)> = out.iter().map(|r| (r.id, r.fingerprint())).collect();
            match &want {
                None => want = Some(got),
                Some(w) => assert_eq!(&got, w, "window {window} changed results"),
            }
        }
    }

    #[test]
    fn batching_shares_one_cache_access_per_run() {
        // With one hot design and a wide-open window, cache traffic drops
        // to roughly one access per batch instead of one per job.
        let engine = Engine::start(EngineConfig {
            workers: 1,
            queue_capacity: 32,
            results_capacity: 32,
            design_cache_capacity: 2,
            batch_window: 8,
        });
        let specs: Vec<JobSpec> = (0..32).map(spec).collect();
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 32);
        let stats = engine.shutdown();
        let accesses = stats.cache_hits + stats.cache_misses;
        assert!(
            accesses < 32,
            "batching should amortize cache lookups: {accesses} accesses for 32 jobs"
        );
    }

    #[test]
    fn routed_results_bypass_the_shared_stream() {
        let engine = Engine::start(EngineConfig::with_workers(2));
        let route_a = engine.open_route(16);
        let route_b = engine.open_route(16);
        assert_ne!(route_a.id(), route_b.id());
        for id in 0..6 {
            let r = if id % 2 == 0 { &route_a } else { &route_b };
            engine.submit_routed(spec(id), r).unwrap();
        }
        let mut got_a: Vec<u64> = (0..3).map(|_| route_a.recv().unwrap().id).collect();
        let mut got_b: Vec<u64> = (0..3).map(|_| route_b.recv().unwrap().id).collect();
        got_a.sort_unstable();
        got_b.sort_unstable();
        assert_eq!(got_a, vec![0, 2, 4], "route A sees exactly its own jobs");
        assert_eq!(got_b, vec![1, 3, 5], "route B sees exactly its own jobs");
        assert!(engine.try_recv().is_none(), "nothing leaked to the shared stream");
        // A closed route drops late results instead of blocking workers.
        route_b.close();
        engine.submit_routed(spec(9), &route_b).unwrap();
        let stats = engine.shutdown();
        assert_eq!(stats.jobs_completed, 7, "the dropped result was still served");
    }

    #[test]
    fn shutdown_wakes_routed_receivers() {
        let engine = Engine::start(EngineConfig::with_workers(1));
        let route = engine.open_route(4);
        let waiter = std::thread::spawn(move || route.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        engine.shutdown();
        assert_eq!(waiter.join().unwrap(), None, "shutdown must close routed streams");
    }

    #[test]
    fn route_waker_fires_after_delivery_and_at_shutdown() {
        let engine = Engine::start(EngineConfig::with_workers(1));
        let route = engine.open_route(8);
        let wakes = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&wakes);
        route.register_waker(Arc::new(move || {
            counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }));
        engine.submit_routed(spec(0), &route).unwrap();
        engine.submit_routed(spec(1), &route).unwrap();
        // Push-then-wake: once a wake is observed, at least one result
        // is already in the queue.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while wakes.load(std::sync::atomic::Ordering::SeqCst) < 2 {
            assert!(std::time::Instant::now() < deadline, "waker never fired twice");
            std::thread::yield_now();
        }
        let mut got = 0;
        while let crate::queue::TryPop::Item(_) = route.try_recv() {
            got += 1;
        }
        assert_eq!(got, 2, "both results visible after their wakes");
        let before = wakes.load(std::sync::atomic::Ordering::SeqCst);
        engine.shutdown();
        assert!(
            wakes.load(std::sync::atomic::Ordering::SeqCst) > before,
            "close_routes must fire the waker so parked consumers see Closed"
        );
        assert!(matches!(route.try_recv(), crate::queue::TryPop::Closed));
    }

    #[test]
    fn stats_merge_adds_and_saturates() {
        let engine = Engine::start(EngineConfig::with_workers(2));
        let specs: Vec<JobSpec> = (0..10).map(spec).collect();
        let mut out = Vec::new();
        engine.run_batch(&specs, &mut out);
        let a = engine.shutdown();

        // Plain addition: two copies of the same node double every count
        // and merge the latency moments exactly.
        let mut sum = EngineStats::zero();
        sum.merge(&a);
        sum.merge(&a);
        assert_eq!(sum.jobs_completed, 2 * a.jobs_completed);
        assert_eq!(sum.exact_recoveries, 2 * a.exact_recoveries);
        assert_eq!(sum.cache_hits, 2 * a.cache_hits);
        assert_eq!(sum.cache_misses, 2 * a.cache_misses);
        assert_eq!(sum.workers, 2 * a.workers);
        assert_eq!(sum.total_latency.count(), 2 * a.total_latency.count());
        assert_eq!(sum.histogram.count(), 2 * a.histogram.count());
        assert_eq!(sum.total_latency.mean(), a.total_latency.mean());
        let rate = sum.cache_hit_rate();
        assert!((0.0..=1.0).contains(&rate));

        // Saturation: counters near the ceiling clamp instead of wrapping.
        let mut big = EngineStats::zero();
        big.jobs_completed = u64::MAX - 1;
        big.cache_hits = u64::MAX - 1;
        big.merge(&a);
        assert_eq!(big.jobs_completed, u64::MAX, "merge must saturate, not wrap");
        assert_eq!(big.cache_hits, u64::MAX);
        assert!(big.cache_hit_rate().is_finite());
    }

    #[test]
    fn prewarmed_engine_serves_its_first_requests_without_cold_misses() {
        // Snapshot/restore-lite end to end: keys exported from one node
        // warm a "restarted" node before it accepts traffic, so the first
        // request on every key is already a hit.
        let specs: Vec<JobSpec> = (0..12).map(spec).collect();
        let first = Engine::start(EngineConfig::with_workers(2));
        let mut out = Vec::new();
        first.run_batch(&specs, &mut out);
        let snapshot: Vec<DesignKey> = specs.iter().map(DesignKey::of).collect();
        first.shutdown();

        let restarted = Engine::start_prewarmed(EngineConfig::with_workers(2), &snapshot);
        out.clear();
        restarted.run_batch(&specs, &mut out);
        let stats = restarted.shutdown();
        assert_eq!(stats.jobs_completed, 12);
        assert_eq!(stats.cache_misses, 0, "a prewarmed node must see no cold miss");
        assert_eq!(stats.cache_hits, 12);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Engine::start(EngineConfig {
            workers: 0,
            queue_capacity: 1,
            results_capacity: 1,
            design_cache_capacity: 1,
            batch_window: 1,
        });
    }
}
