//! The shared design cache: sampled pooling designs keyed by their spec.
//!
//! Sampling a design is the most expensive allocating step of a job
//! (`O(m·Γ)` draws plus CSR construction + transpose), and real traffic
//! repeats design keys constantly — a tenant reuses its design across
//! thousands of reconstructions. The cache memoizes `spec → Arc<design>`
//! under the workspace-wide LRU policy ([`pooled_par::lru::LruCache`], the
//! same one bounding the thread-pool memo), so repeated traffic never
//! regenerates pools and a key sweep cannot grow memory without limit.
//!
//! Hits are allocation-free (`Arc` clone under a mutex); misses sample
//! *outside* the lock so one tenant's cold key never stalls another
//! tenant's hot path. Cold misses are **single-flight**: workers racing
//! on the same cold key elect one sampler and the rest block on its
//! result instead of each paying the full `O(m·Γ)` sampling cost for a
//! copy that would be discarded — under an `L`-worker cold start on one
//! hot key, exactly one sample runs ([`DesignCache::samples`]).
//!
//! Because sampling is a pure function of the key, the cache's working
//! set serializes as **keys only** ([`DesignCache::keys`]) and restores
//! bit-identically ([`DesignCache::prewarm`]) — the snapshot/restore-lite
//! path a restarted node uses to warm before accepting traffic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use pooled_design::factory::{AnyDesign, DesignKind};
use pooled_par::lru::LruCache;
use pooled_rng::SeedSequence;

use crate::durability::DesignJournal;
use crate::job::JobSpec;

/// Full identity of a sampled design. Equal keys ⇒ bit-identical designs
/// (sampling derives everything from the key's fields).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DesignKey {
    /// Number of entries.
    pub n: usize,
    /// Number of queries.
    pub m: usize,
    /// Design family.
    pub kind: DesignKind,
    /// Density in thousandths.
    pub c_milli: u32,
    /// Design seed.
    pub seed: u64,
}

impl DesignKey {
    /// The design key a job resolves to.
    pub fn of(spec: &JobSpec) -> Self {
        Self {
            n: spec.n,
            m: spec.m,
            kind: spec.design.kind,
            c_milli: spec.design.c_milli,
            seed: spec.design.seed,
        }
    }

    /// Sample the design this key identifies (pure function of the key).
    pub fn sample(&self) -> AnyDesign {
        let seeds = SeedSequence::new(self.seed);
        self.kind.sample(self.n, self.m, self.c_milli as f64 / 1000.0, &seeds.child("design", 0))
    }
}

/// State of one in-flight cold sample (see [`DesignCache::get_or_sample`]).
enum SampleState {
    /// The elected sampler is still working.
    Sampling,
    /// The design is ready; waiters clone this.
    Ready(Arc<AnyDesign>),
    /// The sampler unwound without publishing (a panic mid-sample);
    /// waiters must re-run the election instead of parking forever.
    Abandoned,
}

/// One cold key's single-flight rendezvous: the elected sampler publishes
/// here, every racing waiter blocks on the condvar.
struct InFlight {
    state: Mutex<SampleState>,
    ready: Condvar,
}

impl InFlight {
    fn new() -> Self {
        Self { state: Mutex::new(SampleState::Sampling), ready: Condvar::new() }
    }
}

/// Publishes `Abandoned` if the sampler unwinds before publishing a
/// design, so waiters re-elect instead of deadlocking on a result that
/// will never come. Disarmed on the normal path.
struct SamplerGuard<'a> {
    cache: &'a DesignCache,
    key: DesignKey,
    armed: bool,
}

impl Drop for SamplerGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.publish(&self.key, SampleState::Abandoned);
        }
    }
}

/// Bounded, thread-safe `DesignKey → Arc<AnyDesign>` memo with
/// single-flight cold misses.
pub struct DesignCache {
    inner: Mutex<LruCache<DesignKey, Arc<AnyDesign>>>,
    /// Cold keys currently being sampled (`key → rendezvous`). An entry
    /// exists exactly while one sampler works; racing misses on the same
    /// key wait on it instead of sampling again.
    sampling: Mutex<HashMap<DesignKey, Arc<InFlight>>>,
    /// The durable tier's observer, if this cache is journaled: every
    /// admission and eviction is reported so a write-ahead log can
    /// reconstruct the live set after a crash
    /// ([`crate::durability::WalJournal`]).
    journal: Mutex<Option<Arc<dyn DesignJournal>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DesignCache {
    /// Cache holding at most `capacity` designs.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruCache::new(capacity)),
            sampling: Mutex::new(HashMap::new()),
            journal: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Attach the durable tier's journal. From here on every admission
    /// and eviction is reported to it. Designs already resident are
    /// *not* retroactively reported — the caller checkpoints the live
    /// set right after attaching ([`crate::engine::Engine`] does).
    pub fn set_journal(&self, journal: Arc<dyn DesignJournal>) {
        *self.journal.lock().expect("design journal poisoned") = Some(journal);
    }

    /// Recovery-time restore: place an already-built design directly
    /// into the cache (skipping resident keys), with no telemetry and
    /// no journal traffic — the design came *from* the journal.
    pub(crate) fn install(&self, key: &DesignKey, design: Arc<AnyDesign>) {
        let mut inner = self.inner.lock().expect("design cache poisoned");
        if inner.get(key).is_none() {
            inner.insert(*key, design);
        }
    }

    /// The single admission point: report to the journal (write-ahead:
    /// the record lands before the design serves), insert, and report
    /// whatever the insertion evicted. Returns the resident design —
    /// the existing one if another path admitted `key` first.
    fn admit(&self, key: &DesignKey, design: Arc<AnyDesign>) -> Arc<AnyDesign> {
        let journal = self.journal.lock().expect("design journal poisoned").clone();
        if let Some(j) = &journal {
            j.admitted(key, &design);
        }
        let (shared, evicted) = {
            let mut inner = self.inner.lock().expect("design cache poisoned");
            match inner.get(key) {
                Some(d) => (Arc::clone(d), None),
                None => {
                    let evicted = inner.insert(*key, Arc::clone(&design));
                    (design, evicted)
                }
            }
        };
        if let (Some(j), Some((evicted_key, _))) = (&journal, &evicted) {
            j.evicted(evicted_key);
        }
        shared
    }

    /// The design for `key`: cached on a hit, sampled (outside the lock)
    /// and inserted on a miss. Concurrent misses on the same key are
    /// coalesced: one caller samples, the rest block on its result and
    /// count as hits — they were served from shared work, not their own
    /// sampling.
    pub fn get_or_sample(&self, key: &DesignKey) -> Arc<AnyDesign> {
        loop {
            if let Some(d) = self.inner.lock().expect("design cache poisoned").get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(d);
            }
            // Cold: join the in-flight sample for this key, or become it.
            let joined = {
                let mut sampling = self.sampling.lock().expect("sampler table poisoned");
                match sampling.get(key) {
                    Some(pending) => Some(Arc::clone(pending)),
                    None => {
                        sampling.insert(*key, Arc::new(InFlight::new()));
                        None
                    }
                }
            };
            let Some(pending) = joined else {
                return self.sample_as_leader(key);
            };
            let mut state = pending.state.lock().expect("in-flight sample poisoned");
            loop {
                match &*state {
                    SampleState::Sampling => {
                        state = pending.ready.wait(state).expect("in-flight sample poisoned");
                    }
                    SampleState::Ready(d) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Arc::clone(d);
                    }
                    // Sampler died before publishing: re-run the election.
                    SampleState::Abandoned => break,
                }
            }
        }
    }

    /// The elected sampler's path: sample the key (counted as the miss),
    /// insert it, and wake every coalesced waiter.
    fn sample_as_leader(&self, key: &DesignKey) -> Arc<AnyDesign> {
        let mut guard = SamplerGuard { cache: self, key: *key, armed: true };
        // A previous sampler may have finished between our cache miss and
        // the election; serving its copy keeps `samples == misses` exact.
        if let Some(d) = self.inner.lock().expect("design cache poisoned").get(key) {
            let d = Arc::clone(d);
            guard.armed = false;
            self.publish(key, SampleState::Ready(Arc::clone(&d)));
            self.hits.fetch_add(1, Ordering::Relaxed);
            return d;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(key.sample());
        let shared = self.admit(key, fresh);
        guard.armed = false;
        self.publish(key, SampleState::Ready(Arc::clone(&shared)));
        shared
    }

    /// Hand `state` to this key's waiters and retire the in-flight entry.
    fn publish(&self, key: &DesignKey, state: SampleState) {
        let pending = self.sampling.lock().expect("sampler table poisoned").remove(key);
        if let Some(pending) = pending {
            *pending.state.lock().expect("in-flight sample poisoned") = state;
            pending.ready.notify_all();
        }
    }

    /// `(hits, misses)` since construction. A hit is any access served
    /// without sampling (cached, or coalesced onto another caller's
    /// in-flight sample); a miss is an access that actually sampled.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Number of designs sampled on behalf of traffic — identical to the
    /// miss count: single-flight coalescing makes "paid the sampling
    /// cost" and "counted as a miss" the same event.
    pub fn samples(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Snapshot-lite export: the keys of every resident design, in no
    /// particular order. Designs resample bit-identically from their
    /// keys, so this *is* the cache's serialized form.
    pub fn keys(&self) -> Vec<DesignKey> {
        self.inner.lock().expect("design cache poisoned").keys().copied().collect()
    }

    /// Snapshot-lite restore: sample every key into the cache (skipping
    /// ones already resident) without touching the hit/miss telemetry —
    /// warming is administrative, not traffic. A restarted node calls
    /// this before accepting jobs so its first requests see no cold
    /// misses ([`crate::engine::Engine::start_prewarmed`]).
    pub fn prewarm(&self, keys: &[DesignKey]) {
        for key in keys {
            if self.inner.lock().expect("design cache poisoned").get(key).is_some() {
                continue;
            }
            // Sample outside the lock, exactly like a traffic miss.
            // Admissions still flow through the journal (when one is
            // attached): a standby prewarmed at runtime must be able to
            // recover its warm set too.
            let fresh = Arc::new(key.sample());
            let _ = self.admit(key, fresh);
        }
    }

    /// Number of cached designs.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("design cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached designs.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("design cache poisoned").capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_design::PoolingDesign;

    fn key(seed: u64) -> DesignKey {
        DesignKey { n: 100, m: 20, kind: DesignKind::RandomRegular, c_milli: 500, seed }
    }

    #[test]
    fn hit_returns_the_same_design_instance() {
        let cache = DesignCache::new(4);
        let a = cache.get_or_sample(&key(1));
        let b = cache.get_or_sample(&key(1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_key() {
        // Even after eviction, a re-miss reproduces the identical design.
        let cache = DesignCache::new(1);
        let first = cache.get_or_sample(&key(7));
        let _evictor = cache.get_or_sample(&key(8));
        let again = cache.get_or_sample(&key(7));
        assert!(!Arc::ptr_eq(&first, &again), "evicted entry must be resampled");
        assert_eq!(first.csr().n(), again.csr().n());
        for q in 0..first.m() {
            assert_eq!(first.csr().query_row(q), again.csr().query_row(q));
        }
    }

    #[test]
    fn capacity_bounds_resident_designs() {
        let cache = DesignCache::new(3);
        for s in 0..10 {
            let _ = cache.get_or_sample(&key(s));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 10));
    }

    #[test]
    fn distinct_keys_get_distinct_designs() {
        let cache = DesignCache::new(4);
        let a = cache.get_or_sample(&key(1));
        let b = cache.get_or_sample(&key(2));
        assert!(!Arc::ptr_eq(&a, &b));
        // Same shape, different pools.
        let differ = (0..a.m()).any(|q| a.csr().query_row(q) != b.csr().query_row(q));
        assert!(differ, "different seeds produced identical designs");
    }

    #[test]
    fn racing_cold_misses_elect_one_sampler() {
        // Regression: two concurrent `get_or_sample` misses on the same
        // key used to both pay the full sampling cost before one copy was
        // discarded. Under single-flight, 8 threads released together on
        // one cold key must produce exactly one sample — and everyone
        // must hold the same Arc.
        use std::sync::Barrier;
        let cache = Arc::new(DesignCache::new(4));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_sample(&key(42))
                })
            })
            .collect();
        let designs: Vec<Arc<AnyDesign>> =
            handles.into_iter().map(|h| h.join().expect("sampler thread")).collect();
        assert_eq!(cache.samples(), 1, "racing misses must coalesce onto one sampler");
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 7, "coalesced waiters count as hits");
        assert!(designs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
    }

    #[test]
    fn single_flight_keys_are_independent() {
        // Different cold keys sample independently (no false coalescing).
        use std::sync::Barrier;
        let cache = Arc::new(DesignCache::new(8));
        let barrier = Arc::new(Barrier::new(6));
        let handles: Vec<_> = (0..6u64)
            .map(|i| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_sample(&key(i % 3))
                })
            })
            .collect();
        for h in handles {
            h.join().expect("sampler thread");
        }
        assert_eq!(cache.samples(), 3, "one sample per distinct cold key");
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn keys_roundtrip_through_prewarm_bit_identically() {
        // Snapshot-lite: export keys, prewarm a fresh cache, and the
        // restored designs must be bit-identical (same pure function).
        let cache = DesignCache::new(4);
        let a = cache.get_or_sample(&key(1));
        let b = cache.get_or_sample(&key(2));
        let mut snapshot = cache.keys();
        snapshot.sort_unstable_by_key(|k| k.seed);
        assert_eq!(snapshot.len(), 2);

        let restored = DesignCache::new(4);
        restored.prewarm(&snapshot);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.stats(), (0, 0), "prewarming is not traffic");
        for (want, k) in [(a, key(1)), (b, key(2))] {
            let got = restored.get_or_sample(&k);
            for q in 0..want.m() {
                assert_eq!(want.csr().query_row(q), got.csr().query_row(q));
            }
        }
        // And serving the prewarmed keys is pure hits.
        assert_eq!(restored.stats(), (2, 0));
    }

    #[test]
    fn prewarm_skips_resident_keys() {
        let cache = DesignCache::new(4);
        let first = cache.get_or_sample(&key(5));
        cache.prewarm(&[key(5), key(6)]);
        assert_eq!(cache.len(), 2);
        // The resident entry was not resampled: same Arc.
        let again = cache.get_or_sample(&key(5));
        assert!(Arc::ptr_eq(&first, &again));
    }
}
