//! The shared design cache: sampled pooling designs keyed by their spec.
//!
//! Sampling a design is the most expensive allocating step of a job
//! (`O(m·Γ)` draws plus CSR construction + transpose), and real traffic
//! repeats design keys constantly — a tenant reuses its design across
//! thousands of reconstructions. The cache memoizes `spec → Arc<design>`
//! under the workspace-wide LRU policy ([`pooled_par::lru::LruCache`], the
//! same one bounding the thread-pool memo), so repeated traffic never
//! regenerates pools and a key sweep cannot grow memory without limit.
//!
//! Hits are allocation-free (`Arc` clone under a mutex); misses sample
//! *outside* the lock so one tenant's cold key never stalls another
//! tenant's hot path. Two workers racing on the same cold key may both
//! sample; the loser's copy is dropped — wasted work, never wrong results
//! (sampling is a pure function of the key).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pooled_design::factory::{AnyDesign, DesignKind};
use pooled_par::lru::LruCache;
use pooled_rng::SeedSequence;

use crate::job::JobSpec;

/// Full identity of a sampled design. Equal keys ⇒ bit-identical designs
/// (sampling derives everything from the key's fields).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DesignKey {
    /// Number of entries.
    pub n: usize,
    /// Number of queries.
    pub m: usize,
    /// Design family.
    pub kind: DesignKind,
    /// Density in thousandths.
    pub c_milli: u32,
    /// Design seed.
    pub seed: u64,
}

impl DesignKey {
    /// The design key a job resolves to.
    pub fn of(spec: &JobSpec) -> Self {
        Self {
            n: spec.n,
            m: spec.m,
            kind: spec.design.kind,
            c_milli: spec.design.c_milli,
            seed: spec.design.seed,
        }
    }

    /// Sample the design this key identifies (pure function of the key).
    pub fn sample(&self) -> AnyDesign {
        let seeds = SeedSequence::new(self.seed);
        self.kind.sample(self.n, self.m, self.c_milli as f64 / 1000.0, &seeds.child("design", 0))
    }
}

/// Bounded, thread-safe `DesignKey → Arc<AnyDesign>` memo.
pub struct DesignCache {
    inner: Mutex<LruCache<DesignKey, Arc<AnyDesign>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DesignCache {
    /// Cache holding at most `capacity` designs.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The design for `key`: cached on a hit, sampled (outside the lock)
    /// and inserted on a miss.
    pub fn get_or_sample(&self, key: &DesignKey) -> Arc<AnyDesign> {
        if let Some(d) = self.inner.lock().expect("design cache poisoned").get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(d);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(key.sample());
        let mut cache = self.inner.lock().expect("design cache poisoned");
        // A racing sampler may have inserted meanwhile; keep the cached
        // copy so every holder shares one allocation.
        cache.get_or_insert_with(key, || fresh)
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Number of cached designs.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("design cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached designs.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("design cache poisoned").capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_design::PoolingDesign;

    fn key(seed: u64) -> DesignKey {
        DesignKey { n: 100, m: 20, kind: DesignKind::RandomRegular, c_milli: 500, seed }
    }

    #[test]
    fn hit_returns_the_same_design_instance() {
        let cache = DesignCache::new(4);
        let a = cache.get_or_sample(&key(1));
        let b = cache.get_or_sample(&key(1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_key() {
        // Even after eviction, a re-miss reproduces the identical design.
        let cache = DesignCache::new(1);
        let first = cache.get_or_sample(&key(7));
        let _evictor = cache.get_or_sample(&key(8));
        let again = cache.get_or_sample(&key(7));
        assert!(!Arc::ptr_eq(&first, &again), "evicted entry must be resampled");
        assert_eq!(first.csr().n(), again.csr().n());
        for q in 0..first.m() {
            assert_eq!(first.csr().query_row(q), again.csr().query_row(q));
        }
    }

    #[test]
    fn capacity_bounds_resident_designs() {
        let cache = DesignCache::new(3);
        for s in 0..10 {
            let _ = cache.get_or_sample(&key(s));
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats(), (0, 10));
    }

    #[test]
    fn distinct_keys_get_distinct_designs() {
        let cache = DesignCache::new(4);
        let a = cache.get_or_sample(&key(1));
        let b = cache.get_or_sample(&key(2));
        assert!(!Arc::ptr_eq(&a, &b));
        // Same shape, different pools.
        let differ = (0..a.m()).any(|q| a.csr().query_row(q) != b.csr().query_row(q));
        assert!(differ, "different seeds produced identical designs");
    }
}
