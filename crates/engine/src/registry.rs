//! The decoder registry: every reconstruction algorithm the engine can
//! serve, behind one trait object.
//!
//! [`decoder`] maps a [`DecoderKind`] to a `&'static dyn EngineDecoder`.
//! The hot decoders (classic MN, Γ-general MN) route through PR 1's
//! workspace entry points and are **allocation-free** after warm-up; the
//! channel-transfer and baseline decoders reuse their crates' one-shot
//! APIs (they allocate, and the registry documents that — they exist for
//! comparative traffic, not the hot path).
//!
//! A decoder's contract: given the design, the additive query results
//! `y`, the target weight `k` and the hidden truth (engine jobs are
//! self-checking synthetic instances), produce a [`DecodeOutcome`] whose
//! digests are a pure function of `(design, y, k, seed)` — never of
//! worker placement or timing. The determinism suite holds every
//! registered decoder to this.

use pooled_baselines::control::{PsiOnlyDecoder, RandomGuessDecoder};
use pooled_baselines::omp::OmpDecoder;
use pooled_baselines::AdditiveDecoder;
use pooled_core::mn::MnDecoder;
use pooled_core::mn_general::GeneralMnDecoder;
use pooled_core::workspace::MnWorkspace;
use pooled_design::factory::AnyDesign;
use pooled_design::PoolingDesign;
use pooled_rng::SeedSequence;
use pooled_threshold::decoder::ThresholdMnDecoder;

use crate::job::{digest_support, DecoderKind, Digest};

/// Per-worker scratch shared by every decoder: the PR 1 workspace plus a
/// bit buffer for the threshold channel.
#[derive(Default)]
pub struct DecodeScratch {
    /// Reusable MN decode workspace (buffers grow once per shape).
    pub ws: MnWorkspace,
    /// Threshold-channel bit buffer.
    pub bits: Vec<u8>,
}

impl DecodeScratch {
    /// Empty scratch; every buffer grows on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// What a decoder hands back to the worker (see module docs for the
/// determinism contract).
#[derive(Clone, Copy, Debug)]
pub struct DecodeOutcome {
    /// Order-sensitive digest of the selected support.
    pub support_digest: u64,
    /// Digest of the per-entry scores (0 when the decoder has none).
    pub score_digest: u64,
    /// Correctly recovered one-entries.
    pub hits: u32,
    /// Estimate weight.
    pub weight: u32,
}

/// One servable reconstruction algorithm.
pub trait EngineDecoder: Send + Sync {
    /// Stable identifier (matches [`DecoderKind::name`]).
    fn name(&self) -> &'static str;

    /// Whether steady-state serving through this decoder is
    /// allocation-free (pinned by `tests/alloc_free.rs` for the decoders
    /// that claim it).
    fn alloc_free(&self) -> bool {
        false
    }

    /// Decode `y` against `design`, scoring against the hidden `truth`.
    fn decode(
        &self,
        design: &AnyDesign,
        y: &[u64],
        k: usize,
        seed: u64,
        truth: &[u8],
        scratch: &mut DecodeScratch,
    ) -> DecodeOutcome;
}

/// The registry: one static decoder per [`DecoderKind`].
pub fn decoder(kind: DecoderKind) -> &'static dyn EngineDecoder {
    match kind {
        DecoderKind::Mn => &MnEngine,
        DecoderKind::GeneralMn => &GeneralMnEngine,
        DecoderKind::ThresholdMn => &ThresholdMnEngine,
        DecoderKind::PsiOnly => &PsiOnlyEngine,
        DecoderKind::RandomGuess => &RandomGuessEngine,
        DecoderKind::Omp => &OmpEngine,
        DecoderKind::PanicProbe => &PanicProbeEngine,
    }
}

/// Count support hits against the dense truth and fold the outcome.
fn outcome(support: &[usize], score_digest: u64, truth: &[u8]) -> DecodeOutcome {
    let hits = support.iter().filter(|&&i| truth[i] == 1).count() as u32;
    DecodeOutcome {
        support_digest: digest_support(support),
        score_digest,
        hits,
        weight: support.len() as u32,
    }
}

/// Algorithm 1 through the workspace gather path (allocation-free).
struct MnEngine;

impl EngineDecoder for MnEngine {
    fn name(&self) -> &'static str {
        "mn"
    }

    fn alloc_free(&self) -> bool {
        true
    }

    fn decode(
        &self,
        design: &AnyDesign,
        y: &[u64],
        k: usize,
        _seed: u64,
        truth: &[u8],
        scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        MnDecoder::new(k).decode_csr_with(design.csr(), y, &mut scratch.ws);
        let mut d = Digest::new();
        for &s in scratch.ws.scores() {
            d.push(s as u64);
        }
        outcome(scratch.ws.support(), d.finish(), truth)
    }
}

/// Γ-general MN through the workspace path (allocation-free).
struct GeneralMnEngine;

impl EngineDecoder for GeneralMnEngine {
    fn name(&self) -> &'static str {
        "mn_general"
    }

    fn alloc_free(&self) -> bool {
        true
    }

    fn decode(
        &self,
        design: &AnyDesign,
        y: &[u64],
        k: usize,
        _seed: u64,
        truth: &[u8],
        scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        GeneralMnDecoder::new(k).decode_with(design, y, &mut scratch.ws);
        let mut d = Digest::new();
        for &s in scratch.ws.scores_wide() {
            d.push_i128(s);
        }
        outcome(scratch.ws.support(), d.finish(), truth)
    }
}

/// Threshold-MN on the median-threshold one-bit channel: the additive
/// results are collapsed to `y_q ≥ t` with `t = max(1, round(Γ·k/n))`
/// (the null mean, so bits split near 50/50) before decoding.
struct ThresholdMnEngine;

impl EngineDecoder for ThresholdMnEngine {
    fn name(&self) -> &'static str {
        "threshold_mn"
    }

    fn decode(
        &self,
        design: &AnyDesign,
        y: &[u64],
        k: usize,
        _seed: u64,
        truth: &[u8],
        scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        let n = design.n() as u64;
        let t = ((design.gamma() as u64 * k as u64 + n / 2) / n).max(1);
        scratch.bits.clear();
        scratch.bits.extend(y.iter().map(|&v| (v >= t) as u8));
        let out = ThresholdMnDecoder::new(k).decode(design, &scratch.bits);
        let mut d = Digest::new();
        for &s in &out.scores {
            d.push(s as u64);
        }
        outcome(out.estimate.support(), d.finish(), truth)
    }
}

/// Ψ-only ablation baseline (no degree centering).
struct PsiOnlyEngine;

impl EngineDecoder for PsiOnlyEngine {
    fn name(&self) -> &'static str {
        "psi_only"
    }

    fn decode(
        &self,
        design: &AnyDesign,
        y: &[u64],
        k: usize,
        _seed: u64,
        truth: &[u8],
        _scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        let estimate = PsiOnlyDecoder::new().reconstruct(design.csr(), y, k);
        outcome(estimate.support(), 0, truth)
    }
}

/// Random-guess control, seeded from the job so reruns are bit-identical.
struct RandomGuessEngine;

impl EngineDecoder for RandomGuessEngine {
    fn name(&self) -> &'static str {
        "random_guess"
    }

    fn decode(
        &self,
        design: &AnyDesign,
        y: &[u64],
        k: usize,
        seed: u64,
        truth: &[u8],
        _scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        let guess = RandomGuessDecoder::new(SeedSequence::new(seed).child("guess", 0));
        let estimate = guess.reconstruct(design.csr(), y, k);
        outcome(estimate.support(), 0, truth)
    }
}

/// Orthogonal Matching Pursuit baseline (densifies the design: `m·n`
/// doubles — route only small instances here).
struct OmpEngine;

impl EngineDecoder for OmpEngine {
    fn name(&self) -> &'static str {
        "omp"
    }

    fn decode(
        &self,
        design: &AnyDesign,
        y: &[u64],
        k: usize,
        _seed: u64,
        truth: &[u8],
        _scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        let estimate = OmpDecoder::new().reconstruct(design.csr(), y, k);
        outcome(estimate.support(), 0, truth)
    }
}

/// The hidden probe behind [`DecoderKind::PanicProbe`]: always panics.
/// Exists so the panic-containment tests can poison a worker's decode
/// stage on demand; never reachable from real traffic (the kind is not
/// in [`DecoderKind::ALL`]).
struct PanicProbeEngine;

impl EngineDecoder for PanicProbeEngine {
    fn name(&self) -> &'static str {
        "panic_probe"
    }

    fn decode(
        &self,
        _design: &AnyDesign,
        _y: &[u64],
        _k: usize,
        _seed: u64,
        _truth: &[u8],
        _scratch: &mut DecodeScratch,
    ) -> DecodeOutcome {
        panic!("panic probe decoder: deliberate decode-stage panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pooled_core::query::execute_queries;
    use pooled_core::Signal;
    use pooled_design::factory::DesignKind;

    fn instance(seed: u64) -> (AnyDesign, Signal, Vec<u64>, usize) {
        let seeds = SeedSequence::new(seed);
        let (n, k, m) = (300, 5, 220);
        let design = DesignKind::RandomRegular.sample(n, m, 0.5, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&design, &sigma);
        (design, sigma, y, k)
    }

    #[test]
    fn registry_names_match_kinds() {
        for kind in DecoderKind::ALL {
            assert_eq!(decoder(kind).name(), kind.name());
        }
    }

    #[test]
    fn every_decoder_produces_a_weight_k_estimate() {
        let (design, sigma, y, k) = instance(42);
        let mut scratch = DecodeScratch::new();
        for kind in DecoderKind::ALL {
            let out = decoder(kind).decode(&design, &y, k, 7, sigma.dense(), &mut scratch);
            assert_eq!(out.weight as usize, k, "{}", kind.name());
            assert!(out.hits <= out.weight, "{}", kind.name());
        }
    }

    #[test]
    fn decodes_are_reproducible() {
        let (design, sigma, y, k) = instance(43);
        let mut a = DecodeScratch::new();
        let mut b = DecodeScratch::new();
        for kind in DecoderKind::ALL {
            let x = decoder(kind).decode(&design, &y, k, 9, sigma.dense(), &mut a);
            let z = decoder(kind).decode(&design, &y, k, 9, sigma.dense(), &mut b);
            assert_eq!(x.support_digest, z.support_digest, "{}", kind.name());
            assert_eq!(x.score_digest, z.score_digest, "{}", kind.name());
            assert_eq!(x.hits, z.hits, "{}", kind.name());
        }
    }

    #[test]
    fn mn_recovers_an_easy_instance() {
        let (design, sigma, y, k) = instance(44);
        let mut scratch = DecodeScratch::new();
        let out = decoder(DecoderKind::Mn).decode(&design, &y, k, 0, sigma.dense(), &mut scratch);
        assert_eq!(out.hits as usize, k, "MN should recover at m comfortably above threshold");
    }

    #[test]
    fn decoders_disagree_on_scores() {
        // The registry must dispatch to genuinely different algorithms:
        // MN and Ψ-only produce different digests on a generic instance.
        let (design, sigma, y, k) = instance(45);
        let mut scratch = DecodeScratch::new();
        let mn = decoder(DecoderKind::Mn).decode(&design, &y, k, 0, sigma.dense(), &mut scratch);
        let gen =
            decoder(DecoderKind::GeneralMn).decode(&design, &y, k, 0, sigma.dense(), &mut scratch);
        // Same ranking on the regular design (property-tested in core),
        // but the score spaces differ.
        assert_eq!(mn.support_digest, gen.support_digest);
        assert_ne!(mn.score_digest, gen.score_digest);
    }
}
