//! Fault injection for cluster nodes: a [`NodeHandle`] wrapper that
//! drops, delays, duplicates, or severs traffic on a deterministic
//! schedule.
//!
//! [`ChaosNode`] wraps any inner handle and misbehaves *between* the
//! router and the node, which is exactly where real faults live: a
//! submission that never arrives (black-holed peer), an event that
//! arrives late or twice (retransmit storms, pump races), a connection
//! that dies mid-stream (process kill). Every decision derives from
//! [`ChaosConfig::seed`] and a per-stream counter via `mix64`, so a
//! failing schedule replays bit-for-bit — no flaky tests, no
//! irreproducible failures.
//!
//! The paired [`ChaosController`] is the test's hand on the lever: it
//! can [`kill`](ChaosController::kill) the node at a chosen moment
//! (the next touch severs the completion stream, exactly like a
//! crashed peer) and read fault counters afterwards to assert the
//! schedule actually injected something.
//!
//! `tests/cluster_failover.rs` drives a chaos-wrapped cluster to pin
//! the failure-domain headline: kill a node mid-stream and every job
//! still completes, with fingerprints bit-identical to the fault-free
//! run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pooled_rng::splitmix::mix64;

use crate::cache::DesignKey;
use crate::cluster::node::{NodeError, NodeEvent, NodeHandle, SubmitOutcome};
use crate::engine::EngineStats;
use crate::job::JobSpec;
use crate::queue::TryPop;
use crate::telemetry::{CausalKind, FlightRecorder};

/// Fault schedule for a [`ChaosNode`]. Rates are per-mille (`0..=1000`)
/// so integer arithmetic stays exact; every roll is a pure function of
/// `seed` and the event counter.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Per-mille chance a submission is silently swallowed (the wire
    /// accepted it; the peer never saw it) — exercises probation.
    pub drop_milli: u32,
    /// Per-mille chance an event is handed to the router twice —
    /// exercises stale-event tolerance.
    pub duplicate_milli: u32,
    /// Per-mille chance an event is held back one poll — exercises
    /// reordering tolerance.
    pub delay_milli: u32,
    /// Sever the node (as if the process died) once this many
    /// submissions have been attempted. `None` leaves the kill switch
    /// to the [`ChaosController`].
    pub disconnect_after: Option<u64>,
}

impl ChaosConfig {
    /// No scheduled faults: the node behaves perfectly until the
    /// controller pulls [`ChaosController::kill`]. The usual config
    /// for kill-mid-stream tests that want a clean before/after.
    pub fn quiet(seed: u64) -> Self {
        Self { seed, drop_milli: 0, duplicate_milli: 0, delay_milli: 0, disconnect_after: None }
    }
}

/// Shared fault state between a [`ChaosNode`] and its controller.
#[derive(Debug, Default)]
struct ChaosState {
    killed: AtomicBool,
    submissions: AtomicU64,
    events: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
}

/// The test's handle on a [`ChaosNode`]: pull the kill switch at a
/// chosen moment, read fault counters afterwards.
#[derive(Clone, Debug)]
pub struct ChaosController {
    state: Arc<ChaosState>,
}

impl ChaosController {
    /// Sever the node as if its process died: the next touch from the
    /// router closes the completion stream, submissions start failing,
    /// and anything in flight inside the node is lost to the caller.
    pub fn kill(&self) {
        self.state.killed.store(true, Ordering::Release);
    }

    /// Whether the kill switch has been pulled (by [`Self::kill`] or
    /// [`ChaosConfig::disconnect_after`]).
    pub fn killed(&self) -> bool {
        self.state.killed.load(Ordering::Acquire)
    }

    /// Submissions attempted through the wrapper so far.
    pub fn submissions(&self) -> u64 {
        self.state.submissions.load(Ordering::Acquire)
    }

    /// Submissions silently swallowed by the drop schedule.
    pub fn dropped(&self) -> u64 {
        self.state.dropped.load(Ordering::Acquire)
    }

    /// Events handed to the router twice by the duplicate schedule.
    pub fn duplicated(&self) -> u64 {
        self.state.duplicated.load(Ordering::Acquire)
    }

    /// Events held back one poll by the delay schedule.
    pub fn delayed(&self) -> u64 {
        self.state.delayed.load(Ordering::Acquire)
    }
}

/// A fault-injecting [`NodeHandle`] wrapper (see the module docs).
/// Built by [`wrap`]; drives faults from a deterministic schedule and
/// a controller-held kill switch.
pub struct ChaosNode {
    inner: Box<dyn NodeHandle>,
    config: ChaosConfig,
    state: Arc<ChaosState>,
    /// Events held back (delay) or queued twice (duplicate), drained
    /// ahead of the inner stream.
    pending: Mutex<VecDeque<NodeEvent>>,
    /// Ensures the kill severs the inner node exactly once.
    kill_applied: AtomicBool,
    /// Optional flight recorder: every injected fault leaves a causal
    /// record, so a post-mortem dump shows *why* the cluster limped.
    recorder: Option<Arc<FlightRecorder>>,
    /// Node id stamped into causal records (set with the recorder).
    node_id: u64,
}

/// Wrap `inner` in a fault-injecting [`ChaosNode`], returning the node
/// (hand it to the router) and the [`ChaosController`] (keep it in the
/// test).
pub fn wrap(inner: Box<dyn NodeHandle>, config: ChaosConfig) -> (ChaosNode, ChaosController) {
    let state = Arc::new(ChaosState::default());
    let controller = ChaosController { state: Arc::clone(&state) };
    let node = ChaosNode {
        inner,
        config,
        state,
        pending: Mutex::new(VecDeque::new()),
        kill_applied: AtomicBool::new(false),
        recorder: None,
        node_id: 0,
    };
    (node, controller)
}

/// Job id carried by a node event, for causal-record tagging.
fn event_job_id(event: &NodeEvent) -> u64 {
    match event {
        NodeEvent::Result(r) => r.id,
        NodeEvent::Busy(id) | NodeEvent::Rejected(id) => *id,
        NodeEvent::Down => 0,
    }
}

impl ChaosNode {
    /// Attach a [`FlightRecorder`]: from here on every injected fault
    /// (kill, drop, delay, duplicate) lands as a causal record tagged
    /// with `node_id`, joining the router's failover records in the
    /// same dump.
    pub fn attach_recorder(&mut self, recorder: Arc<FlightRecorder>, node_id: u64) {
        self.recorder = Some(recorder);
        self.node_id = node_id;
    }

    fn record_causal(&self, kind: CausalKind, job: u64) {
        if let Some(rec) = &self.recorder {
            rec.record_causal(kind, self.node_id, job);
        }
    }
    /// One deterministic per-mille roll: stream separates fault kinds,
    /// counter advances per decision.
    fn roll(&self, stream: u64, counter: u64) -> u32 {
        let lane = stream.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(counter);
        (mix64(self.config.seed ^ mix64(lane)) % 1000) as u32
    }

    /// Apply the kill switch (once): sever the inner node's completion
    /// stream exactly like a crashed peer. Returns whether the node is
    /// dead.
    fn check_killed(&self) -> bool {
        if !self.state.killed.load(Ordering::Acquire) {
            return false;
        }
        if !self.kill_applied.swap(true, Ordering::AcqRel) {
            self.record_causal(CausalKind::ChaosKill, 0);
            self.inner.close();
        }
        true
    }

    fn pop_pending(&self) -> Option<NodeEvent> {
        self.pending.lock().expect("chaos pending poisoned").pop_front()
    }

    fn push_pending(&self, event: NodeEvent) {
        self.pending.lock().expect("chaos pending poisoned").push_back(event);
    }
}

impl NodeHandle for ChaosNode {
    fn submit(&self, spec: JobSpec) -> Result<(), NodeError> {
        // The blocking path is not fault-shaped (the router never uses
        // it); only the kill switch applies.
        if self.check_killed() {
            return Err(NodeError::Closed);
        }
        self.inner.submit(spec)
    }

    fn try_submit(&self, spec: JobSpec) -> Result<SubmitOutcome, NodeError> {
        self.try_submit_stamped(spec, None)
    }

    fn try_submit_stamped(
        &self,
        spec: JobSpec,
        wire_rx: Option<std::time::Instant>,
    ) -> Result<SubmitOutcome, NodeError> {
        if self.check_killed() {
            return Err(NodeError::Closed);
        }
        let seq = self.state.submissions.fetch_add(1, Ordering::AcqRel);
        if let Some(cap) = self.config.disconnect_after {
            if seq >= cap {
                self.state.killed.store(true, Ordering::Release);
                self.check_killed();
                return Err(NodeError::Closed);
            }
        }
        if self.roll(1, seq) < self.config.drop_milli {
            // Swallow it: the caller believes the peer has the job; the
            // peer never answers. Probation must catch this.
            self.state.dropped.fetch_add(1, Ordering::AcqRel);
            self.record_causal(CausalKind::ChaosDrop, spec.id);
            return Ok(SubmitOutcome::Accepted);
        }
        self.inner.try_submit_stamped(spec, wire_rx)
    }

    fn note_wire_tx(&self, id: u64) {
        self.inner.note_wire_tx(id);
    }

    fn flush(&self) -> Result<(), NodeError> {
        if self.check_killed() {
            return Err(NodeError::Closed);
        }
        self.inner.flush()
    }

    fn recv(&self) -> Option<NodeEvent> {
        if let Some(event) = self.pop_pending() {
            return Some(event);
        }
        if self.check_killed() {
            return None;
        }
        // The blocking path delivers faithfully — delay/duplicate shape
        // only the polling path the router drives.
        self.inner.recv()
    }

    fn try_recv(&self) -> TryPop<NodeEvent> {
        if let Some(event) = self.pop_pending() {
            return TryPop::Item(event);
        }
        if self.check_killed() {
            return TryPop::Closed;
        }
        match self.inner.try_recv() {
            TryPop::Item(event) => {
                let seq = self.state.events.fetch_add(1, Ordering::AcqRel);
                if self.roll(2, seq) < self.config.delay_milli {
                    self.state.delayed.fetch_add(1, Ordering::AcqRel);
                    self.record_causal(CausalKind::ChaosDelay, event_job_id(&event));
                    self.push_pending(event);
                    return TryPop::Empty;
                }
                if self.roll(3, seq) < self.config.duplicate_milli {
                    self.state.duplicated.fetch_add(1, Ordering::AcqRel);
                    self.record_causal(CausalKind::ChaosDuplicate, event_job_id(&event));
                    self.push_pending(event);
                }
                TryPop::Item(event)
            }
            other => other,
        }
    }

    fn prewarm(&self, keys: &[DesignKey]) -> Result<(), NodeError> {
        if self.check_killed() {
            return Err(NodeError::Closed);
        }
        self.inner.prewarm(keys)
    }

    fn stats(&self) -> Option<EngineStats> {
        // A dead peer cannot be scraped: once killed, stats go
        // unavailable (the cluster view must mark the blind spot, not
        // zero-merge it).
        if self.check_killed() {
            return None;
        }
        self.inner.stats()
    }

    fn close(&self) {
        self.inner.close();
    }

    fn shutdown(self: Box<Self>) -> Option<EngineStats> {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::node::LocalNode;
    use crate::engine::EngineConfig;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            n: 250,
            k: 5,
            m: 160,
            design: DesignSpec::random_regular(0),
            decoder: DecoderKind::Mn,
            seed: 900 + id,
            query_cost_micros: 0,
        }
    }

    fn chaos_local(config: ChaosConfig) -> (ChaosNode, ChaosController) {
        let inner = Box::new(LocalNode::start(EngineConfig::with_workers(1)));
        wrap(inner, config)
    }

    #[test]
    fn a_quiet_chaos_node_is_transparent() {
        let (node, controller) = chaos_local(ChaosConfig::quiet(7));
        assert_eq!(node.try_submit(spec(0)).unwrap(), SubmitOutcome::Accepted);
        let event = node.recv().expect("one result");
        assert!(matches!(event, NodeEvent::Result(r) if r.id == 0));
        assert_eq!(controller.dropped(), 0);
        assert_eq!(controller.duplicated(), 0);
        assert!(!controller.killed());
        Box::new(node).shutdown();
    }

    #[test]
    fn the_kill_switch_severs_the_completion_stream() {
        let (node, controller) = chaos_local(ChaosConfig::quiet(7));
        node.try_submit(spec(0)).unwrap();
        controller.kill();
        // The next touch applies the kill: stream closed, submissions
        // refused — exactly what a crashed peer looks like.
        assert!(matches!(node.try_recv(), TryPop::Closed));
        assert!(matches!(node.try_submit(spec(1)), Err(NodeError::Closed)));
        assert!(node.recv().is_none());
        Box::new(node).shutdown();
    }

    #[test]
    fn drop_schedule_swallows_deterministically() {
        let config = ChaosConfig { drop_milli: 500, ..ChaosConfig::quiet(11) };
        let (node, controller) = chaos_local(config);
        for id in 0..20 {
            assert_eq!(node.try_submit(spec(id)).unwrap(), SubmitOutcome::Accepted);
        }
        let dropped = controller.dropped();
        assert!(dropped > 0, "a 50% drop rate over 20 submissions must swallow some");
        assert!(dropped < 20, "...but not all");
        // Deterministic: an identical schedule swallows the identical count.
        let (replay, replay_controller) = chaos_local(config);
        for id in 0..20 {
            replay.try_submit(spec(id)).unwrap();
        }
        assert_eq!(replay_controller.dropped(), dropped);
        Box::new(node).shutdown();
        Box::new(replay).shutdown();
    }

    #[test]
    fn disconnect_after_pulls_the_kill_switch() {
        let config = ChaosConfig { disconnect_after: Some(2), ..ChaosConfig::quiet(3) };
        let (node, controller) = chaos_local(config);
        assert!(node.try_submit(spec(0)).is_ok());
        assert!(node.try_submit(spec(1)).is_ok());
        assert!(matches!(node.try_submit(spec(2)), Err(NodeError::Closed)));
        assert!(controller.killed());
        Box::new(node).shutdown();
    }

    #[test]
    fn duplicated_events_surface_twice() {
        let config = ChaosConfig { duplicate_milli: 1000, ..ChaosConfig::quiet(5) };
        let (node, controller) = chaos_local(config);
        node.try_submit(spec(0)).unwrap();
        // Poll until the result lands, then once more for the copy.
        let first = loop {
            match node.try_recv() {
                TryPop::Item(event) => break event,
                TryPop::Empty => std::thread::yield_now(),
                TryPop::Closed => panic!("stream closed early"),
            }
        };
        let second = match node.try_recv() {
            TryPop::Item(event) => event,
            other => panic!("expected the duplicate, got {other:?}"),
        };
        assert_eq!(first, second, "the duplicate is bit-identical");
        assert_eq!(controller.duplicated(), 1);
        Box::new(node).shutdown();
    }
}
