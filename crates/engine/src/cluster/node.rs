//! "A place jobs run": the [`NodeHandle`] abstraction and its two impls.
//!
//! Everything above the engine — the transport server, the cluster
//! router, `engine_load` — used to talk to a concrete [`Engine`]. This
//! module lifts that dependency behind a trait so a single in-process
//! engine, a remote engine across the PR 4 frame protocol, and (later)
//! anything else that serves [`JobSpec`]s look identical to the tiers
//! above: single-node paths are just a 1-node cluster.
//!
//! * [`LocalNode`] wraps an [`Engine`] plus a private [`ResultRoute`],
//!   so a node's completion stream never interleaves with another
//!   tenant's. It either **owns** its engine ([`LocalNode::start`] — the
//!   router's usual case) or **attaches** to a shared one
//!   ([`LocalNode::attach`] — the transport server's per-connection
//!   session).
//! * [`RemoteNode`] wraps one TCP connection speaking the transport
//!   frame protocol: submissions are written frames, and a pump thread
//!   turns reply frames into [`NodeEvent`]s so `recv`/`try_recv` have
//!   the same non-blocking tri-state as the in-process queues.
//!
//! Backpressure is uniform but surfaces at the two places it physically
//! occurs: a local full queue is *synchronous* ([`SubmitOutcome::Busy`]
//! from `try_submit`), a remote full queue is *asynchronous* (a `BUSY`
//! frame arriving later as [`NodeEvent::Busy`]). Callers that handle
//! both — push the spec back on a retry queue — work unchanged against
//! either node kind; that is the router's BUSY-aware retry loop.

use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::DesignKey;
use crate::engine::{Engine, EngineConfig, EngineStats, ResultRoute, SubmitError};
use crate::job::{JobResult, JobSpec};
use crate::queue::{BoundedQueue, TryPop};
use crate::telemetry::{Metric, MetricsRegistry};
use crate::transport::frame::{read_frame_metered, Frame, FrameWriter, StatsReply};
use crate::transport::{connect_stream, WireTimeouts};

/// Something a node hands back on its completion stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeEvent {
    /// One completed job.
    Result(JobResult),
    /// The node's submission queue was full when job `id` arrived
    /// (remote backpressure — the wire's `BUSY` frame); resubmit later.
    Busy(u64),
    /// The node terminally refused job `id`: the spec passed local
    /// validation but the node's transport rejected it (e.g. its
    /// `max_dimension` cap is below the spec shape). Never retry; the
    /// router resolves the job without a result
    /// ([`crate::cluster::Router::rejected`]).
    Rejected(u64),
    /// The node is gone while it still owed replies: its connection
    /// dropped, broke framing, or stayed silent past the read deadline
    /// with submissions outstanding. Everything in flight there is lost;
    /// the router re-routes to the survivors.
    Down,
}

/// What can go wrong talking to a node.
#[derive(Debug)]
pub enum NodeError {
    /// The node is shutting down (or the connection is gone); the spec
    /// will never be served here.
    Closed,
    /// Socket-level failure on a remote node.
    Io(std::io::Error),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Closed => write!(f, "node closed"),
            NodeError::Io(e) => write!(f, "node i/o error: {e}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// Outcome of a non-blocking submission to a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job was accepted (locally queued, or handed to the wire — a
    /// remote node may still answer with [`NodeEvent::Busy`]).
    Accepted,
    /// Local backpressure: the submission queue is full *right now*;
    /// retry after draining an event.
    Busy,
}

/// A place jobs run. Object-safe; `Send + Sync` so one handle can be
/// shared between a submitting thread and a draining thread (the
/// transport server's reader/writer pair does exactly that).
pub trait NodeHandle: Send + Sync {
    /// Blocking submission: waits out local backpressure, errs once the
    /// node is gone. (A remote node cannot block on the peer's queue —
    /// its backpressure arrives later as [`NodeEvent::Busy`].)
    fn submit(&self, spec: JobSpec) -> Result<(), NodeError>;

    /// Non-blocking submission (see [`SubmitOutcome`]).
    fn try_submit(&self, spec: JobSpec) -> Result<SubmitOutcome, NodeError>;

    /// [`Self::try_submit`] carrying the monotonic instant the spec's
    /// SUBMIT frame was read off a socket, so a sampled job's trace can
    /// show wire ingress → admit. Nodes without a local trace clock
    /// ignore the stamp (the default).
    fn try_submit_stamped(
        &self,
        spec: JobSpec,
        _wire_rx: Option<Instant>,
    ) -> Result<SubmitOutcome, NodeError> {
        self.try_submit(spec)
    }

    /// Note that job `id`'s RESULT frame just left a server socket —
    /// the wire-tx counterpart of a trace already drained to the flight
    /// recorder, recorded as a causal event. Default no-op for node
    /// kinds with no recorder to write to.
    fn note_wire_tx(&self, _id: u64) {}

    /// Push buffered submissions toward the node. No-op for local nodes;
    /// remote nodes flush their socket writer. Call before waiting on
    /// events for jobs just submitted.
    fn flush(&self) -> Result<(), NodeError> {
        Ok(())
    }

    /// Install a waker fired after every event delivery to this
    /// session's completion stream (and at stream close), so an
    /// event-loop consumer can park in `poll(2)` and drain
    /// [`NodeHandle::try_recv`] only when woken. Default is a no-op for
    /// node kinds whose consumers block in [`NodeHandle::recv`] instead.
    fn register_waker(&self, _waker: crate::engine::RouteWaker) {}

    /// Blocking receive; `None` once the node's completion stream is
    /// closed **and** drained.
    fn recv(&self) -> Option<NodeEvent>;

    /// Non-blocking receive with the tri-state a fan-in loop needs:
    /// `Empty` (poll again later) vs `Closed` (this node is done).
    fn try_recv(&self) -> TryPop<NodeEvent>;

    /// Warm this node's design cache for `keys` ahead of traffic — the
    /// cluster's standby keep-warm path. Best-effort and administrative:
    /// a node that cannot warm simply pays the cold miss later. Default
    /// is a no-op for node kinds without a cache to warm.
    fn prewarm(&self, _keys: &[DesignKey]) -> Result<(), NodeError> {
        Ok(())
    }

    /// This node's serving telemetry: a local node reads its engine's
    /// stats directly, a remote node **scrapes** them over the wire
    /// (`STATS_REQUEST` → `STATS`, bounded wait). `None` means the stats
    /// are *unavailable right now* (scrape timeout, dead connection, or
    /// a session with nothing to observe) — callers must surface that
    /// distinctly, never treat it as zeros.
    fn stats(&self) -> Option<EngineStats>;

    /// Close the completion stream: wakes blocked `recv` callers,
    /// further events are dropped. Idempotent. Does not stop the
    /// underlying engine — that is [`NodeHandle::shutdown`]'s job.
    fn close(&self);

    /// Tear the node down. Returns final telemetry when this handle
    /// owned the serving resources (a [`LocalNode::start`] node shuts
    /// its engine down); `None` for attached sessions and remote nodes,
    /// whose engines outlive the handle.
    fn shutdown(self: Box<Self>) -> Option<EngineStats>;
}

/// An in-process node: an [`Engine`] behind a private [`ResultRoute`].
pub struct LocalNode {
    engine: Arc<Engine>,
    route: ResultRoute,
    /// Whether this handle started (and therefore shuts down) the engine.
    owned: bool,
}

impl LocalNode {
    /// Start a fresh engine owned by this node. The node's completion
    /// stream holds up to `config.results_capacity` buffered results.
    pub fn start(config: EngineConfig) -> Self {
        Self::start_prewarmed(config, &[])
    }

    /// [`Self::start`] with a design-cache warm-up from a key snapshot
    /// before the node accepts traffic (see
    /// [`Engine::start_prewarmed`]) — the restarted-node path.
    pub fn start_prewarmed(config: EngineConfig, prewarm: &[DesignKey]) -> Self {
        let engine = Arc::new(Engine::start_prewarmed(config, prewarm));
        let route = engine.open_route(config.results_capacity.max(1));
        Self { engine, route, owned: true }
    }

    /// [`Self::start`] with crash recovery from a durability directory
    /// and a live write-ahead log (see [`Engine::start_durable`]): the
    /// node replays its WAL, reloads spilled designs, and reaches full
    /// warmth before the route opens — a crashed cluster member rejoins
    /// with the cache it died with.
    pub fn start_durable(
        config: EngineConfig,
        durability: crate::durability::DurabilityConfig,
    ) -> std::io::Result<Self> {
        let engine = Arc::new(Engine::start_durable(config, durability)?);
        let route = engine.open_route(config.results_capacity.max(1));
        Ok(Self { engine, route, owned: true })
    }

    /// Attach a session to a shared engine: a private completion stream
    /// holding up to `route_capacity` results. Shutting the session down
    /// closes only the route — the engine belongs to its owner. This is
    /// the transport server's per-connection handle.
    pub fn attach(engine: Arc<Engine>, route_capacity: usize) -> Self {
        let route = engine.open_route(route_capacity.max(1));
        Self { engine, route, owned: false }
    }

    /// The wrapped engine (telemetry, extra routes).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }
}

impl NodeHandle for LocalNode {
    fn submit(&self, spec: JobSpec) -> Result<(), NodeError> {
        self.engine.submit_routed(spec, &self.route).map_err(|_| NodeError::Closed)
    }

    fn try_submit(&self, spec: JobSpec) -> Result<SubmitOutcome, NodeError> {
        self.try_submit_stamped(spec, None)
    }

    fn try_submit_stamped(
        &self,
        spec: JobSpec,
        wire_rx: Option<Instant>,
    ) -> Result<SubmitOutcome, NodeError> {
        match self.engine.try_submit_routed_stamped(spec, &self.route, wire_rx) {
            Ok(()) => Ok(SubmitOutcome::Accepted),
            Err(SubmitError::Backpressure(_)) => Ok(SubmitOutcome::Busy),
            Err(SubmitError::Closed(_)) => Err(NodeError::Closed),
        }
    }

    fn note_wire_tx(&self, id: u64) {
        self.engine.note_wire_tx(id);
    }

    fn register_waker(&self, waker: crate::engine::RouteWaker) {
        self.route.register_waker(waker);
    }

    fn recv(&self) -> Option<NodeEvent> {
        self.route.recv().map(NodeEvent::Result)
    }

    fn try_recv(&self) -> TryPop<NodeEvent> {
        match self.route.try_recv() {
            TryPop::Item(r) => TryPop::Item(NodeEvent::Result(r)),
            TryPop::Empty => TryPop::Empty,
            TryPop::Closed => TryPop::Closed,
        }
    }

    fn prewarm(&self, keys: &[DesignKey]) -> Result<(), NodeError> {
        self.engine.prewarm(keys);
        Ok(())
    }

    fn stats(&self) -> Option<EngineStats> {
        Some(self.engine.stats())
    }

    fn close(&self) {
        self.route.close();
    }

    fn shutdown(self: Box<Self>) -> Option<EngineStats> {
        self.route.close();
        if !self.owned {
            return None;
        }
        let engine = self.engine;
        // Attached routes (none for owned nodes) aside, this handle holds
        // the only Arc; a failure to unwrap means the caller leaked a
        // clone from `engine()` — let them shut it down instead.
        Arc::try_unwrap(engine).ok().map(Engine::shutdown)
    }
}

/// Rendezvous between a stats scrape (the requester, blocked in
/// [`NodeHandle::stats`]) and the reply pump, which reads the `STATS`
/// frame off the socket and deposits it here. Token-matched so a reply
/// that arrives after its scrape already timed out is discarded instead
/// of answering the *next* scrape with stale numbers.
#[derive(Debug, Default)]
struct ScrapeState {
    reply: Option<StatsReply>,
    /// Set when the pump exits: no reply will ever arrive again.
    closed: bool,
}

type ScrapeSlot = (Mutex<ScrapeState>, Condvar);

/// A node across the wire: one TCP connection to a transport server,
/// speaking the PR 4 frame protocol. Submissions are `SUBMIT` frames; a
/// pump thread reads reply frames into a bounded event queue so
/// `recv`/`try_recv` behave exactly like a local node's.
pub struct RemoteNode {
    stream: TcpStream,
    writer: Mutex<FrameWriter<BufWriter<TcpStream>>>,
    events: Arc<BoundedQueue<NodeEvent>>,
    /// Submissions written minus replies received: how many answers the
    /// peer still owes. Read-deadline silence is only fatal while this
    /// is nonzero — an idle connection may be silent forever.
    owed: Arc<AtomicU64>,
    pump: Mutex<Option<JoinHandle<()>>>,
    /// Wire accounting for this connection (bytes/frames both ways).
    metrics: Arc<MetricsRegistry>,
    /// Where the pump deposits `STATS` replies for a waiting scrape.
    scrape: Arc<ScrapeSlot>,
    /// Correlation tokens for scrapes, unique per request.
    scrape_token: AtomicU64,
}

impl RemoteNode {
    /// Buffered events the pump may hold before backpressuring the
    /// socket. Far above any router window, so the pump never stalls in
    /// practice; bounded so a runaway peer cannot grow memory.
    const EVENT_CAPACITY: usize = 1024;

    /// How long a stats scrape waits for the far side's `STATS` reply
    /// before reporting the node's stats unavailable.
    const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

    /// Connect to a transport server with the default [`WireTimeouts`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, WireTimeouts::default())
    }

    /// Connect with explicit deadlines. A read deadline turns a half-dead
    /// peer from an eternal hang into a typed [`NodeEvent::Down`]: when
    /// the socket stays silent past `timeouts.read` *while replies are
    /// owed*, the pump declares the node down and ends the stream.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeouts: WireTimeouts,
    ) -> std::io::Result<Self> {
        let stream = connect_stream(addr, timeouts.connect)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(timeouts.read)?;
        let write_half = stream.try_clone()?;
        let events = Arc::new(BoundedQueue::new(Self::EVENT_CAPACITY));
        let owed = Arc::new(AtomicU64::new(0));
        let metrics = Arc::new(MetricsRegistry::new());
        let scrape: Arc<ScrapeSlot> =
            Arc::new((Mutex::new(ScrapeState::default()), Condvar::new()));
        let pump_events = Arc::clone(&events);
        let pump_owed = Arc::clone(&owed);
        let pump_metrics = Arc::clone(&metrics);
        let pump_scrape = Arc::clone(&scrape);
        let pump = std::thread::Builder::new()
            .name("remote-node-pump".into())
            .spawn(move || {
                pump_replies(read_half, &pump_events, &pump_owed, &pump_metrics, &pump_scrape)
            })
            .expect("failed to spawn remote node pump");
        Ok(Self {
            stream,
            writer: Mutex::new(FrameWriter::with_metrics(
                BufWriter::new(write_half),
                Arc::clone(&metrics),
            )),
            events,
            owed,
            pump: Mutex::new(Some(pump)),
            metrics,
            scrape,
            scrape_token: AtomicU64::new(0),
        })
    }

    /// This connection's wire accounting (frame/byte counters both ways
    /// plus scrape outcomes).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }
}

impl Drop for RemoteNode {
    /// A handle dropped without [`NodeHandle::shutdown`] must not leak
    /// its pump thread (blocked in `read` on a cloned fd, the socket
    /// would stay open and the server would never see EOF): close the
    /// connection — which unblocks the pump — and join it. Idempotent
    /// with `shutdown`, which already took the pump handle.
    fn drop(&mut self) {
        self.close();
        if let Some(pump) = self.pump.lock().expect("pump handle poisoned").take() {
            pump.join().expect("remote node pump panicked");
        }
    }
}

/// Reader half: turn reply frames into events until the stream ends.
/// Every exit path closes the event queue — that is how `recv` callers
/// learn the node is gone. A terminal exit *while replies are owed*
/// pushes [`NodeEvent::Down`] first, so the router learns the difference
/// between a clean goodbye and a node that died holding its jobs.
fn pump_replies(
    stream: TcpStream,
    events: &BoundedQueue<NodeEvent>,
    owed: &AtomicU64,
    metrics: &MetricsRegistry,
    scrape: &ScrapeSlot,
) {
    let mut r = BufReader::new(stream);
    let mut scratch = Vec::new();
    loop {
        let event = match read_frame_metered(&mut r, &mut scratch, metrics) {
            Ok(Some(Frame::Result(result))) => NodeEvent::Result(result),
            Ok(Some(Frame::Busy(id))) => NodeEvent::Busy(id),
            Ok(Some(Frame::Reject(id))) => NodeEvent::Rejected(id),
            // A STATS reply answers a scrape, not a submission: hand it
            // to the waiting scraper without touching `owed` and without
            // occupying an event slot.
            Ok(Some(Frame::Stats(reply))) => {
                let (slot, cvar) = scrape;
                slot.lock().expect("scrape slot poisoned").reply = Some(reply);
                cvar.notify_all();
                continue;
            }
            // The read deadline expired. Idle silence is legal — keep
            // listening. Silence while replies are owed means the peer
            // is half-dead: declare it down.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if owed.load(Ordering::Acquire) == 0 {
                    continue;
                }
                let _ = events.push(NodeEvent::Down);
                break;
            }
            // Clean EOF: only a failure if the peer still owed replies.
            Ok(None) => {
                if owed.load(Ordering::Acquire) > 0 {
                    let _ = events.push(NodeEvent::Down);
                }
                break;
            }
            // A server never sends SUBMIT/PREWARM/STATS_REQUEST; torn
            // frames leave no resync point. Either way the conversation
            // is over — and abnormal, so it surfaces as Down.
            Ok(Some(Frame::Submit(_) | Frame::Prewarm(_) | Frame::StatsRequest(_))) | Err(_) => {
                let _ = events.push(NodeEvent::Down);
                break;
            }
        };
        // A reply settles one owed submission (guard against a buggy
        // peer answering more often than asked).
        let _ = owed.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1));
        if events.push(event).is_err() {
            break; // handle closed locally; stop pumping
        }
    }
    events.close();
    // Wake any scrape still waiting: its reply can never arrive now.
    let (slot, cvar) = scrape;
    slot.lock().expect("scrape slot poisoned").closed = true;
    cvar.notify_all();
}

impl NodeHandle for RemoteNode {
    fn submit(&self, spec: JobSpec) -> Result<(), NodeError> {
        // The wire cannot block on the peer's queue; "blocking" submit is
        // write + flush, and backpressure arrives as a BUSY event.
        self.try_submit(spec)?;
        self.flush()
    }

    fn try_submit(&self, spec: JobSpec) -> Result<SubmitOutcome, NodeError> {
        let mut writer = self.writer.lock().expect("remote writer poisoned");
        // Count the submission as owed before it can possibly be
        // answered; a failed write fails the node anyway.
        self.owed.fetch_add(1, Ordering::AcqRel);
        writer.send(&Frame::Submit(spec)).map_err(NodeError::Io)?;
        Ok(SubmitOutcome::Accepted)
    }

    fn prewarm(&self, keys: &[DesignKey]) -> Result<(), NodeError> {
        // Fire-and-forget PREWARM frames: never answered, so they do not
        // count as owed replies.
        let mut writer = self.writer.lock().expect("remote writer poisoned");
        for key in keys {
            writer.send(&Frame::Prewarm(*key)).map_err(NodeError::Io)?;
        }
        writer.flush().map_err(NodeError::Io)
    }

    fn flush(&self) -> Result<(), NodeError> {
        self.writer.lock().expect("remote writer poisoned").flush().map_err(NodeError::Io)
    }

    fn recv(&self) -> Option<NodeEvent> {
        // Anything buffered must reach the server before we wait on it.
        let _ = self.flush();
        self.events.pop()
    }

    fn try_recv(&self) -> TryPop<NodeEvent> {
        let _ = self.flush();
        self.events.try_pop()
    }

    /// Scrape the far side's engine stats over the wire: send a
    /// `STATS_REQUEST` and wait (bounded by [`Self::SCRAPE_TIMEOUT`])
    /// for the pump to deposit the token-matching `STATS` reply. `None`
    /// means the node's stats are *unavailable* — send failure, dead
    /// pump, or deadline expiry — and the caller must surface that
    /// rather than zero-merge.
    fn stats(&self) -> Option<EngineStats> {
        let token = self.scrape_token.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        {
            // Clear any stale reply from a scrape that timed out before
            // its answer landed.
            let (slot, _) = &*self.scrape;
            slot.lock().expect("scrape slot poisoned").reply = None;
        }
        {
            let mut writer = self.writer.lock().expect("remote writer poisoned");
            if writer.send(&Frame::StatsRequest(token)).is_err() || writer.flush().is_err() {
                return None;
            }
        }
        let (slot, cvar) = &*self.scrape;
        let mut state = slot.lock().expect("scrape slot poisoned");
        let deadline = Instant::now() + Self::SCRAPE_TIMEOUT;
        loop {
            if let Some(reply) = state.reply.take() {
                if reply.token == token {
                    self.metrics.inc(Metric::StatsScrapes);
                    return Some(reply.stats);
                }
                // Stale token: discard and keep waiting for ours.
            }
            if state.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                self.metrics.inc(Metric::StatsScrapeTimeouts);
                return None;
            }
            let (next, _) = cvar
                .wait_timeout(state, deadline.saturating_duration_since(now))
                .expect("scrape slot poisoned");
            state = next;
        }
    }

    fn close(&self) {
        self.events.close();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn shutdown(self: Box<Self>) -> Option<EngineStats> {
        self.close();
        if let Some(pump) = self.pump.lock().expect("pump handle poisoned").take() {
            pump.join().expect("remote node pump panicked");
        }
        None
    }
}

/// Mints per-connection [`NodeHandle`] sessions for the transport
/// server: each accepted connection gets its own completion stream, so
/// concurrent tenants only ever see their own events.
pub trait NodeFactory: Send + Sync {
    /// A fresh session whose completion stream buffers up to
    /// `route_capacity` events.
    fn open_session(&self, route_capacity: usize) -> Box<dyn NodeHandle>;
}

/// The canonical factory: sessions are private routes into one shared
/// engine — today's transport server, expressed through the trait.
impl NodeFactory for Arc<Engine> {
    fn open_session(&self, route_capacity: usize) -> Box<dyn NodeHandle> {
        Box::new(LocalNode::attach(Arc::clone(self), route_capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            n: 250,
            k: 5,
            m: 160,
            design: DesignSpec::random_regular(3),
            decoder: DecoderKind::Mn,
            seed: 500 + id,
            query_cost_micros: 0,
        }
    }

    #[test]
    fn local_node_round_trips_jobs_and_reports_stats() {
        let node = LocalNode::start(EngineConfig::with_workers(2));
        for id in 0..6 {
            node.submit(spec(id)).unwrap();
        }
        let mut got: Vec<u64> = (0..6)
            .map(|_| match node.recv().expect("result") {
                NodeEvent::Result(r) => r.id,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..6).collect::<Vec<u64>>());
        let stats = node.stats().expect("local nodes report stats");
        assert_eq!(stats.jobs_completed, 6);
        let final_stats = Box::new(node).shutdown().expect("owned node returns final stats");
        assert_eq!(final_stats.jobs_completed, 6);
    }

    #[test]
    fn local_backpressure_is_synchronous_busy() {
        let node = LocalNode::start(EngineConfig {
            workers: 1,
            queue_capacity: 1,
            results_capacity: 8,
            design_cache_capacity: 2,
            batch_window: 1,
        });
        // Slow job parks the worker; fill the 1-slot queue behind it.
        let mut slow = spec(0);
        slow.query_cost_micros = 50_000;
        node.submit(slow).unwrap();
        let mut accepted = 0u32;
        let mut busy = 0u32;
        for id in 1..16 {
            match node.try_submit(spec(id)).unwrap() {
                SubmitOutcome::Accepted => accepted += 1,
                SubmitOutcome::Busy => busy += 1,
            }
        }
        assert!(busy > 0, "a full local queue must surface synchronous Busy");
        // Everything accepted is eventually served.
        for _ in 0..=accepted {
            assert!(matches!(node.recv(), Some(NodeEvent::Result(_))));
        }
        Box::new(node).shutdown();
    }

    #[test]
    fn attached_sessions_do_not_own_the_engine() {
        let engine = Arc::new(Engine::start(EngineConfig::with_workers(1)));
        let session = LocalNode::attach(Arc::clone(&engine), 8);
        session.submit(spec(1)).unwrap();
        assert!(matches!(session.recv(), Some(NodeEvent::Result(_))));
        assert!(Box::new(session).shutdown().is_none(), "sessions must not shut the engine");
        // The engine survived the session.
        let engine = Arc::try_unwrap(engine).ok().expect("session released its Arc");
        let stats = engine.shutdown();
        assert_eq!(stats.jobs_completed, 1);
    }

    #[test]
    fn a_peer_dying_with_owed_replies_surfaces_down() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            use std::io::Read;
            let (mut conn, _) = listener.accept().unwrap();
            // Swallow one SUBMIT frame, then vanish without replying.
            let mut frame = [0u8; 76];
            let _ = conn.read_exact(&mut frame);
        });
        let node = RemoteNode::connect(addr).unwrap();
        node.submit(spec(0)).unwrap();
        assert_eq!(node.recv(), Some(NodeEvent::Down), "death with owed replies must be Down");
        assert!(node.recv().is_none(), "the stream is closed after Down");
        server.join().unwrap();
        Box::new(node).shutdown();
    }

    #[test]
    fn owed_reply_silence_past_the_read_deadline_is_down_but_idle_silence_is_not() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            // Accept, then hold the connection open in silence forever.
            let (_conn, _) = listener.accept().unwrap();
            let _ = hold_rx.recv();
        });
        let timeouts = WireTimeouts {
            connect: Some(std::time::Duration::from_secs(2)),
            read: Some(std::time::Duration::from_millis(40)),
        };
        let node = RemoteNode::connect_with(addr, timeouts).unwrap();
        // Idle well past the read deadline: the pump must keep waiting,
        // not declare an idle connection dead.
        std::thread::sleep(std::time::Duration::from_millis(120));
        assert_eq!(node.try_recv(), TryPop::Empty, "idle silence must not end the stream");
        // Now a submission goes unanswered past the deadline: Down.
        node.submit(spec(0)).unwrap();
        assert_eq!(node.recv(), Some(NodeEvent::Down));
        drop(hold_tx);
        server.join().unwrap();
        Box::new(node).shutdown();
    }

    #[test]
    fn close_ends_the_completion_stream() {
        let node = LocalNode::start(EngineConfig::with_workers(1));
        node.submit(spec(0)).unwrap();
        assert!(matches!(node.recv(), Some(NodeEvent::Result(_))));
        node.close();
        // The stream is terminally closed: nothing blocks, nothing
        // arrives, and the tri-state says so.
        assert_eq!(node.try_recv(), TryPop::Closed);
        assert!(node.recv().is_none());
        // The engine itself still runs: a submission after close is
        // accepted and served; its result is dropped (nobody listens),
        // never delivered to a resurrected stream.
        node.submit(spec(1)).unwrap();
        let stats = Box::new(node).shutdown().expect("owned node returns final stats");
        assert_eq!(stats.jobs_completed, 2, "the post-close job was still served");
    }
}
