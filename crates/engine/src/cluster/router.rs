//! The cluster router: N [`NodeHandle`]s behind one submission surface.
//!
//! A router owns a set of nodes and a [`Membership`] table. Every job
//! routes by its [`DesignKey`] — HRW hashing pins a key to one node, so
//! that node's design cache stays hot for its key slice while the
//! cluster as a whole serves the full working set. The router keeps a
//! bounded **in-flight window per node** (pipelining without unbounded
//! queue growth), absorbs backpressure from either direction — a local
//! node's synchronous [`SubmitOutcome::Busy`] or a remote node's
//! asynchronous [`NodeEvent::Busy`] frame — by parking the spec on that
//! node's retry queue, and fans results into one completion buffer.
//!
//! Determinism is inherited, not negotiated: a job's result is a pure
//! function of its spec on *any* node, so placement, windows, retries,
//! rebalances and failovers can only change timing, never fingerprints
//! — the invariant `tests/cluster_determinism.rs` and
//! `tests/cluster_failover.rs` pin across 1-node, N-node, N-TCP-node
//! and kill-a-node-mid-stream topologies.
//!
//! ## Rebalance (drain protocol)
//!
//! [`Router::add_node`] migrates the minimal key slice (an HRW
//! property: exactly the keys the new node wins) in three steps:
//!
//! 1. **Stop routing** migrating keys: queued-but-unsubmitted jobs on
//!    those keys leave their old node's queues.
//! 2. **Flush in-flight**: jobs on migrating keys already inside a node
//!    are served to completion there (results are placement-invariant,
//!    so finishing on the old owner is safe — draining is about cache
//!    residency and ordering, not correctness).
//! 3. **Re-route**: the membership table swaps and the parked jobs go
//!    to the new owner, whose cache now warms the migrated slice.
//!
//! [`Router::remove_node`] is the planned inverse: drain the departing
//! node's in-flight jobs to completion, then swap the table and
//! re-route its parked slice to the survivors.
//!
//! ## Failure domain (health-checked failover)
//!
//! Node death is a handled event, not a hang. Three triggers mark a
//! node failed: a transport error from submit/flush, a
//! [`NodeEvent::Down`] or closed completion stream with work
//! unresolved, and **probation** — a node holding in-flight jobs that
//! has produced no event for [`FailoverConfig::probation`] (catches
//! black-holed peers that accept writes but never answer). Failover
//! removes the node from the membership, reclaims every spec it held
//! (queued, retrying, or in flight), and re-routes them to the
//! survivors under bounded retry with deterministic per-job jitter.
//! A job that exhausts [`FailoverConfig::max_retries`] fails
//! *terminally per job* ([`Router::failed`]) — the fan-in never wedges.
//! Because results are spec-pure, a job served twice (submitted to a
//! dying node that answered anyway, then re-served by a survivor) is
//! harmless: the duplicate resolution is counted in
//! [`Router::stale_events`] and dropped.
//!
//! HRW **top-2 placement** makes failover cheap: every key's
//! runner-up node ([`Membership::standby`]) is exactly the owner the
//! table elects once the current owner leaves, so the router keeps
//! standbys warm ([`NodeHandle::prewarm`]) as keys first appear — the
//! failed-over slice lands on a cache that already holds its designs,
//! costing zero cold misses.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pooled_lab::split::LatencySplit;
use pooled_rng::splitmix::mix64;

use crate::cache::DesignKey;
use crate::cluster::membership::Membership;
use crate::cluster::node::{NodeEvent, NodeHandle, SubmitOutcome};
use crate::engine::EngineStats;
use crate::job::{JobResult, JobSpec};
use crate::queue::TryPop;
use crate::telemetry::{CausalKind, FlightRecorder, Metric, MetricsRegistry};

/// How long the router parks when a full pass makes no progress
/// (windows full, no events ready). Small enough to be invisible next
/// to a query-dominated job, large enough not to burn a core.
const IDLE_PARK: std::time::Duration = std::time::Duration::from_micros(50);

/// Failure-handling knobs for a [`Router`]. The defaults suit
/// production-shaped deployments; tests shrink the timers.
#[derive(Clone, Copy, Debug)]
pub struct FailoverConfig {
    /// How long a node may hold in-flight jobs without producing a
    /// single event before it is declared dead. This is the black-hole
    /// detector: transport errors and closed streams fail a node
    /// immediately, probation catches the peer that accepts writes and
    /// then goes silent.
    pub probation: Duration,
    /// Per-job cap on failover re-routes. A spec that has been
    /// reclaimed from this many dead nodes fails terminally
    /// ([`Router::failed`]) instead of cycling forever.
    pub max_retries: u32,
    /// Base delay before a reclaimed spec resubmits. Attempt `k` waits
    /// `base * 2^(k-1)` plus a deterministic per-job jitter in
    /// `[0, base)` — bounded exponential backoff that never
    /// synchronizes a thundering herd.
    pub retry_backoff: Duration,
    /// Keep each key's HRW standby warm via [`NodeHandle::prewarm`] as
    /// keys first appear, so failover costs zero cold design misses.
    pub warm_standbys: bool,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            probation: Duration::from_secs(2),
            max_retries: 3,
            retry_backoff: Duration::from_millis(2),
            warm_standbys: true,
        }
    }
}

/// One node and the router's bookkeeping for it.
struct Slot {
    id: u64,
    handle: Box<dyn NodeHandle>,
    /// Routed, not yet submitted (beyond the in-flight window).
    queue: VecDeque<JobSpec>,
    /// Parked specs awaiting resubmission (drained before `queue` once
    /// their ready instant passes): BUSY bounces resubmit immediately,
    /// failover re-routes after their backoff.
    retry: VecDeque<(JobSpec, Instant)>,
    /// Submitted, not yet resolved: `job id → (spec, submit instant)`.
    /// The spec is the retry payload; the instant feeds the
    /// router-observed side of the latency split.
    in_flight: HashMap<u64, (JobSpec, Instant)>,
    /// Last sign of life: the most recent accepted submission or
    /// received event. Probation measures silence from here.
    last_event: Instant,
}

impl Slot {
    fn new(id: u64, handle: Box<dyn NodeHandle>) -> Self {
        Self {
            id,
            handle,
            queue: VecDeque::new(),
            retry: VecDeque::new(),
            in_flight: HashMap::new(),
            last_event: Instant::now(),
        }
    }

    /// Jobs this slot still has to resolve.
    fn backlog(&self) -> usize {
        self.queue.len() + self.retry.len() + self.in_flight.len()
    }

    /// Every spec this slot holds, in job-id order (failover reclaim).
    fn reclaim(&mut self) -> Vec<JobSpec> {
        let mut specs: Vec<JobSpec> = self.queue.drain(..).collect();
        specs.extend(self.retry.drain(..).map(|(spec, _)| spec));
        specs.extend(self.in_flight.drain().map(|(_, (spec, _))| spec));
        // The in-flight map iterates in hash order; sort so failover
        // re-routes deterministically.
        specs.sort_unstable_by_key(|spec| spec.id);
        specs
    }
}

/// Aggregated cluster telemetry: per-node stats where observable (local
/// nodes report, remote nodes' stats live server-side) plus the merged
/// view over every reporting node — including nodes that already left
/// the cluster (failed over or removed), so totals stay complete.
#[derive(Debug)]
pub struct ClusterStats {
    /// `(node id, stats)` per node, in slot order (current members only).
    pub nodes: Vec<(u64, Option<EngineStats>)>,
    /// Every reporting node folded together ([`EngineStats::merge`]),
    /// departed nodes included.
    pub merged: EngineStats,
    /// BUSY responses absorbed (and retried) by the router so far.
    pub busy_retries: u64,
    /// Jobs that failed terminally under failover ([`Router::failed`]).
    pub jobs_failed: u64,
    /// Late, duplicate or post-failover events tolerated and dropped
    /// ([`Router::stale_events`]).
    pub stale_events: u64,
    /// Ids of nodes removed by failover, in failure order.
    pub failed_nodes: Vec<u64>,
    /// Ids of member nodes whose stats could **not** be observed for
    /// this snapshot (a remote scrape timed out or the connection is
    /// gone). Their contribution is missing from `merged` — explicitly
    /// marked here rather than silently zero-merged, so dashboards can
    /// tell "idle node" from "blind spot".
    pub stats_unavailable: Vec<u64>,
}

/// A router over N nodes. Single-owner (`&mut self` surface): one
/// submitting context drives it, which is what makes the fan-in
/// deterministic to reason about. See the module docs for the shape.
pub struct Router {
    slots: Vec<Slot>,
    membership: Membership,
    /// Per-node in-flight window (max unresolved submissions per node).
    window: usize,
    config: FailoverConfig,
    busy_retries: u64,
    /// Jobs routed but not yet fanned into `completed`.
    outstanding: usize,
    /// Fan-in buffer, completion order (FIFO — popped from the front).
    completed: VecDeque<JobResult>,
    /// Ids of jobs a node terminally rejected (see [`Router::rejected`]).
    rejected: Vec<u64>,
    /// Ids of jobs that failed terminally under failover (see
    /// [`Router::failed`]).
    failed: Vec<u64>,
    /// Per-job failover attempt counts (cleared on resolution).
    attempts: HashMap<u64, u32>,
    /// Late/duplicate events tolerated (see [`Router::stale_events`]).
    stale_events: u64,
    /// Nodes removed by failover, in failure order.
    failed_nodes: Vec<u64>,
    /// Keys whose standby has been prewarmed under the current
    /// membership (cleared whenever the table changes).
    warmed: HashSet<DesignKey>,
    /// Final stats of nodes that left the cluster (failover or
    /// `remove_node`), folded into every merged view.
    departed: EngineStats,
    /// Causal-record sink for failovers, removals, stale events and
    /// scrape blind spots (see [`Self::attach_recorder`]).
    recorder: Option<Arc<FlightRecorder>>,
    /// Counter sink for router-tier outcomes (see
    /// [`Self::attach_metrics`]).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl Router {
    /// A router over `nodes` (`(id, handle)` pairs) with a per-node
    /// in-flight window of `window` jobs and default failover handling.
    ///
    /// # Panics
    /// Panics if `nodes` is empty, ids repeat, or `window == 0`.
    pub fn new(nodes: Vec<(u64, Box<dyn NodeHandle>)>, window: usize) -> Self {
        Self::with_config(nodes, window, FailoverConfig::default())
    }

    /// [`Self::new`] with explicit [`FailoverConfig`] knobs.
    ///
    /// # Panics
    /// Panics if `nodes` is empty, ids repeat, or `window == 0`.
    pub fn with_config(
        nodes: Vec<(u64, Box<dyn NodeHandle>)>,
        window: usize,
        config: FailoverConfig,
    ) -> Self {
        assert!(window > 0, "the router needs an in-flight window of at least 1");
        let membership = Membership::new(nodes.iter().map(|(id, _)| *id).collect());
        let slots = nodes.into_iter().map(|(id, handle)| Slot::new(id, handle)).collect();
        Self {
            slots,
            membership,
            window,
            config,
            busy_retries: 0,
            outstanding: 0,
            completed: VecDeque::new(),
            rejected: Vec::new(),
            failed: Vec::new(),
            attempts: HashMap::new(),
            stale_events: 0,
            failed_nodes: Vec::new(),
            warmed: HashSet::new(),
            departed: EngineStats::zero(),
            recorder: None,
            metrics: None,
        }
    }

    /// Send the router's causal events — failovers, planned removals,
    /// stale events, scrape blind spots — to a [`FlightRecorder`]
    /// (typically the serving engine's, so job traces and cluster
    /// causality land in one dump).
    pub fn attach_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Count router-tier outcomes (today: [`Metric::JobsFailedOver`])
    /// in a [`MetricsRegistry`].
    pub fn attach_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = Some(metrics);
    }

    fn record_causal(&self, kind: CausalKind, node: u64, job: u64) {
        if let Some(rec) = &self.recorder {
            rec.record_causal(kind, node, job);
        }
    }

    /// The placement table.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Number of live nodes.
    pub fn nodes(&self) -> usize {
        self.slots.len()
    }

    /// BUSY responses absorbed (and retried) so far — both synchronous
    /// (local full queue) and wire (`BUSY` frames).
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Jobs accepted but not yet collectable.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Ids of jobs a node **terminally rejected** — a deployment
    /// mismatch, not a retryable state: the spec passed
    /// [`JobSpec::validate`] here but a remote node's transport refused
    /// it (e.g. its `TransportConfig::max_dimension` is below the spec
    /// shape). Rejected jobs produce no result; streaming callers
    /// should check this after [`Self::collect`] returns short.
    /// [`Self::run_batch`] panics instead — a batch is all-or-nothing.
    pub fn rejected(&self) -> &[u64] {
        &self.rejected
    }

    /// Ids of jobs that **failed terminally under failover**: their
    /// spec was reclaimed from more than [`FailoverConfig::max_retries`]
    /// dead nodes, or the last node died with them pending. Failed jobs
    /// produce no result; streaming callers should check this after
    /// [`Self::collect`] returns short. [`Self::run_batch`] panics
    /// instead — a batch is all-or-nothing.
    pub fn failed(&self) -> &[u64] {
        &self.failed
    }

    /// Events tolerated and dropped because no in-flight job matched:
    /// duplicated frames, and results that raced a failover decision (a
    /// slow node answered after its jobs were re-routed — harmless, the
    /// re-served result is bit-identical).
    pub fn stale_events(&self) -> u64 {
        self.stale_events
    }

    /// Ids of nodes removed by **failover** (not by
    /// [`Self::remove_node`]), in failure order.
    pub fn failed_nodes(&self) -> &[u64] {
        &self.failed_nodes
    }

    /// Route one job to its key's owner. Never blocks: beyond the
    /// node's window the job parks in the router's per-node queue. If
    /// every node has failed, the job fails terminally
    /// ([`Self::failed`]) instead of panicking.
    ///
    /// # Panics
    /// Panics if the spec is infeasible ([`JobSpec::validate`]).
    pub fn submit(&mut self, spec: JobSpec) {
        spec.validate();
        if self.slots.is_empty() {
            self.failed.push(spec.id);
            return;
        }
        let key = spec.design_key();
        self.warm_standby(&key);
        let idx = self.membership.owner_index(&key);
        self.slots[idx].queue.push_back(spec);
        self.outstanding += 1;
        // Start it moving if the window has room; completions are
        // drained by `collect`/`run_batch`.
        if fill_slot(&mut self.slots[idx], self.window, &mut self.busy_retries).is_err() {
            self.fail_over(idx);
        }
    }

    /// Non-blocking fan-in: one completed result, if any is buffered.
    pub fn poll(&mut self) -> Option<JobResult> {
        if self.completed.is_empty() {
            self.step(&mut None);
        }
        self.completed.pop_front()
    }

    /// Blocking fan-in: append up to `count` results to `out`, in
    /// completion order (callers wanting id order sort afterwards, as
    /// [`Self::run_batch`] does). Returns the number appended — short
    /// only when jobs were terminally rejected ([`Self::rejected`]) or
    /// failed under failover ([`Self::failed`]); every other job is
    /// waited for.
    ///
    /// # Panics
    /// Panics if fewer than `count` jobs are outstanding.
    pub fn collect(&mut self, count: usize, out: &mut Vec<JobResult>) -> usize {
        self.collect_impl(count, out, &mut None)
    }

    fn collect_impl(
        &mut self,
        count: usize,
        out: &mut Vec<JobResult>,
        split: &mut Option<&mut LatencySplit>,
    ) -> usize {
        assert!(
            count <= self.outstanding + self.completed.len(),
            "collect({count}) with only {} results coming",
            self.outstanding + self.completed.len()
        );
        let mut taken = 0usize;
        while taken < count {
            if !self.completed.is_empty() {
                let take = (count - taken).min(self.completed.len());
                out.extend(self.completed.drain(..take));
                taken += take;
                continue;
            }
            // Rejections and terminal failures shrink what's coming;
            // return short rather than wait for results that will never
            // arrive.
            if self.outstanding == 0 {
                break;
            }
            if !self.step(split) {
                std::thread::park_timeout(IDLE_PARK);
            }
        }
        taken
    }

    /// Serve a whole batch through the cluster: route every spec, fan
    /// the results back in, and append them to `out` **sorted by job
    /// id** — the same contract as `Engine::run_batch` and the
    /// transport client, so fingerprint comparisons line up
    /// element-wise across 1-node, N-node and remote topologies.
    ///
    /// # Panics
    /// Panics if jobs are already outstanding (batches are exclusive),
    /// a spec is infeasible, a node terminally rejects a job, or a job
    /// fails terminally under failover (a batch is a unit of work; the
    /// streaming API surfaces these per job instead).
    pub fn run_batch(&mut self, specs: &[JobSpec], out: &mut Vec<JobResult>) {
        self.run_batch_impl(specs, out, &mut None);
    }

    /// [`Self::run_batch`], additionally folding every job's latency
    /// into `split`: the engine-reported queue wait and service time,
    /// plus everything the engine cannot see from here — for a remote
    /// node the wire, for any node the time a result waits in the
    /// node's completion stream and the router's fan-in.
    pub fn run_batch_split(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        split: &mut LatencySplit,
    ) {
        self.run_batch_impl(specs, out, &mut Some(split));
    }

    fn run_batch_impl(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        split: &mut Option<&mut LatencySplit>,
    ) {
        assert!(
            self.outstanding == 0 && self.completed.is_empty(),
            "run_batch needs an idle router (a batch owns the fan-in while it runs)"
        );
        let start = out.len();
        let rejected_before = self.rejected.len();
        let failed_before = self.failed.len();
        for &spec in specs {
            self.submit(spec);
        }
        self.collect_impl(specs.len(), out, split);
        assert!(
            self.rejected.len() == rejected_before,
            "run_batch: node(s) terminally rejected jobs {:?} — a deployment mismatch (e.g. a \
             remote node's TransportConfig::max_dimension below the spec shape), not a retryable \
             state",
            &self.rejected[rejected_before..]
        );
        assert!(
            self.failed.len() == failed_before,
            "run_batch: jobs {:?} failed terminally under failover (retries exhausted or no \
             surviving nodes)",
            &self.failed[failed_before..]
        );
        out[start..].sort_unstable_by_key(|r| r.id);
    }

    /// One non-blocking pass over every node: top up in-flight windows,
    /// flush wires, drain events, check probation. Returns whether
    /// anything moved. At most one node fails over per pass (the next
    /// pass catches any other).
    fn step(&mut self, split: &mut Option<&mut LatencySplit>) -> bool {
        let mut progressed = self.fill_all();
        let mut down: Option<usize> = None;
        'slots: for idx in 0..self.slots.len() {
            loop {
                match self.slots[idx].handle.try_recv() {
                    TryPop::Item(event) => {
                        self.slots[idx].last_event = Instant::now();
                        match event {
                            NodeEvent::Result(result) => {
                                let Some((_, sent)) = self.slots[idx].in_flight.remove(&result.id)
                                else {
                                    // A duplicated frame, or a slow node
                                    // answering after failover re-routed
                                    // the job. The accepted resolution is
                                    // bit-identical; drop this one.
                                    self.stale_events += 1;
                                    self.record_causal(
                                        CausalKind::StaleEvent,
                                        self.slots[idx].id,
                                        result.id,
                                    );
                                    continue;
                                };
                                self.attempts.remove(&result.id);
                                if let Some(split) = split.as_deref_mut() {
                                    let observed = sent.elapsed().as_micros() as u64;
                                    split.record_observed(
                                        result.queue_micros,
                                        result.total_micros,
                                        observed,
                                    );
                                }
                                self.completed.push_back(result);
                                self.outstanding -= 1;
                                progressed = true;
                            }
                            NodeEvent::Busy(id) => {
                                let Some((spec, _)) = self.slots[idx].in_flight.remove(&id) else {
                                    self.stale_events += 1;
                                    self.record_causal(
                                        CausalKind::StaleEvent,
                                        self.slots[idx].id,
                                        id,
                                    );
                                    continue;
                                };
                                self.busy_retries += 1;
                                self.slots[idx].retry.push_back((spec, Instant::now()));
                                progressed = true;
                            }
                            NodeEvent::Rejected(id) => {
                                // Terminal, not retryable: the job passed
                                // local validation but the node's transport
                                // refused it (a config mismatch like
                                // max_dimension). Resolve the job without a
                                // result; the caller sees it in
                                // `rejected()` (or run_batch's panic).
                                if self.slots[idx].in_flight.remove(&id).is_none() {
                                    self.stale_events += 1;
                                    self.record_causal(
                                        CausalKind::StaleEvent,
                                        self.slots[idx].id,
                                        id,
                                    );
                                    continue;
                                }
                                self.attempts.remove(&id);
                                self.rejected.push(id);
                                self.outstanding -= 1;
                                progressed = true;
                            }
                            NodeEvent::Down => {
                                down = Some(idx);
                                break 'slots;
                            }
                        }
                    }
                    TryPop::Empty => break,
                    TryPop::Closed => {
                        if self.slots[idx].backlog() > 0 {
                            // The completion stream died under unresolved
                            // work — the node is gone.
                            down = Some(idx);
                            break 'slots;
                        }
                        break;
                    }
                }
            }
        }
        if down.is_none() {
            down = self.probation_expired();
        }
        if let Some(idx) = down {
            self.fail_over(idx);
            return true;
        }
        progressed
    }

    /// Top up every slot's window; a slot whose transport errors fails
    /// over in place. Returns whether anything was submitted.
    fn fill_all(&mut self) -> bool {
        let mut progressed = false;
        let mut idx = 0;
        while idx < self.slots.len() {
            match fill_slot(&mut self.slots[idx], self.window, &mut self.busy_retries) {
                Ok(moved) => {
                    progressed |= moved;
                    idx += 1;
                }
                Err(()) => {
                    // `fail_over` removes the slot; re-check this index.
                    self.fail_over(idx);
                    progressed = true;
                }
            }
        }
        progressed
    }

    /// The first slot holding in-flight work that has been silent past
    /// probation, if any.
    fn probation_expired(&self) -> Option<usize> {
        self.slots.iter().position(|slot| {
            !slot.in_flight.is_empty() && slot.last_event.elapsed() > self.config.probation
        })
    }

    /// Remove slot `idx` as **failed**: reclaim every spec it held and
    /// re-route to the survivors under bounded retry, or fail the jobs
    /// terminally when retries are exhausted (or no survivors remain).
    fn fail_over(&mut self, idx: usize) {
        // `remove` (not `swap_remove`): slot order must stay aligned
        // with the membership table's node order.
        let mut slot = self.slots.remove(idx);
        let node_id = slot.id;
        self.failed_nodes.push(node_id);
        let reclaimed = slot.reclaim();
        self.record_causal(CausalKind::Failover, node_id, 0);
        if let Some(metrics) = &self.metrics {
            metrics.add(Metric::JobsFailedOver, reclaimed.len() as u64);
        }
        // Sever the node and bank whatever telemetry it can still
        // report, so merged totals stay complete.
        slot.handle.close();
        let Slot { handle, .. } = slot;
        if let Some(stats) = handle.shutdown() {
            self.departed.merge(&stats);
        }
        // Standby assignments shift with the table.
        self.warmed.clear();
        if self.slots.is_empty() {
            // No survivors: every reclaimed job fails terminally. The
            // fan-in unblocks (outstanding hits zero) instead of
            // wedging forever.
            for spec in reclaimed {
                self.attempts.remove(&spec.id);
                self.failed.push(spec.id);
                self.outstanding -= 1;
            }
            return;
        }
        self.membership = self.membership.without_node(node_id);
        let now = Instant::now();
        for spec in reclaimed {
            let attempt = {
                let count = self.attempts.entry(spec.id).or_insert(0);
                *count += 1;
                *count
            };
            if attempt > self.config.max_retries {
                self.attempts.remove(&spec.id);
                self.failed.push(spec.id);
                self.outstanding -= 1;
                continue;
            }
            let key = spec.design_key();
            self.warm_standby(&key);
            let target = self.membership.owner_index(&key);
            let ready = now + retry_delay(self.config.retry_backoff, attempt, spec.id);
            self.slots[target].retry.push_back((spec, ready));
        }
        let _ = self.fill_all();
    }

    /// Prewarm `key`'s standby once per membership epoch, so a failover
    /// of its owner lands on a cache that already holds the design.
    fn warm_standby(&mut self, key: &DesignKey) {
        if !self.config.warm_standbys || self.slots.len() < 2 || !self.warmed.insert(*key) {
            return;
        }
        if let Some(idx) = self.membership.standby_index(key) {
            // Best-effort: a standby that cannot warm pays the cold
            // miss later (and a dead one is failover's problem).
            let _ = self.slots[idx].handle.prewarm(std::slice::from_ref(key));
        }
    }

    /// Add a node, rebalancing with the drain protocol (module docs):
    /// routing stops for the migrating key slice, in-flight jobs on
    /// those keys flush to completion on their old owner, then the
    /// membership swaps and the parked jobs go to the new node.
    /// Safe mid-stream: outstanding jobs elsewhere keep flowing the
    /// whole time, and results remain bit-identical — placement is
    /// fingerprint-invisible.
    ///
    /// # Panics
    /// Panics if `id` is already a member.
    pub fn add_node(&mut self, id: u64, handle: Box<dyn NodeHandle>) {
        let next = self.membership.with_node(id);
        // 1. Stop routing the migrating slice (keys the new node wins).
        let mut parked = extract_migrating(&mut self.slots, &next, id);
        // 2. Flush in-flight migrating jobs on their old owners. A BUSY
        //    bounce during the drain lands the spec back in a retry
        //    queue, so keep extracting while we wait.
        loop {
            let draining = self.slots.iter().any(|slot| {
                slot.in_flight.values().any(|(spec, _)| next.owner(&spec.design_key()) == id)
            });
            if !draining {
                break;
            }
            if !self.step(&mut None) {
                std::thread::park_timeout(IDLE_PARK);
            }
            parked.extend(extract_migrating(&mut self.slots, &next, id));
        }
        // 3. Swap the table, install the node, re-route the slice.
        // (Recompute the table rather than reusing `next`: a failover
        // during the drain may have shrunk the membership.)
        self.membership = self.membership.with_node(id);
        self.warmed.clear();
        self.slots.push(Slot::new(id, handle));
        for spec in parked {
            let idx = self.membership.owner_index(&spec.design_key());
            self.slots[idx].queue.push_back(spec);
        }
        let _ = self.fill_all();
    }

    /// Remove node `id` **gracefully** — the planned inverse of
    /// [`Self::add_node`]: stop routing to it, let its in-flight jobs
    /// flush to completion there (results are placement-invariant),
    /// then swap the table, re-route its parked slice to the survivors
    /// and shut the node down. Returns the node's final stats when the
    /// handle owned its engine (these are also folded into the router's
    /// merged telemetry), or `None` for remote/attached nodes — or if
    /// the node died mid-drain, in which case failover already
    /// re-routed its in-flight work.
    ///
    /// # Panics
    /// Panics if `id` is not a member or is the last node (drain the
    /// router and call [`Self::shutdown`] instead).
    pub fn remove_node(&mut self, id: u64) -> Option<EngineStats> {
        assert!(self.slots.iter().any(|slot| slot.id == id), "remove_node({id}): not a member");
        assert!(self.slots.len() > 1, "cannot remove the last node — use shutdown instead");
        // 1. Stop routing to the departing node; park its queued work.
        // 2. Flush its in-flight jobs to completion where they are.
        let mut parked: Vec<JobSpec> = Vec::new();
        loop {
            let Some(idx) = self.slots.iter().position(|slot| slot.id == id) else {
                // The node died mid-drain: failover reclaimed and
                // re-routed its in-flight work. Re-route what we parked
                // ourselves and report no stats.
                self.reroute(parked);
                return None;
            };
            let slot = &mut self.slots[idx];
            parked.extend(slot.queue.drain(..));
            parked.extend(slot.retry.drain(..).map(|(spec, _)| spec));
            if slot.in_flight.is_empty() {
                break;
            }
            if !self.step(&mut None) {
                std::thread::park_timeout(IDLE_PARK);
            }
        }
        // 3. Swap the table, drop the node, re-route the parked slice.
        let idx = self.slots.iter().position(|slot| slot.id == id).expect("drained in place");
        self.membership = self.membership.without_node(id);
        self.warmed.clear();
        self.record_causal(CausalKind::NodeRemoved, id, 0);
        let Slot { handle, .. } = self.slots.remove(idx);
        let stats = handle.shutdown();
        if let Some(stats) = &stats {
            self.departed.merge(stats);
        }
        self.reroute(parked);
        stats
    }

    /// Queue `specs` on their current owners (warming standbys) and
    /// start them moving. Outstanding counts are unchanged — these are
    /// jobs the router already accepted.
    fn reroute(&mut self, mut specs: Vec<JobSpec>) {
        specs.sort_unstable_by_key(|spec| spec.id);
        for spec in specs {
            if self.slots.is_empty() {
                self.attempts.remove(&spec.id);
                self.failed.push(spec.id);
                self.outstanding -= 1;
                continue;
            }
            let key = spec.design_key();
            self.warm_standby(&key);
            let idx = self.membership.owner_index(&key);
            self.slots[idx].queue.push_back(spec);
        }
        let _ = self.fill_all();
    }

    /// Live aggregate telemetry (see [`ClusterStats`]). Remote nodes
    /// are scraped over the wire here (`STATS_REQUEST`/`STATS`, bounded
    /// wait); a node whose scrape fails lands in
    /// [`ClusterStats::stats_unavailable`] instead of zero-diluting the
    /// merged view.
    pub fn stats(&self) -> ClusterStats {
        let nodes: Vec<(u64, Option<EngineStats>)> =
            self.slots.iter().map(|s| (s.id, s.handle.stats())).collect();
        let mut merged = self.departed;
        let mut stats_unavailable = Vec::new();
        for (id, stats) in nodes.iter() {
            match stats {
                Some(stats) => merged.merge(stats),
                None => {
                    stats_unavailable.push(*id);
                    self.record_causal(CausalKind::StatsUnavailable, *id, 0);
                }
            }
        }
        ClusterStats {
            nodes,
            merged,
            busy_retries: self.busy_retries,
            jobs_failed: self.failed.len() as u64,
            stale_events: self.stale_events,
            failed_nodes: self.failed_nodes.clone(),
            stats_unavailable,
        }
    }

    /// Shut every node down and return final telemetry (owned nodes
    /// report their engines' final stats; attached/remote nodes report
    /// `None` — their engines outlive the router). Nodes that already
    /// left (failover, [`Self::remove_node`]) stay folded into
    /// `merged`.
    ///
    /// # Panics
    /// Panics if jobs are still outstanding (collect them first).
    pub fn shutdown(mut self) -> ClusterStats {
        assert!(self.outstanding == 0, "shutdown with {} jobs outstanding", self.outstanding);
        let busy_retries = self.busy_retries;
        let mut nodes = Vec::new();
        let mut merged = self.departed;
        let mut stats_unavailable = Vec::new();
        for slot in self.slots.drain(..) {
            let stats = slot.handle.shutdown();
            match &stats {
                Some(stats) => merged.merge(stats),
                // At shutdown `None` means the node's engine outlives
                // this handle (attached/remote) — its final stats are
                // its owner's to report, so it is "unavailable from
                // here" in the same sense as a failed live scrape.
                None => stats_unavailable.push(slot.id),
            }
            nodes.push((slot.id, stats));
        }
        ClusterStats {
            nodes,
            merged,
            busy_retries,
            jobs_failed: self.failed.len() as u64,
            stale_events: self.stale_events,
            failed_nodes: self.failed_nodes.clone(),
            stats_unavailable,
        }
    }
}

/// Top up one node's in-flight window from its retry/queue backlog
/// (retries whose ready instant has passed take priority). Returns
/// whether anything was submitted, or `Err(())` when the node's
/// transport failed — the caller must fail the node over (the
/// unsubmitted spec is back at the front of its retry queue, so the
/// reclaim loses nothing). A synchronous `Busy` parks the spec on the
/// retry queue and stops filling (the queue is full; a completion must
/// free a slot first).
fn fill_slot(slot: &mut Slot, window: usize, busy_retries: &mut u64) -> Result<bool, ()> {
    let mut progressed = false;
    while slot.in_flight.len() < window {
        let now = Instant::now();
        let spec = if slot.retry.front().is_some_and(|(_, ready)| *ready <= now) {
            slot.retry.pop_front().map(|(spec, _)| spec)
        } else {
            slot.queue.pop_front()
        };
        let Some(spec) = spec else { break };
        match slot.handle.try_submit(spec) {
            Ok(SubmitOutcome::Accepted) => {
                slot.last_event = now;
                slot.in_flight.insert(spec.id, (spec, now));
                progressed = true;
            }
            Ok(SubmitOutcome::Busy) => {
                *busy_retries += 1;
                slot.retry.push_back((spec, now));
                break;
            }
            Err(_) => {
                slot.retry.push_front((spec, now));
                return Err(());
            }
        }
    }
    if progressed && slot.handle.flush().is_err() {
        return Err(());
    }
    Ok(progressed)
}

/// Deterministic bounded backoff for failover attempt `attempt` of job
/// `id`: `base * 2^min(attempt-1, 6)` plus a per-job jitter in
/// `[0, base)` derived from the job id — reproducible, and never
/// synchronized across jobs.
fn retry_delay(base: Duration, attempt: u32, id: u64) -> Duration {
    let backoff = base * (1u32 << (attempt - 1).min(6));
    let base_micros = (base.as_micros() as u64).max(1);
    let jitter = mix64(id ^ (u64::from(attempt) << 32)) % base_micros;
    backoff + Duration::from_micros(jitter)
}

/// Pull every queued-but-unsubmitted job whose key migrates to `new_id`
/// under `next` out of the slots (step 1 of the drain protocol).
fn extract_migrating(slots: &mut [Slot], next: &Membership, new_id: u64) -> Vec<JobSpec> {
    let mut parked = Vec::new();
    for slot in slots {
        let mut keep = VecDeque::with_capacity(slot.queue.len());
        while let Some(spec) = slot.queue.pop_front() {
            if next.owner(&spec.design_key()) == new_id {
                parked.push(spec);
            } else {
                keep.push_back(spec);
            }
        }
        slot.queue = keep;
        let mut keep = VecDeque::with_capacity(slot.retry.len());
        while let Some((spec, ready)) = slot.retry.pop_front() {
            if next.owner(&spec.design_key()) == new_id {
                parked.push(spec);
            } else {
                keep.push_back((spec, ready));
            }
        }
        slot.retry = keep;
    }
    parked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::node::LocalNode;
    use crate::engine::EngineConfig;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            n: 250,
            k: 5,
            m: 160,
            // Spread ids over distinct designs so keys shard over nodes.
            design: DesignSpec::random_regular(id % 5),
            decoder: DecoderKind::Mn,
            seed: 900 + id,
            query_cost_micros: 0,
        }
    }

    fn local_cluster(nodes: usize, workers: usize) -> Router {
        let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..nodes as u64)
            .map(|id| {
                let config = EngineConfig {
                    workers,
                    queue_capacity: 8,
                    results_capacity: 8,
                    design_cache_capacity: 8,
                    batch_window: 1,
                };
                (id, Box::new(LocalNode::start(config)) as Box<dyn NodeHandle>)
            })
            .collect();
        Router::new(handles, 4)
    }

    #[test]
    fn batch_results_are_complete_and_id_sorted() {
        let mut router = local_cluster(3, 2);
        let specs: Vec<JobSpec> = (0..30).map(spec).collect();
        let mut out = Vec::new();
        router.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 30);
        assert!(out.windows(2).all(|w| w[0].id < w[1].id));
        let stats = router.shutdown();
        assert_eq!(stats.merged.jobs_completed, 30);
        assert_eq!(stats.nodes.len(), 3);
        assert_eq!(stats.jobs_failed, 0);
        assert!(stats.failed_nodes.is_empty());
    }

    #[test]
    fn placement_follows_the_membership_table() {
        let mut router = local_cluster(3, 1);
        let specs: Vec<JobSpec> = (0..20).map(spec).collect();
        let mut out = Vec::new();
        router.run_batch(&specs, &mut out);
        // Every node served exactly the jobs whose keys it owns.
        let membership = router.membership().clone();
        let want: Vec<u64> = specs.iter().map(|s| membership.owner(&s.design_key())).collect();
        let stats = router.shutdown();
        for (idx, (id, node_stats)) in stats.nodes.iter().enumerate() {
            let expected = want.iter().filter(|&&o| o == *id).count() as u64;
            assert_eq!(
                node_stats.as_ref().expect("local stats").jobs_completed,
                expected,
                "node {idx} served the wrong slice"
            );
        }
    }

    #[test]
    fn cluster_fingerprints_match_a_single_node() {
        let specs: Vec<JobSpec> = (0..24).map(spec).collect();
        let mut single = local_cluster(1, 1);
        let mut want = Vec::new();
        single.run_batch(&specs, &mut want);
        single.shutdown();
        let mut cluster = local_cluster(3, 2);
        let mut got = Vec::new();
        cluster.run_batch(&specs, &mut got);
        cluster.shutdown();
        let project =
            |rs: &[JobResult]| rs.iter().map(|r| (r.id, r.fingerprint())).collect::<Vec<_>>();
        assert_eq!(project(&want), project(&got), "sharding changed results");
    }

    #[test]
    fn tiny_node_queues_backpressure_without_deadlock() {
        // Per-node queue capacity 1 against a window of 4 forces the
        // synchronous Busy path constantly; everything must still serve.
        let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..2u64)
            .map(|id| {
                let config = EngineConfig {
                    workers: 1,
                    queue_capacity: 1,
                    results_capacity: 1,
                    design_cache_capacity: 4,
                    batch_window: 1,
                };
                (id, Box::new(LocalNode::start(config)) as Box<dyn NodeHandle>)
            })
            .collect();
        let mut router = Router::new(handles, 4);
        let specs: Vec<JobSpec> = (0..25).map(spec).collect();
        let mut out = Vec::new();
        router.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 25);
        assert!(router.busy_retries() > 0, "tiny queues must exercise the retry path");
        router.shutdown();
    }

    #[test]
    fn mid_stream_rebalance_preserves_results_and_moves_the_minimal_slice() {
        let specs: Vec<JobSpec> = (0..36).map(spec).collect();
        // Ground truth from a static 1-node cluster.
        let mut single = local_cluster(1, 1);
        let mut want = Vec::new();
        single.run_batch(&specs, &mut want);
        single.shutdown();

        // Stream half, rebalance, stream the rest.
        let mut router = local_cluster(2, 1);
        let before = router.membership().clone();
        for &s in &specs[..18] {
            router.submit(s);
        }
        let new_node = Box::new(LocalNode::start(EngineConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            design_cache_capacity: 8,
            batch_window: 1,
        }));
        router.add_node(7, new_node);
        let after = router.membership().clone();
        for &s in &specs[18..] {
            router.submit(s);
        }
        let mut got = Vec::new();
        router.collect(36, &mut got);
        got.sort_unstable_by_key(|r| r.id);
        let project =
            |rs: &[JobResult]| rs.iter().map(|r| (r.id, r.fingerprint())).collect::<Vec<_>>();
        assert_eq!(project(&want), project(&got), "rebalance changed results");
        // HRW minimal migration at the membership level: every key that
        // changed owner moved to the new node.
        for s in &specs {
            let key = s.design_key();
            if before.owner(&key) != after.owner(&key) {
                assert_eq!(after.owner(&key), 7);
            }
        }
        router.shutdown();
    }

    #[test]
    fn mid_stream_remove_node_preserves_results() {
        let specs: Vec<JobSpec> = (0..36).map(spec).collect();
        let mut single = local_cluster(1, 1);
        let mut want = Vec::new();
        single.run_batch(&specs, &mut want);
        single.shutdown();

        // Stream half through 3 nodes, drain one out, stream the rest.
        let mut router = local_cluster(3, 1);
        for &s in &specs[..18] {
            router.submit(s);
        }
        let stats = router.remove_node(1).expect("owned local node reports stats");
        assert_eq!(router.nodes(), 2);
        assert!(
            !router.membership().node_ids().contains(&1),
            "the membership must drop the removed node"
        );
        for &s in &specs[18..] {
            router.submit(s);
        }
        let mut got = Vec::new();
        router.collect(36, &mut got);
        got.sort_unstable_by_key(|r| r.id);
        let project =
            |rs: &[JobResult]| rs.iter().map(|r| (r.id, r.fingerprint())).collect::<Vec<_>>();
        assert_eq!(project(&want), project(&got), "remove_node changed results");
        // The departed node's work is not lost from the merged view.
        let final_stats = router.shutdown();
        assert_eq!(
            final_stats.merged.jobs_completed, 36,
            "merged stats must include the removed node's {} jobs",
            stats.jobs_completed
        );
        assert!(final_stats.failed_nodes.is_empty(), "a planned drain is not a failure");
    }

    #[test]
    #[should_panic(expected = "idle router")]
    fn run_batch_requires_an_idle_router() {
        let mut router = local_cluster(1, 1);
        router.submit(spec(0));
        let mut out = Vec::new();
        router.run_batch(&[spec(1)], &mut out);
    }

    #[test]
    fn retry_delays_grow_and_stay_bounded() {
        let base = Duration::from_millis(2);
        let d1 = retry_delay(base, 1, 42);
        let d2 = retry_delay(base, 2, 42);
        let d9 = retry_delay(base, 9, 42);
        assert!(d1 >= base && d1 < base * 2, "attempt 1 is base + jitter: {d1:?}");
        assert!(d2 >= base * 2 && d2 < base * 3, "attempt 2 doubles: {d2:?}");
        assert!(d9 < base * 65, "the backoff exponent is capped: {d9:?}");
        // Jitter is deterministic per (id, attempt) and varies by id.
        assert_eq!(retry_delay(base, 1, 42), d1);
        assert_ne!(retry_delay(base, 1, 42), retry_delay(base, 1, 43));
    }

    #[test]
    fn remote_rejects_resolve_as_rejected_ids_not_router_panics() {
        // Regression: a spec can pass JobSpec::validate here yet exceed
        // a remote node's TransportConfig::max_dimension — a deployment
        // mismatch the router must surface per job, not crash on. The
        // streaming API returns short and names the id; every
        // non-rejected job is still served.
        use crate::cluster::node::RemoteNode;
        use crate::engine::Engine;
        use crate::transport::{TransportConfig, TransportServer};
        use std::sync::Arc;

        let engine = Arc::new(Engine::start(EngineConfig::with_workers(1)));
        let server = TransportServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            TransportConfig {
                route_capacity: 8,
                max_dimension: 1 << 10,
                ..TransportConfig::default()
            },
        )
        .expect("bind loopback");
        let remote = RemoteNode::connect(server.local_addr()).expect("connect");
        let mut router = Router::new(vec![(0, Box::new(remote) as Box<dyn NodeHandle>)], 4);

        let good = spec(1); // n = 250 < 1024: within the node's cap
        let mut huge = spec(2);
        huge.n = 1 << 12; // feasible, but beyond the node's max_dimension
        huge.m = 64;
        assert!(huge.is_feasible());
        router.submit(good);
        router.submit(huge);
        let mut out = Vec::new();
        let taken = router.collect(2, &mut out);
        assert_eq!(taken, 1, "collect returns short on a rejection");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, good.id, "the good job was still served");
        assert_eq!(router.rejected(), &[huge.id]);
        assert_eq!(router.outstanding(), 0);

        router.shutdown();
        server.stop();
        Arc::try_unwrap(engine).ok().expect("transport released the engine").shutdown();
    }
}
