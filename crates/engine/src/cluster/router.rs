//! The cluster router: N [`NodeHandle`]s behind one submission surface.
//!
//! A router owns a set of nodes and a [`Membership`] table. Every job
//! routes by its [`DesignKey`] — HRW hashing pins a key to one node, so
//! that node's design cache stays hot for its key slice while the
//! cluster as a whole serves the full working set. The router keeps a
//! bounded **in-flight window per node** (pipelining without unbounded
//! queue growth), absorbs backpressure from either direction — a local
//! node's synchronous [`SubmitOutcome::Busy`] or a remote node's
//! asynchronous [`NodeEvent::Busy`] frame — by parking the spec on that
//! node's retry queue, and fans results into one completion buffer.
//!
//! Determinism is inherited, not negotiated: a job's result is a pure
//! function of its spec on *any* node, so placement, windows, retries
//! and rebalances can only change timing, never fingerprints — the
//! invariant `tests/cluster_determinism.rs` pins across 1-node, N-node
//! and N-TCP-node topologies.
//!
//! ## Rebalance (drain protocol)
//!
//! [`Router::add_node`] migrates the minimal key slice (an HRW
//! property: exactly the keys the new node wins) in three steps:
//!
//! 1. **Stop routing** migrating keys: queued-but-unsubmitted jobs on
//!    those keys leave their old node's queues.
//! 2. **Flush in-flight**: jobs on migrating keys already inside a node
//!    are served to completion there (results are placement-invariant,
//!    so finishing on the old owner is safe — draining is about cache
//!    residency and ordering, not correctness).
//! 3. **Re-route**: the membership table swaps and the parked jobs go
//!    to the new owner, whose cache now warms the migrated slice.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use pooled_lab::split::LatencySplit;

use crate::cluster::membership::Membership;
use crate::cluster::node::{NodeEvent, NodeHandle, SubmitOutcome};
use crate::engine::EngineStats;
use crate::job::{JobResult, JobSpec};
use crate::queue::TryPop;

/// How long the router parks when a full pass makes no progress
/// (windows full, no events ready). Small enough to be invisible next
/// to a query-dominated job, large enough not to burn a core.
const IDLE_PARK: std::time::Duration = std::time::Duration::from_micros(50);

/// One node and the router's bookkeeping for it.
struct Slot {
    id: u64,
    handle: Box<dyn NodeHandle>,
    /// Routed, not yet submitted (beyond the in-flight window).
    queue: VecDeque<JobSpec>,
    /// BUSY'd specs awaiting resubmission (drained before `queue`).
    retry: VecDeque<JobSpec>,
    /// Submitted, not yet resolved: `job id → (spec, submit instant)`.
    /// The spec is the retry payload; the instant feeds the
    /// router-observed side of the latency split.
    in_flight: HashMap<u64, (JobSpec, Instant)>,
}

impl Slot {
    fn new(id: u64, handle: Box<dyn NodeHandle>) -> Self {
        Self {
            id,
            handle,
            queue: VecDeque::new(),
            retry: VecDeque::new(),
            in_flight: HashMap::new(),
        }
    }

    /// Jobs this slot still has to resolve.
    fn backlog(&self) -> usize {
        self.queue.len() + self.retry.len() + self.in_flight.len()
    }
}

/// Aggregated cluster telemetry: per-node stats where observable (local
/// nodes report, remote nodes' stats live server-side) plus the merged
/// view over every reporting node.
#[derive(Debug)]
pub struct ClusterStats {
    /// `(node id, stats)` per node, in slot order.
    pub nodes: Vec<(u64, Option<EngineStats>)>,
    /// Every reporting node folded together ([`EngineStats::merge`]).
    pub merged: EngineStats,
    /// BUSY responses absorbed (and retried) by the router so far.
    pub busy_retries: u64,
}

/// A router over N nodes. Single-owner (`&mut self` surface): one
/// submitting context drives it, which is what makes the fan-in
/// deterministic to reason about. See the module docs for the shape.
pub struct Router {
    slots: Vec<Slot>,
    membership: Membership,
    /// Per-node in-flight window (max unresolved submissions per node).
    window: usize,
    busy_retries: u64,
    /// Jobs routed but not yet fanned into `completed`.
    outstanding: usize,
    /// Fan-in buffer, completion order (FIFO — popped from the front).
    completed: VecDeque<JobResult>,
    /// Ids of jobs a node terminally rejected (see [`Router::rejected`]).
    rejected: Vec<u64>,
}

impl Router {
    /// A router over `nodes` (`(id, handle)` pairs) with a per-node
    /// in-flight window of `window` jobs.
    ///
    /// # Panics
    /// Panics if `nodes` is empty, ids repeat, or `window == 0`.
    pub fn new(nodes: Vec<(u64, Box<dyn NodeHandle>)>, window: usize) -> Self {
        assert!(window > 0, "the router needs an in-flight window of at least 1");
        let membership = Membership::new(nodes.iter().map(|(id, _)| *id).collect());
        let slots = nodes.into_iter().map(|(id, handle)| Slot::new(id, handle)).collect();
        Self {
            slots,
            membership,
            window,
            busy_retries: 0,
            outstanding: 0,
            completed: VecDeque::new(),
            rejected: Vec::new(),
        }
    }

    /// The placement table.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.slots.len()
    }

    /// BUSY responses absorbed (and retried) so far — both synchronous
    /// (local full queue) and wire (`BUSY` frames).
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Jobs accepted but not yet collectable.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Ids of jobs a node **terminally rejected** — a deployment
    /// mismatch, not a retryable state: the spec passed
    /// [`JobSpec::validate`] here but a remote node's transport refused
    /// it (e.g. its `TransportConfig::max_dimension` is below the spec
    /// shape). Rejected jobs produce no result; streaming callers
    /// should check this after [`Self::collect`] returns short.
    /// [`Self::run_batch`] panics instead — a batch is all-or-nothing.
    pub fn rejected(&self) -> &[u64] {
        &self.rejected
    }

    /// Route one job to its key's owner. Never blocks: beyond the
    /// node's window the job parks in the router's per-node queue.
    ///
    /// # Panics
    /// Panics if the spec is infeasible ([`JobSpec::validate`]).
    pub fn submit(&mut self, spec: JobSpec) {
        spec.validate();
        let idx = self.membership.owner_index(&spec.design_key());
        self.slots[idx].queue.push_back(spec);
        self.outstanding += 1;
        // Start it moving if the window has room; completions are
        // drained by `collect`/`run_batch`.
        fill_slot(&mut self.slots[idx], self.window, &mut self.busy_retries);
    }

    /// Non-blocking fan-in: one completed result, if any is buffered.
    pub fn poll(&mut self) -> Option<JobResult> {
        if self.completed.is_empty() {
            self.step(&mut None);
        }
        self.completed.pop_front()
    }

    /// Blocking fan-in: append up to `count` results to `out`, in
    /// completion order (callers wanting id order sort afterwards, as
    /// [`Self::run_batch`] does). Returns the number appended — short
    /// only when jobs were terminally rejected ([`Self::rejected`]);
    /// every non-rejected job is waited for.
    ///
    /// # Panics
    /// Panics if fewer than `count` jobs are outstanding, or a node
    /// fails mid-stream.
    pub fn collect(&mut self, count: usize, out: &mut Vec<JobResult>) -> usize {
        self.collect_impl(count, out, &mut None)
    }

    fn collect_impl(
        &mut self,
        count: usize,
        out: &mut Vec<JobResult>,
        split: &mut Option<&mut LatencySplit>,
    ) -> usize {
        assert!(
            count <= self.outstanding + self.completed.len(),
            "collect({count}) with only {} results coming",
            self.outstanding + self.completed.len()
        );
        let mut taken = 0usize;
        while taken < count {
            if !self.completed.is_empty() {
                let take = (count - taken).min(self.completed.len());
                out.extend(self.completed.drain(..take));
                taken += take;
                continue;
            }
            // Rejections shrink what's coming; return short rather than
            // wait for results that will never arrive.
            if self.outstanding == 0 {
                break;
            }
            if !self.step(split) {
                std::thread::park_timeout(IDLE_PARK);
            }
        }
        taken
    }

    /// Serve a whole batch through the cluster: route every spec, fan
    /// the results back in, and append them to `out` **sorted by job
    /// id** — the same contract as `Engine::run_batch` and the
    /// transport client, so fingerprint comparisons line up
    /// element-wise across 1-node, N-node and remote topologies.
    ///
    /// # Panics
    /// Panics if jobs are already outstanding (batches are exclusive),
    /// a spec is infeasible, a node fails mid-batch, or a node
    /// terminally rejects a job (a batch is a unit of work; a
    /// deployment whose nodes refuse its specs is a caller-visible
    /// configuration error, named in the panic message).
    pub fn run_batch(&mut self, specs: &[JobSpec], out: &mut Vec<JobResult>) {
        self.run_batch_impl(specs, out, &mut None);
    }

    /// [`Self::run_batch`], additionally folding every job's latency
    /// into `split`: the engine-reported queue wait and service time,
    /// plus everything the engine cannot see from here — for a remote
    /// node the wire, for any node the time a result waits in the
    /// node's completion stream and the router's fan-in.
    pub fn run_batch_split(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        split: &mut LatencySplit,
    ) {
        self.run_batch_impl(specs, out, &mut Some(split));
    }

    fn run_batch_impl(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        split: &mut Option<&mut LatencySplit>,
    ) {
        assert!(
            self.outstanding == 0 && self.completed.is_empty(),
            "run_batch needs an idle router (a batch owns the fan-in while it runs)"
        );
        let start = out.len();
        let rejected_before = self.rejected.len();
        for &spec in specs {
            self.submit(spec);
        }
        self.collect_impl(specs.len(), out, split);
        assert!(
            self.rejected.len() == rejected_before,
            "run_batch: node(s) terminally rejected jobs {:?} — a deployment mismatch (e.g. a \
             remote node's TransportConfig::max_dimension below the spec shape), not a retryable \
             state",
            &self.rejected[rejected_before..]
        );
        out[start..].sort_unstable_by_key(|r| r.id);
    }

    /// One non-blocking pass over every node: top up in-flight windows,
    /// flush wires, drain events. Returns whether anything moved.
    fn step(&mut self, split: &mut Option<&mut LatencySplit>) -> bool {
        let mut progressed = false;
        for slot in &mut self.slots {
            progressed |= fill_slot(slot, self.window, &mut self.busy_retries);
        }
        for slot in &mut self.slots {
            loop {
                match slot.handle.try_recv() {
                    TryPop::Item(NodeEvent::Result(result)) => {
                        let (_, sent) = slot.in_flight.remove(&result.id).unwrap_or_else(|| {
                            panic!("node {}: result for unknown job {}", slot.id, result.id)
                        });
                        if let Some(split) = split.as_deref_mut() {
                            let observed = sent.elapsed().as_micros() as u64;
                            split.record_observed(
                                result.queue_micros,
                                result.total_micros,
                                observed,
                            );
                        }
                        self.completed.push_back(result);
                        self.outstanding -= 1;
                        progressed = true;
                    }
                    TryPop::Item(NodeEvent::Busy(id)) => {
                        let (spec, _) = slot.in_flight.remove(&id).unwrap_or_else(|| {
                            panic!("node {}: BUSY for unknown job {id}", slot.id)
                        });
                        self.busy_retries += 1;
                        slot.retry.push_back(spec);
                        progressed = true;
                    }
                    TryPop::Item(NodeEvent::Rejected(id)) => {
                        // Terminal, not retryable: the job passed local
                        // validation but the node's transport refused it
                        // (a config mismatch like max_dimension). Resolve
                        // the job without a result; the caller sees it in
                        // `rejected()` (or run_batch's panic).
                        slot.in_flight.remove(&id).unwrap_or_else(|| {
                            panic!("node {}: REJECT for unknown job {id}", slot.id)
                        });
                        self.rejected.push(id);
                        self.outstanding -= 1;
                        progressed = true;
                    }
                    TryPop::Empty => break,
                    TryPop::Closed => {
                        assert!(
                            slot.backlog() == 0,
                            "node {} closed with {} jobs unresolved",
                            slot.id,
                            slot.backlog()
                        );
                        break;
                    }
                }
            }
        }
        progressed
    }

    /// Add a node, rebalancing with the drain protocol (module docs):
    /// routing stops for the migrating key slice, in-flight jobs on
    /// those keys flush to completion on their old owner, then the
    /// membership swaps and the parked slice re-routes to the new node.
    /// Safe mid-stream: outstanding jobs elsewhere keep flowing the
    /// whole time, and results remain bit-identical — placement is
    /// fingerprint-invisible.
    ///
    /// # Panics
    /// Panics if `id` is already a member.
    pub fn add_node(&mut self, id: u64, handle: Box<dyn NodeHandle>) {
        let next = self.membership.with_node(id);
        // 1. Stop routing the migrating slice (keys the new node wins).
        let mut parked = extract_migrating(&mut self.slots, &next, id);
        // 2. Flush in-flight migrating jobs on their old owners. A BUSY
        //    bounce during the drain lands the spec back in a retry
        //    queue, so keep extracting while we wait.
        loop {
            let draining = self.slots.iter().any(|slot| {
                slot.in_flight.values().any(|(spec, _)| next.owner(&spec.design_key()) == id)
            });
            if !draining {
                break;
            }
            if !self.step(&mut None) {
                std::thread::park_timeout(IDLE_PARK);
            }
            parked.extend(extract_migrating(&mut self.slots, &next, id));
        }
        // 3. Swap the table, install the node, re-route the slice.
        self.membership = next;
        self.slots.push(Slot::new(id, handle));
        for spec in parked {
            let idx = self.membership.owner_index(&spec.design_key());
            self.slots[idx].queue.push_back(spec);
            fill_slot(&mut self.slots[idx], self.window, &mut self.busy_retries);
        }
    }

    /// Live aggregate telemetry (see [`ClusterStats`]).
    pub fn stats(&self) -> ClusterStats {
        let nodes: Vec<(u64, Option<EngineStats>)> =
            self.slots.iter().map(|s| (s.id, s.handle.stats())).collect();
        let mut merged = EngineStats::zero();
        for (_, stats) in nodes.iter() {
            if let Some(stats) = stats {
                merged.merge(stats);
            }
        }
        ClusterStats { nodes, merged, busy_retries: self.busy_retries }
    }

    /// Shut every node down and return final telemetry (owned nodes
    /// report their engines' final stats; attached/remote nodes report
    /// `None` — their engines outlive the router).
    ///
    /// # Panics
    /// Panics if jobs are still outstanding (collect them first).
    pub fn shutdown(mut self) -> ClusterStats {
        assert!(self.outstanding == 0, "shutdown with {} jobs outstanding", self.outstanding);
        let busy_retries = self.busy_retries;
        let mut nodes = Vec::new();
        let mut merged = EngineStats::zero();
        for slot in self.slots.drain(..) {
            let stats = slot.handle.shutdown();
            if let Some(stats) = &stats {
                merged.merge(stats);
            }
            nodes.push((slot.id, stats));
        }
        ClusterStats { nodes, merged, busy_retries }
    }
}

/// Top up one node's in-flight window from its retry/queue backlog.
/// Returns whether anything was submitted. A synchronous `Busy` parks
/// the spec on the retry queue and stops filling (the queue is full; a
/// completion must free a slot first).
fn fill_slot(slot: &mut Slot, window: usize, busy_retries: &mut u64) -> bool {
    let mut progressed = false;
    while slot.in_flight.len() < window {
        let Some(spec) = slot.retry.pop_front().or_else(|| slot.queue.pop_front()) else {
            break;
        };
        match slot.handle.try_submit(spec) {
            Ok(SubmitOutcome::Accepted) => {
                slot.in_flight.insert(spec.id, (spec, Instant::now()));
                progressed = true;
            }
            Ok(SubmitOutcome::Busy) => {
                *busy_retries += 1;
                slot.retry.push_back(spec);
                break;
            }
            Err(e) => panic!("node {} failed mid-stream: {e}", slot.id),
        }
    }
    if progressed {
        if let Err(e) = slot.handle.flush() {
            panic!("node {} failed mid-stream: {e}", slot.id);
        }
    }
    progressed
}

/// Pull every queued-but-unsubmitted job whose key migrates to `new_id`
/// under `next` out of the slots (step 1 of the drain protocol).
fn extract_migrating(slots: &mut [Slot], next: &Membership, new_id: u64) -> Vec<JobSpec> {
    let mut parked = Vec::new();
    for slot in slots {
        for queue in [&mut slot.retry, &mut slot.queue] {
            let mut keep = VecDeque::with_capacity(queue.len());
            while let Some(spec) = queue.pop_front() {
                if next.owner(&spec.design_key()) == new_id {
                    parked.push(spec);
                } else {
                    keep.push_back(spec);
                }
            }
            *queue = keep;
        }
    }
    parked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::node::LocalNode;
    use crate::engine::EngineConfig;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            n: 250,
            k: 5,
            m: 160,
            // Spread ids over distinct designs so keys shard over nodes.
            design: DesignSpec::random_regular(id % 5),
            decoder: DecoderKind::Mn,
            seed: 900 + id,
            query_cost_micros: 0,
        }
    }

    fn local_cluster(nodes: usize, workers: usize) -> Router {
        let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..nodes as u64)
            .map(|id| {
                let config = EngineConfig {
                    workers,
                    queue_capacity: 8,
                    results_capacity: 8,
                    design_cache_capacity: 8,
                    batch_window: 1,
                };
                (id, Box::new(LocalNode::start(config)) as Box<dyn NodeHandle>)
            })
            .collect();
        Router::new(handles, 4)
    }

    #[test]
    fn batch_results_are_complete_and_id_sorted() {
        let mut router = local_cluster(3, 2);
        let specs: Vec<JobSpec> = (0..30).map(spec).collect();
        let mut out = Vec::new();
        router.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 30);
        assert!(out.windows(2).all(|w| w[0].id < w[1].id));
        let stats = router.shutdown();
        assert_eq!(stats.merged.jobs_completed, 30);
        assert_eq!(stats.nodes.len(), 3);
    }

    #[test]
    fn placement_follows_the_membership_table() {
        let mut router = local_cluster(3, 1);
        let specs: Vec<JobSpec> = (0..20).map(spec).collect();
        let mut out = Vec::new();
        router.run_batch(&specs, &mut out);
        // Every node served exactly the jobs whose keys it owns.
        let membership = router.membership().clone();
        let want: Vec<u64> = specs.iter().map(|s| membership.owner(&s.design_key())).collect();
        let stats = router.shutdown();
        for (idx, (id, node_stats)) in stats.nodes.iter().enumerate() {
            let expected = want.iter().filter(|&&o| o == *id).count() as u64;
            assert_eq!(
                node_stats.as_ref().expect("local stats").jobs_completed,
                expected,
                "node {idx} served the wrong slice"
            );
        }
    }

    #[test]
    fn cluster_fingerprints_match_a_single_node() {
        let specs: Vec<JobSpec> = (0..24).map(spec).collect();
        let mut single = local_cluster(1, 1);
        let mut want = Vec::new();
        single.run_batch(&specs, &mut want);
        single.shutdown();
        let mut cluster = local_cluster(3, 2);
        let mut got = Vec::new();
        cluster.run_batch(&specs, &mut got);
        cluster.shutdown();
        let project =
            |rs: &[JobResult]| rs.iter().map(|r| (r.id, r.fingerprint())).collect::<Vec<_>>();
        assert_eq!(project(&want), project(&got), "sharding changed results");
    }

    #[test]
    fn tiny_node_queues_backpressure_without_deadlock() {
        // Per-node queue capacity 1 against a window of 4 forces the
        // synchronous Busy path constantly; everything must still serve.
        let handles: Vec<(u64, Box<dyn NodeHandle>)> = (0..2u64)
            .map(|id| {
                let config = EngineConfig {
                    workers: 1,
                    queue_capacity: 1,
                    results_capacity: 1,
                    design_cache_capacity: 4,
                    batch_window: 1,
                };
                (id, Box::new(LocalNode::start(config)) as Box<dyn NodeHandle>)
            })
            .collect();
        let mut router = Router::new(handles, 4);
        let specs: Vec<JobSpec> = (0..25).map(spec).collect();
        let mut out = Vec::new();
        router.run_batch(&specs, &mut out);
        assert_eq!(out.len(), 25);
        assert!(router.busy_retries() > 0, "tiny queues must exercise the retry path");
        router.shutdown();
    }

    #[test]
    fn mid_stream_rebalance_preserves_results_and_moves_the_minimal_slice() {
        let specs: Vec<JobSpec> = (0..36).map(spec).collect();
        // Ground truth from a static 1-node cluster.
        let mut single = local_cluster(1, 1);
        let mut want = Vec::new();
        single.run_batch(&specs, &mut want);
        single.shutdown();

        // Stream half, rebalance, stream the rest.
        let mut router = local_cluster(2, 1);
        let before = router.membership().clone();
        for &s in &specs[..18] {
            router.submit(s);
        }
        let new_node = Box::new(LocalNode::start(EngineConfig {
            workers: 1,
            queue_capacity: 8,
            results_capacity: 8,
            design_cache_capacity: 8,
            batch_window: 1,
        }));
        router.add_node(7, new_node);
        let after = router.membership().clone();
        for &s in &specs[18..] {
            router.submit(s);
        }
        let mut got = Vec::new();
        router.collect(36, &mut got);
        got.sort_unstable_by_key(|r| r.id);
        let project =
            |rs: &[JobResult]| rs.iter().map(|r| (r.id, r.fingerprint())).collect::<Vec<_>>();
        assert_eq!(project(&want), project(&got), "rebalance changed results");
        // HRW minimal migration at the membership level: every key that
        // changed owner moved to the new node.
        for s in &specs {
            let key = s.design_key();
            if before.owner(&key) != after.owner(&key) {
                assert_eq!(after.owner(&key), 7);
            }
        }
        router.shutdown();
    }

    #[test]
    #[should_panic(expected = "idle router")]
    fn run_batch_requires_an_idle_router() {
        let mut router = local_cluster(1, 1);
        router.submit(spec(0));
        let mut out = Vec::new();
        router.run_batch(&[spec(1)], &mut out);
    }

    #[test]
    fn remote_rejects_resolve_as_rejected_ids_not_router_panics() {
        // Regression: a spec can pass JobSpec::validate here yet exceed
        // a remote node's TransportConfig::max_dimension — a deployment
        // mismatch the router must surface per job, not crash on. The
        // streaming API returns short and names the id; every
        // non-rejected job is still served.
        use crate::cluster::node::RemoteNode;
        use crate::engine::Engine;
        use crate::transport::{TransportConfig, TransportServer};
        use std::sync::Arc;

        let engine = Arc::new(Engine::start(EngineConfig::with_workers(1)));
        let server = TransportServer::bind(
            Arc::clone(&engine),
            "127.0.0.1:0",
            TransportConfig { route_capacity: 8, max_dimension: 1 << 10 },
        )
        .expect("bind loopback");
        let remote = RemoteNode::connect(server.local_addr()).expect("connect");
        let mut router = Router::new(vec![(0, Box::new(remote) as Box<dyn NodeHandle>)], 4);

        let good = spec(1); // n = 250 < 1024: within the node's cap
        let mut huge = spec(2);
        huge.n = 1 << 12; // feasible, but beyond the node's max_dimension
        huge.m = 64;
        assert!(huge.is_feasible());
        router.submit(good);
        router.submit(huge);
        let mut out = Vec::new();
        let taken = router.collect(2, &mut out);
        assert_eq!(taken, 1, "collect returns short on a rejection");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, good.id, "the good job was still served");
        assert_eq!(router.rejected(), &[huge.id]);
        assert_eq!(router.outstanding(), 0);

        router.shutdown();
        server.stop();
        Arc::try_unwrap(engine).ok().expect("transport released the engine").shutdown();
    }
}
