//! Deterministic key placement: rendezvous (HRW) hashing of
//! [`DesignKey`] → node.
//!
//! The cluster's whole point is cache affinity: every job carrying a
//! given design key must land on the same node, so that node's design
//! cache serves a stable tenant slice. Rendezvous hashing gives exactly
//! the properties that need:
//!
//! * **Pure function** — placement depends only on the key and the set
//!   of node ids. No routing state, no arrival-order dependence; two
//!   router instances over the same membership agree on every key.
//! * **Minimal migration** — adding a node moves a key if and only if
//!   the new node wins that key's score contest, so exactly the keys
//!   the new node now owns migrate and nothing shuffles between the
//!   survivors. Removing a node relocates only the removed node's keys.
//!
//! Scores are `mix64` chains over the key digest and the node id — the
//! same splitmix finalizer the rest of the workspace uses for digests,
//! so placement is identical across platforms and runs.

use pooled_rng::splitmix::mix64;

use crate::cache::DesignKey;
use crate::job::Digest;
use pooled_design::factory::DesignKind;

/// 64-bit digest of a design key (all five identity fields; the design
/// kind hashes by its stable position in [`DesignKind::ALL`], the same
/// code the wire format uses).
fn key_digest(key: &DesignKey) -> u64 {
    let kind_code =
        DesignKind::ALL.iter().position(|&k| k == key.kind).expect("design kind in ALL") as u64;
    let mut d = Digest::new();
    d.push(key.n as u64);
    d.push(key.m as u64);
    d.push(kind_code);
    d.push(key.c_milli as u64);
    d.push(key.seed);
    d.finish()
}

/// A node's score for a key: highest score owns the key.
fn score(node_id: u64, key_digest: u64) -> u64 {
    mix64(key_digest ^ mix64(node_id))
}

/// The cluster's placement table: an ordered set of node ids plus the
/// HRW ownership function. Cheap to clone (a `Vec<u64>`); the router
/// swaps tables atomically during a rebalance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Membership {
    nodes: Vec<u64>,
}

impl Membership {
    /// A table over `nodes` (ids must be unique; order is irrelevant to
    /// placement — ownership depends only on the id *set*).
    ///
    /// # Panics
    /// Panics if `nodes` is empty or contains a duplicate id.
    pub fn new(nodes: Vec<u64>) -> Self {
        assert!(!nodes.is_empty(), "a membership needs at least one node");
        let mut seen = nodes.clone();
        seen.sort_unstable();
        assert!(seen.windows(2).all(|w| w[0] != w[1]), "node ids must be unique");
        Self { nodes }
    }

    /// The node ids, in construction order (the router's slot order).
    pub fn node_ids(&self) -> &[u64] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indexes (into [`Self::node_ids`]) of the **top-2** scorers for
    /// `key`: the owner, and — when the table has at least two nodes —
    /// the runner-up. The runner-up is the failure-domain standby: HRW
    /// guarantees it is exactly the node that inherits the key when the
    /// owner leaves (`without_node(owner).owner(key)`), so keeping it
    /// warm makes failover cold-miss-free.
    pub fn top2_indices(&self, key: &DesignKey) -> (usize, Option<usize>) {
        let digest = key_digest(key);
        let mut best = 0usize;
        let mut best_score = (score(self.nodes[0], digest), self.nodes[0]);
        let mut second: Option<(usize, (u64, u64))> = None;
        for (i, &id) in self.nodes.iter().enumerate().skip(1) {
            // Ties (astronomically unlikely) break by id, so ownership is
            // a function of the id set, never of vector order.
            let s = (score(id, digest), id);
            if s > best_score {
                second = Some((best, best_score));
                best_score = s;
                best = i;
            } else if second.is_none_or(|(_, ss)| s > ss) {
                second = Some((i, s));
            }
        }
        (best, second.map(|(i, _)| i))
    }

    /// Index (into [`Self::node_ids`]) of the node owning `key`.
    pub fn owner_index(&self, key: &DesignKey) -> usize {
        self.top2_indices(key).0
    }

    /// Id of the node owning `key`.
    pub fn owner(&self, key: &DesignKey) -> u64 {
        self.nodes[self.owner_index(key)]
    }

    /// Index of `key`'s standby — the HRW runner-up that inherits the
    /// key if its owner leaves. `None` for a 1-node table (nowhere to
    /// fail over to).
    pub fn standby_index(&self, key: &DesignKey) -> Option<usize> {
        self.top2_indices(key).1
    }

    /// Id of `key`'s standby node (see [`Self::standby_index`]).
    pub fn standby(&self, key: &DesignKey) -> Option<u64> {
        self.standby_index(key).map(|i| self.nodes[i])
    }

    /// This table with `id` added (HRW: only keys the new node wins
    /// migrate to it; every other key keeps its owner).
    ///
    /// # Panics
    /// Panics if `id` is already a member.
    pub fn with_node(&self, id: u64) -> Membership {
        assert!(!self.nodes.contains(&id), "node {id} already in the membership");
        let mut nodes = self.nodes.clone();
        nodes.push(id);
        Membership { nodes }
    }

    /// This table with `id` removed (only the removed node's keys
    /// migrate, each to its runner-up scorer).
    ///
    /// # Panics
    /// Panics if `id` is not a member or is the last node.
    pub fn without_node(&self, id: u64) -> Membership {
        assert!(self.nodes.contains(&id), "node {id} not in the membership");
        assert!(self.nodes.len() > 1, "cannot remove the last node");
        Membership { nodes: self.nodes.iter().copied().filter(|&n| n != id).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> DesignKey {
        DesignKey {
            n: 400 + (seed % 7) as usize,
            m: 200,
            kind: DesignKind::ALL[(seed % DesignKind::ALL.len() as u64) as usize],
            c_milli: 500,
            seed,
        }
    }

    #[test]
    fn placement_depends_on_the_id_set_not_the_order() {
        let a = Membership::new(vec![10, 20, 30]);
        let b = Membership::new(vec![30, 10, 20]);
        for s in 0..200 {
            assert_eq!(a.owner(&key(s)), b.owner(&key(s)), "key {s}");
        }
    }

    #[test]
    fn adding_a_node_only_moves_keys_it_wins() {
        let old = Membership::new(vec![1, 2, 3]);
        let new = old.with_node(4);
        let mut moved = 0;
        for s in 0..500 {
            let k = key(s);
            let before = old.owner(&k);
            let after = new.owner(&k);
            if before != after {
                assert_eq!(after, 4, "key {s} migrated to a survivor, not the new node");
                moved += 1;
            }
        }
        // Expect roughly 1/4 of keys on the new node; allow wide slack.
        assert!((50..=250).contains(&moved), "moved {moved}/500");
    }

    #[test]
    fn removing_a_node_only_moves_its_keys() {
        let old = Membership::new(vec![1, 2, 3, 4]);
        let new = old.without_node(2);
        for s in 0..500 {
            let k = key(s);
            if old.owner(&k) != 2 {
                assert_eq!(old.owner(&k), new.owner(&k), "survivor key {s} moved");
            } else {
                assert_ne!(new.owner(&k), 2);
            }
        }
    }

    #[test]
    fn keys_spread_over_all_nodes() {
        let m = Membership::new(vec![7, 8, 9]);
        let mut counts = [0usize; 3];
        for s in 0..600 {
            counts[m.owner_index(&key(s))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 100, "node {i} owns only {c}/600 keys");
        }
    }

    #[test]
    fn standby_is_exactly_the_post_failure_owner() {
        // The property the warm-standby path rides on: the HRW runner-up
        // for a key is the node that inherits it when the owner dies.
        let m = Membership::new(vec![11, 22, 33, 44]);
        for s in 0..400 {
            let k = key(s);
            let owner = m.owner(&k);
            let standby = m.standby(&k).expect("4-node table has a runner-up");
            assert_ne!(standby, owner, "key {s}: standby must differ from owner");
            assert_eq!(
                standby,
                m.without_node(owner).owner(&k),
                "key {s}: runner-up is not the failover owner"
            );
        }
    }

    #[test]
    fn standby_depends_on_the_id_set_not_the_order() {
        let a = Membership::new(vec![10, 20, 30]);
        let b = Membership::new(vec![30, 10, 20]);
        for s in 0..200 {
            assert_eq!(a.standby(&key(s)), b.standby(&key(s)), "key {s}");
        }
    }

    #[test]
    fn single_node_table_has_no_standby() {
        let m = Membership::new(vec![5]);
        assert_eq!(m.standby(&key(0)), None);
        assert_eq!(m.standby_index(&key(0)), None);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_ids_rejected() {
        let _ = Membership::new(vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_membership_rejected() {
        let _ = Membership::new(vec![]);
    }
}
