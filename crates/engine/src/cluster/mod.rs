//! Multi-node serving: the engine as one tier of a scalable system.
//!
//! The paper's parallel reconstruction story scales past one machine
//! only if each shard keeps its design pools hot. This module is that
//! scaling tier, in three layers:
//!
//! * [`node`] — the [`NodeHandle`] abstraction: "a place jobs run",
//!   with [`LocalNode`] (an in-process [`Engine`] behind a private
//!   route) and [`RemoteNode`] (one TCP connection speaking the
//!   transport frame protocol) as interchangeable impls. The transport
//!   server itself serves per-connection `NodeHandle` sessions minted
//!   by a [`NodeFactory`], so single-node paths really are a 1-node
//!   cluster.
//! * [`membership`] — deterministic placement: rendezvous (HRW)
//!   hashing of [`DesignKey`] → node, so every job carrying a key
//!   lands on that key's owner, each node's design cache serves a
//!   stable slice, and adding a node migrates only the keys the new
//!   node wins.
//! * [`router`] — the [`Router`]: per-node in-flight windows,
//!   BUSY-aware retry against both local (synchronous) and remote
//!   (frame) backpressure, result fan-in preserving per-job
//!   determinism fingerprints, a rebalance step with an explicit
//!   drain protocol ([`Router::add_node`] / [`Router::remove_node`]),
//!   and health-checked **failover** ([`FailoverConfig`]): a node that
//!   errors, closes, or goes silent past probation is removed and its
//!   jobs re-route to the survivors — whose caches the router kept
//!   warm for exactly those keys via HRW top-2 standby placement
//!   ([`Membership::standby`]).
//! * [`chaos`] — deterministic fault injection ([`ChaosNode`]): a
//!   wrapper handle that drops, delays, duplicates, or severs traffic
//!   on a seeded schedule, so the failover paths above are pinned by
//!   replayable tests instead of luck.
//!
//! The headline invariant, pinned by `tests/cluster_determinism.rs`,
//! `tests/cluster_failover.rs` and the CI cluster smoke: a
//! `LoadProfile` replayed through 1 local node, an N-node local
//! cluster, an N-node TCP loopback cluster — or an N-node cluster
//! that **loses a node mid-stream** — yields **bit-identical** per-job
//! result fingerprints. The cluster may change *where* and *when* a
//! job runs — never *what* it computes.
//!
//! [`Engine`]: crate::engine::Engine
//! [`DesignKey`]: crate::cache::DesignKey

pub mod chaos;
pub mod membership;
pub mod node;
pub mod router;

pub use chaos::{ChaosConfig, ChaosController, ChaosNode};
pub use membership::Membership;
pub use node::{
    LocalNode, NodeError, NodeEvent, NodeFactory, NodeHandle, RemoteNode, SubmitOutcome,
};
pub use router::{ClusterStats, FailoverConfig, Router};
