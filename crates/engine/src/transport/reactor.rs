//! Minimal readiness core for the event-loop transport front.
//!
//! The serving target is tens of thousands of concurrent tenants, which
//! rules out thread-per-connection — but this workspace is built in an
//! offline container, so an async runtime or an epoll crate is not on
//! the table. What the front actually needs from the OS is tiny:
//!
//! * **`poll(2)`** — block until any registered fd is readable/writable
//!   (a thin `extern "C"` shim over the libc already linked by `std`;
//!   `poll` is POSIX, needs no registration syscalls, and at the
//!   few-thousand-fds-per-loop scale this server runs, the O(fds) scan
//!   is nanoseconds against socket work).
//! * **a wakeup pipe** — the classic self-pipe trick, so engine workers
//!   finishing a job can rouse a loop parked in `poll` without the loop
//!   ever polling the result queues.
//!
//! Everything else (nonblocking sockets, fd extraction) comes from
//! `std::net` and `std::os::fd`. The handful of process introspection
//! helpers at the bottom ([`thread_count`], [`thread_cpu_time`],
//! [`raise_fd_limit`]) exist for the connection-sweep bench and the
//! no-busy-wait regression tests — they are diagnostics, not serving
//! machinery.

use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// `poll(2)` registration entry, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel — handy for tombstoning without reshuffling the array).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported events (includes [`POLLERR`]/[`POLLHUP`] even
    /// when unrequested).
    pub revents: i16,
}

/// Readable (or EOF/peer-closed — a read will not block).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the fd.
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (a registration bug, not a peer event).
pub const POLLNVAL: i16 = 0x020;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;
const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
const RLIMIT_NOFILE: i32 = 7;

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
}

/// Block until an entry in `fds` has a ready event, `timeout` expires,
/// or a signal interrupts (retried internally). Returns the number of
/// entries with nonzero `revents`. `None` blocks indefinitely;
/// `Some(Duration::ZERO)` is a nonblocking readiness probe.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        // Round up so a 100µs request never becomes a hot 0ms spin.
        Some(t) => {
            t.as_millis().min(i32::MAX as u128) as i32
                + i32::from(t.subsec_micros() % 1000 != 0 && t.as_millis() < i32::MAX as u128)
        }
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The self-pipe wakeup channel: any thread calls [`WakePipe::wake`],
/// and a loop parked in `poll` on [`WakePipe::read_fd`] returns.
///
/// Wakeups are edge-coalesced by the `armed` flag: between a `wake` and
/// the loop's next [`WakePipe::drain`], further `wake` calls are free
/// (no syscall, no pipe bytes), so a burst of result deliveries costs
/// one byte in the pipe, not thousands. The drain clears the flag
/// *before* reading, so a wake racing the drain lands a fresh byte and
/// the next `poll` returns immediately — no lost wakeups.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
    armed: AtomicBool,
}

impl WakePipe {
    /// Open the pipe; both ends nonblocking (a full pipe must never
    /// block a worker, and the drain must never block the loop).
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let this = Self { read_fd: fds[0], write_fd: fds[1], armed: AtomicBool::new(false) };
        set_nonblocking_fd(this.read_fd)?;
        set_nonblocking_fd(this.write_fd)?;
        Ok(this)
    }

    /// The fd the loop registers with [`POLLIN`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Rouse the loop. Returns `true` when this call actually signaled
    /// (wrote the pipe byte) rather than piggybacking on a wakeup
    /// already in flight — the reactor's wakeup counter counts these.
    pub fn wake(&self) -> bool {
        if self.armed.swap(true, Ordering::AcqRel) {
            return false;
        }
        let byte = 1u8;
        // A full pipe (EAGAIN) still wakes the loop — there are already
        // unread bytes in it — so the result is deliberately ignored.
        unsafe { write(self.write_fd, &byte, 1) };
        true
    }

    /// Loop-side: swallow pending wakeup bytes and re-arm. Call once
    /// per tick before consuming whatever state the wakers advertised.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::Release);
        let mut buf = [0u8; 64];
        loop {
            let got = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if got < buf.len() as isize {
                return; // drained (or EAGAIN / spurious error — same thing here)
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// The fds are plain owned descriptors; the armed flag is atomic.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

/// CPU time consumed by the calling thread (kernel-accounted, so a
/// thread parked in `poll`/`read` accrues none). This is how the tests
/// pin "waiting burns no CPU" — wall time elapses, this doesn't.
pub fn thread_cpu_time() -> Duration {
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
        return Duration::ZERO;
    }
    Duration::new(ts.tv_sec.max(0) as u64, ts.tv_nsec.max(0) as u32)
}

/// Live thread count of this process (from `/proc/self/status`), or
/// `None` off Linux. The connection sweep uses it to prove the server
/// scales threads with event loops, not with connections.
pub fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// Best-effort `RLIMIT_NOFILE` raise to at least `want` descriptors
/// (each loopback tenant costs two — one per socket end). Returns the
/// limit now in force. Never lowers the limit.
pub fn raise_fd_limit(want: u64) -> u64 {
    let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    // Raising the soft limit within the hard limit always works;
    // raising the hard limit too needs privilege — try, fall back.
    let tries = [
        Rlimit { rlim_cur: want, rlim_max: lim.rlim_max.max(want) },
        Rlimit { rlim_cur: want.min(lim.rlim_max), rlim_max: lim.rlim_max },
    ];
    for attempt in tries {
        if unsafe { setrlimit(RLIMIT_NOFILE, &attempt) } == 0 {
            return attempt.rlim_cur;
        }
    }
    lim.rlim_cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn wake_pipe_rouses_a_parked_poll() {
        let pipe = Arc::new(WakePipe::new().expect("pipe"));
        let waker = Arc::clone(&pipe);
        let parked = std::thread::spawn(move || {
            let mut fds = [PollFd { fd: waker.read_fd(), events: POLLIN, revents: 0 }];
            let started = Instant::now();
            let n = poll_fds(&mut fds, Some(Duration::from_secs(10))).expect("poll");
            (n, fds[0].revents, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(pipe.wake(), "first wake must signal");
        assert!(!pipe.wake(), "second wake coalesces onto the armed flag");
        let (n, revents, waited) = parked.join().expect("poll thread");
        assert_eq!(n, 1);
        assert_ne!(revents & POLLIN, 0, "pipe must report readable");
        assert!(waited < Duration::from_secs(5), "wakeup, not timeout");
        pipe.drain();
        assert!(pipe.wake(), "drain re-arms the pipe");
    }

    #[test]
    fn drain_then_wake_is_never_lost() {
        let pipe = WakePipe::new().expect("pipe");
        for _ in 0..100 {
            pipe.wake();
            pipe.drain();
            assert!(pipe.wake(), "post-drain wake must signal again");
            pipe.drain();
        }
        // After a final drain the pipe is empty: poll must time out.
        let mut fds = [PollFd { fd: pipe.read_fd(), events: POLLIN, revents: 0 }];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0, "drained pipe must not be readable");
    }

    #[test]
    fn zero_timeout_poll_is_a_nonblocking_probe() {
        let pipe = WakePipe::new().expect("pipe");
        let mut fds = [PollFd { fd: pipe.read_fd(), events: POLLIN, revents: 0 }];
        let started = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::ZERO)).expect("poll");
        assert_eq!(n, 0);
        assert!(started.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn thread_cpu_time_tracks_work_not_sleep() {
        let before = thread_cpu_time();
        std::thread::sleep(Duration::from_millis(50));
        let slept = thread_cpu_time() - before;
        assert!(slept < Duration::from_millis(40), "sleep burned {slept:?} of CPU");
        // And it does advance under actual work.
        let before = thread_cpu_time();
        let mut acc = 0u64;
        while thread_cpu_time() - before < Duration::from_millis(5) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        assert!(acc != 42, "keep the loop observable");
    }

    #[test]
    fn thread_count_sees_spawned_threads() {
        let Some(base) = thread_count() else {
            return; // not on Linux procfs; helper is allowed to opt out
        };
        assert!(base >= 1);
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
            })
            .collect();
        let with_threads = thread_count().expect("procfs stays readable");
        assert!(with_threads >= base + 4, "expected {base}+4 threads, saw {with_threads}");
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("spinner");
        }
    }

    #[test]
    fn fd_limit_raise_reports_a_usable_limit() {
        let now = raise_fd_limit(256);
        assert!(now >= 256, "any sane environment grants 256 fds, got {now}");
    }
}
