//! Minimal readiness core for the event-loop transport front.
//!
//! The serving target is tens of thousands of concurrent tenants, which
//! rules out thread-per-connection — but this workspace is built in an
//! offline container, so an async runtime or an epoll crate is not on
//! the table. What the front actually needs from the OS is tiny, and it
//! is abstracted here behind one trait:
//!
//! * **[`EventBackend`]** — register/modify/deregister fd interest and
//!   block until something is ready. Two implementations share the
//!   trait: [`PollBackend`] over **`poll(2)`** (POSIX-portable, no
//!   registration syscalls, O(registered fds) per wait) and
//!   [`EpollBackend`] over raw **`epoll`** (Linux,
//!   `epoll_create1`/`epoll_ctl`/`epoll_wait` via the same
//!   zero-dependency `extern "C"` idiom, O(1) interest updates and
//!   O(ready fds) per wait — the difference that makes a 10k-tenant
//!   idle herd free).
//! * **a wakeup pipe** — the classic self-pipe trick, so engine workers
//!   finishing a job can rouse a loop parked in the backend without the
//!   loop ever polling the result queues.
//! * **[`writev_fd`]** — vectored writes, so the server's outbound
//!   segment queue drains many encoded frames in one syscall without
//!   ever flattening them into a contiguous buffer.
//!
//! Everything else (nonblocking sockets, fd extraction) comes from
//! `std::net` and `std::os::fd`. The handful of process introspection
//! helpers at the bottom ([`thread_count`], [`thread_cpu_time`],
//! [`thread_cpu_time_by_name`], [`raise_fd_limit`]) exist for the
//! connection-sweep bench and the no-busy-wait regression tests — they
//! are diagnostics, not serving machinery.

use std::collections::HashMap;
use std::io;
use std::os::fd::RawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// `poll(2)` registration entry, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the
    /// kernel — handy for tombstoning without reshuffling the array).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported events (includes [`POLLERR`]/[`POLLHUP`] even
    /// when unrequested).
    pub revents: i16,
}

/// Readable (or EOF/peer-closed — a read will not block).
pub const POLLIN: i16 = 0x001;
/// Writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the fd.
pub const POLLERR: i16 = 0x008;
/// Peer hung up.
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (a registration bug, not a peer event).
pub const POLLNVAL: i16 = 0x020;

const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;
const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
const RLIMIT_NOFILE: i32 = 7;
const SC_CLK_TCK: i32 = 2;

// epoll interface constants (Linux UAPI; unused off-Linux but harmless).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

/// `struct epoll_event`. The kernel packs it on x86-64 only (the
/// `EPOLL_PACKED` attribute in the UAPI header); other architectures
/// use natural alignment — mirror both or `epoll_wait` scribbles over
/// the wrong offsets.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `struct iovec` for [`writev_fd`]. Scatter-gather entry: base pointer
/// plus length, borrowed from a caller-owned buffer for the duration of
/// one syscall.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct IoVec {
    base: *const u8,
    len: usize,
}

impl IoVec {
    /// An entry covering `slice` (the slice must outlive the `writev`
    /// call that consumes this entry — enforced by the borrow in
    /// [`writev_fd`]'s caller, not by this type, which is raw).
    pub fn from_slice(slice: &[u8]) -> Self {
        Self { base: slice.as_ptr(), len: slice.len() }
    }

    /// A zeroed placeholder for fixed-size iovec arrays.
    pub fn empty() -> Self {
        Self { base: std::ptr::null(), len: 0 }
    }

    /// Bytes this entry covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the entry covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// An IoVec is an inert (pointer, length) pair; it dereferences nothing
// on its own, so moving it across threads is safe.
unsafe impl Send for IoVec {}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, ...) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    fn close(fd: i32) -> i32;
    fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    fn sysconf(name: i32) -> i64;
    #[cfg(target_os = "linux")]
    fn epoll_create1(flags: i32) -> i32;
    #[cfg(target_os = "linux")]
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    #[cfg(target_os = "linux")]
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
}

/// Vectored write: transmit the concatenation of `iovs` to `fd` in one
/// syscall, without ever copying the segments into a contiguous buffer.
/// Returns the byte count the kernel accepted (possibly a prefix —
/// partial-write resume is the caller's job). `EINTR` is retried;
/// `EWOULDBLOCK` surfaces as an error for the caller to classify.
pub fn writev_fd(fd: RawFd, iovs: &[IoVec]) -> io::Result<usize> {
    loop {
        let rc = unsafe { writev(fd, iovs.as_ptr(), iovs.len().min(i32::MAX as usize) as i32) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Block until an entry in `fds` has a ready event, `timeout` expires,
/// or a signal interrupts (retried internally). Returns the number of
/// entries with nonzero `revents`. `None` blocks indefinitely;
/// `Some(Duration::ZERO)` is a nonblocking readiness probe.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let timeout_ms: i32 = match timeout {
        None => -1,
        // Round up so a 100µs request never becomes a hot 0ms spin.
        Some(t) => {
            t.as_millis().min(i32::MAX as u128) as i32
                + i32::from(t.subsec_micros() % 1000 != 0 && t.as_millis() < i32::MAX as u128)
        }
    };
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The self-pipe wakeup channel: any thread calls [`WakePipe::wake`],
/// and a loop parked in `poll` on [`WakePipe::read_fd`] returns.
///
/// Wakeups are edge-coalesced by the `armed` flag: between a `wake` and
/// the loop's next [`WakePipe::drain`], further `wake` calls are free
/// (no syscall, no pipe bytes), so a burst of result deliveries costs
/// one byte in the pipe, not thousands. The drain clears the flag
/// *before* reading, so a wake racing the drain lands a fresh byte and
/// the next `poll` returns immediately — no lost wakeups.
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
    armed: AtomicBool,
}

impl WakePipe {
    /// Open the pipe; both ends nonblocking (a full pipe must never
    /// block a worker, and the drain must never block the loop).
    pub fn new() -> io::Result<Self> {
        let mut fds = [0i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let this = Self { read_fd: fds[0], write_fd: fds[1], armed: AtomicBool::new(false) };
        set_nonblocking_fd(this.read_fd)?;
        set_nonblocking_fd(this.write_fd)?;
        Ok(this)
    }

    /// The fd the loop registers with [`POLLIN`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Rouse the loop. Returns `true` when this call actually signaled
    /// (wrote the pipe byte) rather than piggybacking on a wakeup
    /// already in flight — the reactor's wakeup counter counts these.
    pub fn wake(&self) -> bool {
        if self.armed.swap(true, Ordering::AcqRel) {
            return false;
        }
        let byte = 1u8;
        // A full pipe (EAGAIN) still wakes the loop — there are already
        // unread bytes in it — so the result is deliberately ignored.
        unsafe { write(self.write_fd, &byte, 1) };
        true
    }

    /// Loop-side: swallow pending wakeup bytes and re-arm. Call once
    /// per tick before consuming whatever state the wakers advertised.
    pub fn drain(&self) {
        self.armed.store(false, Ordering::Release);
        let mut buf = [0u8; 64];
        loop {
            let got = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if got < buf.len() as isize {
                return; // drained (or EAGAIN / spurious error — same thing here)
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// The fds are plain owned descriptors; the armed flag is atomic.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

/// Which readiness events a registered fd wants.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    /// Deliver when a read would not block (or the peer hung up).
    pub readable: bool,
    /// Deliver when a write would not block.
    pub writable: bool,
}

impl Interest {
    /// Read interest only — the state every connection registers with.
    pub const READ: Interest = Interest { readable: true, writable: false };
}

/// One ready fd, reported by [`EventBackend::wait`].
#[derive(Clone, Copy, Debug)]
pub struct ReadyEvent {
    /// The caller's token from `register` (connection id; the wake pipe
    /// uses a sentinel).
    pub token: u64,
    /// A read would not block.
    pub readable: bool,
    /// A write would not block.
    pub writable: bool,
    /// Error condition (`POLLERR`/`POLLNVAL`/`EPOLLERR`) — terminal.
    pub error: bool,
    /// Peer hung up; drain what remains, then expect EOF.
    pub hup: bool,
}

/// Requested readiness backend ([`super::TransportConfig::backend`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Resolve per-platform: epoll on Linux, poll elsewhere.
    #[default]
    Auto,
    /// Force the portable `poll(2)` backend.
    Poll,
    /// Force the epoll backend (bind fails off Linux — there is no
    /// silent fallback, so a deployment that asked for O(active) ticks
    /// finds out at startup, not in a flame graph).
    Epoll,
}

/// The backend actually in force after [`BackendChoice`] resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// `poll(2)`: O(registered fds) scanned per wait.
    Poll,
    /// epoll: O(ready fds) per wait, O(1) interest updates.
    Epoll,
}

impl BackendChoice {
    /// The kind this choice resolves to on the current platform.
    pub fn resolve(self) -> BackendKind {
        match self {
            BackendChoice::Poll => BackendKind::Poll,
            BackendChoice::Epoll => BackendKind::Epoll,
            BackendChoice::Auto => {
                if cfg!(target_os = "linux") {
                    BackendKind::Epoll
                } else {
                    BackendKind::Poll
                }
            }
        }
    }
}

impl BackendKind {
    /// Stable lowercase name (bench JSON, logs, CI greps).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Poll => "poll",
            BackendKind::Epoll => "epoll",
        }
    }
}

/// Readiness multiplexer behind one event loop: register fds with a
/// token, adjust interest on edges, park until something is ready.
///
/// The contract both implementations honor:
///
/// * level-triggered — an fd stays reported while its condition holds,
///   so a budget-bounded reader that leaves bytes in the kernel buffer
///   is re-reported next wait, and no readiness is ever lost;
/// * `error`/`hup` are always delivered, whatever the interest mask;
/// * `deregister` of an fd that was never registered is a no-op (a
///   connection that died before adoption tears down uniformly);
/// * `wait` returns the number of fd entries it *touched* — delivered
///   events under epoll, the whole registered set scanned under poll.
///   That count is the `pooled_transport_ready_fds_total` metric, and
///   the per-tick gap between the two backends is exactly the
///   O(active) vs O(connections) claim the bench pins.
pub trait EventBackend: Send {
    /// Which implementation this is (the `pooled_transport_backend`
    /// gauge and the bench JSON report it).
    fn kind(&self) -> BackendKind;
    /// Watch `fd` with `interest`; `wait` reports it as `token`.
    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    /// Replace the interest mask of a registered fd (an *edge* — the
    /// caller only invokes this on pause/resume and write-arm/disarm
    /// transitions, never per tick).
    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()>;
    /// Stop watching `fd`. Must be called before the fd closes (poll
    /// would report `POLLNVAL` forever; epoll auto-forgets closed fds
    /// but the explicit bookkeeping keeps both backends identical).
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Park until readiness or `timeout` (`None` = forever). Clears and
    /// refills `out` with the ready set; returns the touched-entry
    /// count (see trait docs).
    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<ReadyEvent>) -> io::Result<usize>;
}

/// Portable `poll(2)` backend: a persistent registration array, updated
/// in place (O(1) per edge thanks to an fd→slot index) and handed to
/// the kernel wholesale each wait. The kernel and the revents scan both
/// walk every registered fd — the O(connections) cost per tick that
/// [`EpollBackend`] removes.
pub struct PollBackend {
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
    index: HashMap<RawFd, usize>,
}

impl PollBackend {
    /// An empty registration set.
    pub fn new() -> Self {
        Self { fds: Vec::new(), tokens: Vec::new(), index: HashMap::new() }
    }
}

impl Default for PollBackend {
    fn default() -> Self {
        Self::new()
    }
}

fn interest_to_poll(interest: Interest) -> i16 {
    let mut events = 0i16;
    if interest.readable {
        events |= POLLIN;
    }
    if interest.writable {
        events |= POLLOUT;
    }
    events
}

impl EventBackend for PollBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Poll
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        if self.index.contains_key(&fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        self.index.insert(fd, self.fds.len());
        self.fds.push(PollFd { fd, events: interest_to_poll(interest), revents: 0 });
        self.tokens.push(token);
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let &slot = self
            .index
            .get(&fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[slot].events = interest_to_poll(interest);
        self.tokens[slot] = token;
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let Some(slot) = self.index.remove(&fd) else {
            return Ok(()); // never registered: uniform teardown no-op
        };
        // Swap-remove keeps the array dense; re-point the mover's slot.
        self.fds.swap_remove(slot);
        self.tokens.swap_remove(slot);
        if slot < self.fds.len() {
            self.index.insert(self.fds[slot].fd, slot);
        }
        Ok(())
    }

    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<ReadyEvent>) -> io::Result<usize> {
        out.clear();
        let n = poll_fds(&mut self.fds, timeout)?;
        if n > 0 {
            for (pfd, &token) in self.fds.iter().zip(&self.tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(ReadyEvent {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    error: pfd.revents & (POLLERR | POLLNVAL) != 0,
                    hup: pfd.revents & POLLHUP != 0,
                });
            }
        }
        // Touched = the whole registered set: poll scanned it in the
        // kernel and this backend scanned revents — the honest per-tick
        // cost, which is what the ready-fds metric exists to expose.
        Ok(self.fds.len())
    }
}

/// Linux epoll backend: the kernel holds the interest set, so a wait
/// touches only ready fds and interest updates are single syscalls.
#[cfg(target_os = "linux")]
pub struct EpollBackend {
    epfd: RawFd,
    /// Kernel-filled event buffer, reused across waits. 1024 entries is
    /// a per-tick delivery window, not a capacity: level-triggered
    /// epoll re-reports anything still ready on the next wait.
    events: Vec<EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    /// Create the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { epfd, events: vec![EpollEvent { events: 0, data: 0 }; 1024] })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut events = 0u32;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        let mut ev = EpollEvent { events, data: token };
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

#[cfg(target_os = "linux")]
impl EventBackend for EpollBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Epoll
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::default()) {
            Ok(()) => Ok(()),
            // Never registered (or already auto-forgotten): no-op, per
            // the trait contract.
            Err(e) if e.raw_os_error() == Some(2) => Ok(()), // ENOENT
            Err(e) if e.raw_os_error() == Some(9) => Ok(()), // EBADF (already closed)
            Err(e) => Err(e),
        }
    }

    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<ReadyEvent>) -> io::Result<usize> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up like `poll_fds`: a 100µs request must park, not
            // degenerate into a hot 0ms spin.
            Some(t) => {
                t.as_millis().min(i32::MAX as u128) as i32
                    + i32::from(t.subsec_micros() % 1000 != 0 && t.as_millis() < i32::MAX as u128)
            }
        };
        let n = loop {
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.events.as_mut_ptr(),
                    self.events.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &self.events[..n] {
            // Copy out of the (possibly packed) struct before touching
            // the fields — references into packed layouts are UB.
            let bits = ev.events;
            out.push(ReadyEvent {
                token: ev.data,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & EPOLLERR != 0,
                hup: bits & EPOLLHUP != 0,
            });
        }
        // Touched = delivered events only: the kernel woke us with the
        // ready list, nothing scanned the idle herd.
        Ok(n)
    }
}

/// Construct the backend for `choice`. Errors are loud: a forced epoll
/// off Linux or a failed `epoll_create1` fails the caller's bind — the
/// server never silently downgrades to poll.
pub fn new_backend(choice: BackendChoice) -> io::Result<Box<dyn EventBackend>> {
    match choice.resolve() {
        BackendKind::Poll => Ok(Box::new(PollBackend::new())),
        #[cfg(target_os = "linux")]
        BackendKind::Epoll => Ok(Box::new(EpollBackend::new()?)),
        #[cfg(not(target_os = "linux"))]
        BackendKind::Epoll => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll backend requires Linux; use BackendChoice::Poll or Auto",
        )),
    }
}

/// CPU time consumed by the calling thread (kernel-accounted, so a
/// thread parked in `poll`/`read` accrues none). This is how the tests
/// pin "waiting burns no CPU" — wall time elapses, this doesn't.
pub fn thread_cpu_time() -> Duration {
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
        return Duration::ZERO;
    }
    Duration::new(ts.tv_sec.max(0) as u64, ts.tv_nsec.max(0) as u32)
}

/// Live thread count of this process (from `/proc/self/status`), or
/// `None` off Linux. The connection sweep uses it to prove the server
/// scales threads with event loops, not with connections.
pub fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|rest| rest.trim().parse().ok())
}

/// Summed CPU time (user + system) of every live thread in this
/// process whose name starts with `prefix`, read from
/// `/proc/self/task/*/stat`. `None` off Linux procfs or when no thread
/// matches.
///
/// This is the out-of-band counterpart to [`thread_cpu_time`]: the
/// idle-herd regression test uses it to pin the *event loops'* CPU from
/// the test thread — kernel-accounted at clock-tick (10ms) granularity,
/// so it bounds work coarsely but can't be fooled by wall time spent
/// parked.
pub fn thread_cpu_time_by_name(prefix: &str) -> Option<Duration> {
    let tick_hz = match unsafe { sysconf(SC_CLK_TCK) } {
        t if t > 0 => t as u64,
        _ => 100,
    };
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut ticks = 0u64;
    let mut matched = false;
    for task in tasks.flatten() {
        let Ok(stat) = std::fs::read_to_string(task.path().join("stat")) else {
            continue; // thread exited mid-scan
        };
        // Field 2 is `(comm)` and may contain spaces; everything after
        // the closing paren is space-separated, with utime/stime at
        // (1-indexed) fields 14/15 — i.e. 11/12 past the paren.
        let open = stat.find('(')?;
        let close = stat.rfind(')')?;
        if !stat[open + 1..close].starts_with(prefix) {
            continue;
        }
        let mut rest = stat[close + 1..].split_ascii_whitespace();
        let utime: u64 = rest.nth(11)?.parse().ok()?;
        let stime: u64 = rest.next()?.parse().ok()?;
        ticks += utime + stime;
        matched = true;
    }
    matched.then(|| Duration::from_millis(ticks.saturating_mul(1000) / tick_hz))
}

/// Best-effort `RLIMIT_NOFILE` raise to at least `want` descriptors
/// (each loopback tenant costs two — one per socket end). Returns the
/// limit now in force. Never lowers the limit.
pub fn raise_fd_limit(want: u64) -> u64 {
    let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.rlim_cur >= want {
        return lim.rlim_cur;
    }
    // Raising the soft limit within the hard limit always works;
    // raising the hard limit too needs privilege — try, fall back.
    let tries = [
        Rlimit { rlim_cur: want, rlim_max: lim.rlim_max.max(want) },
        Rlimit { rlim_cur: want.min(lim.rlim_max), rlim_max: lim.rlim_max },
    ];
    for attempt in tries {
        if unsafe { setrlimit(RLIMIT_NOFILE, &attempt) } == 0 {
            return attempt.rlim_cur;
        }
    }
    lim.rlim_cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn wake_pipe_rouses_a_parked_poll() {
        let pipe = Arc::new(WakePipe::new().expect("pipe"));
        let waker = Arc::clone(&pipe);
        let parked = std::thread::spawn(move || {
            let mut fds = [PollFd { fd: waker.read_fd(), events: POLLIN, revents: 0 }];
            let started = Instant::now();
            let n = poll_fds(&mut fds, Some(Duration::from_secs(10))).expect("poll");
            (n, fds[0].revents, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(pipe.wake(), "first wake must signal");
        assert!(!pipe.wake(), "second wake coalesces onto the armed flag");
        let (n, revents, waited) = parked.join().expect("poll thread");
        assert_eq!(n, 1);
        assert_ne!(revents & POLLIN, 0, "pipe must report readable");
        assert!(waited < Duration::from_secs(5), "wakeup, not timeout");
        pipe.drain();
        assert!(pipe.wake(), "drain re-arms the pipe");
    }

    #[test]
    fn drain_then_wake_is_never_lost() {
        let pipe = WakePipe::new().expect("pipe");
        for _ in 0..100 {
            pipe.wake();
            pipe.drain();
            assert!(pipe.wake(), "post-drain wake must signal again");
            pipe.drain();
        }
        // After a final drain the pipe is empty: poll must time out.
        let mut fds = [PollFd { fd: pipe.read_fd(), events: POLLIN, revents: 0 }];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).expect("poll");
        assert_eq!(n, 0, "drained pipe must not be readable");
    }

    #[test]
    fn zero_timeout_poll_is_a_nonblocking_probe() {
        let pipe = WakePipe::new().expect("pipe");
        let mut fds = [PollFd { fd: pipe.read_fd(), events: POLLIN, revents: 0 }];
        let started = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::ZERO)).expect("poll");
        assert_eq!(n, 0);
        assert!(started.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn thread_cpu_time_tracks_work_not_sleep() {
        let before = thread_cpu_time();
        std::thread::sleep(Duration::from_millis(50));
        let slept = thread_cpu_time() - before;
        assert!(slept < Duration::from_millis(40), "sleep burned {slept:?} of CPU");
        // And it does advance under actual work.
        let before = thread_cpu_time();
        let mut acc = 0u64;
        while thread_cpu_time() - before < Duration::from_millis(5) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        assert!(acc != 42, "keep the loop observable");
    }

    #[test]
    fn thread_count_sees_spawned_threads() {
        let Some(base) = thread_count() else {
            return; // not on Linux procfs; helper is allowed to opt out
        };
        assert!(base >= 1);
        let stop = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                })
            })
            .collect();
        let with_threads = thread_count().expect("procfs stays readable");
        assert!(with_threads >= base + 4, "expected {base}+4 threads, saw {with_threads}");
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("spinner");
        }
    }

    #[test]
    fn fd_limit_raise_reports_a_usable_limit() {
        let now = raise_fd_limit(256);
        assert!(now >= 256, "any sane environment grants 256 fds, got {now}");
    }

    /// Exercise one backend through the full interest-edge lifecycle
    /// against a pipe: register read-side, observe readability only
    /// after bytes arrive, arm and disarm write interest on the write
    /// side, deregister (including the never-registered no-op).
    fn backend_lifecycle(mut backend: Box<dyn EventBackend>) {
        let pipe = WakePipe::new().expect("pipe");
        let mut out = Vec::new();
        backend.register(pipe.read_fd(), 7, Interest::READ).expect("register");
        let touched = backend.wait(Some(Duration::from_millis(10)), &mut out).expect("wait");
        assert!(out.is_empty(), "empty pipe must not be readable: {out:?}");
        assert!(touched <= 1, "at most the registered fd is touched, got {touched}");

        pipe.wake();
        backend.wait(Some(Duration::from_secs(5)), &mut out).expect("wait");
        assert_eq!(out.len(), 1, "one ready fd expected: {out:?}");
        assert_eq!(out[0].token, 7);
        assert!(out[0].readable && !out[0].writable);

        // Masking read interest hides the pending byte (level-triggered
        // delivery honors the mask) without losing it.
        backend.modify(pipe.read_fd(), 7, Interest::default()).expect("mask");
        backend.wait(Some(Duration::from_millis(10)), &mut out).expect("wait");
        assert!(out.is_empty(), "masked fd must not report: {out:?}");
        backend.modify(pipe.read_fd(), 7, Interest::READ).expect("unmask");
        backend.wait(Some(Duration::from_millis(10)), &mut out).expect("wait");
        assert_eq!(out.len(), 1, "unmasked fd reports the still-pending byte");

        // An empty pipe's write side is writable the moment it's armed.
        backend
            .register(pipe.write_fd, 9, Interest { readable: false, writable: true })
            .expect("register write side");
        backend.wait(Some(Duration::from_secs(5)), &mut out).expect("wait");
        assert!(
            out.iter().any(|ev| ev.token == 9 && ev.writable),
            "write side must report writable: {out:?}"
        );

        backend.deregister(pipe.read_fd()).expect("deregister");
        backend.deregister(pipe.write_fd).expect("deregister");
        backend.deregister(pipe.read_fd()).expect("double deregister is a no-op");
        let touched = backend.wait(Some(Duration::ZERO), &mut out).expect("wait");
        assert!(out.is_empty() && touched == 0, "empty set: nothing touched");
    }

    #[test]
    fn poll_backend_lifecycle() {
        backend_lifecycle(Box::new(PollBackend::new()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_lifecycle() {
        backend_lifecycle(Box::new(EpollBackend::new().expect("epoll_create1")));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn auto_choice_resolves_to_epoll_on_linux() {
        assert_eq!(BackendChoice::Auto.resolve(), BackendKind::Epoll);
        assert_eq!(new_backend(BackendChoice::Auto).expect("auto").kind(), BackendKind::Epoll);
        assert_eq!(new_backend(BackendChoice::Poll).expect("poll").kind(), BackendKind::Poll);
    }

    #[test]
    fn writev_gathers_segments_in_one_syscall() {
        let pipe = WakePipe::new().expect("pipe");
        let (a, b, c) = (b"hello ".as_slice(), b"vectored ".as_slice(), b"world".as_slice());
        let iovs = [IoVec::from_slice(a), IoVec::from_slice(b), IoVec::from_slice(c)];
        let wrote = writev_fd(pipe.write_fd, &iovs).expect("writev");
        assert_eq!(wrote, a.len() + b.len() + c.len());
        let mut got = [0u8; 64];
        let n = unsafe { read(pipe.read_fd(), got.as_mut_ptr(), got.len()) };
        assert_eq!(&got[..n as usize], b"hello vectored world");
    }

    #[test]
    fn writev_partial_write_reports_the_accepted_prefix() {
        let pipe = WakePipe::new().expect("pipe");
        // A pipe's capacity is finite (64KiB default); two oversized
        // segments cannot both land, so the kernel takes a prefix.
        let big = vec![0xABu8; 1 << 20];
        let iovs = [IoVec::from_slice(&big), IoVec::from_slice(&big)];
        let wrote = writev_fd(pipe.write_fd, &iovs).expect("writev");
        assert!(wrote > 0, "nonblocking pipe accepts something");
        assert!(wrote < 2 * big.len(), "a 2MiB gather cannot fit a pipe");
        // The pipe is now full: the next vectored write must refuse,
        // not block (the event loop relies on this).
        let mut drained = 0usize;
        let mut buf = vec![0u8; 1 << 16];
        loop {
            match writev_fd(pipe.write_fd, &iovs) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Ok(n) => {
                    // Kernel found room (scheduling); drain and retry.
                    assert!(n > 0);
                    let got = unsafe { read(pipe.read_fd(), buf.as_mut_ptr(), buf.len()) };
                    assert!(got > 0);
                    drained += got as usize;
                    assert!(drained < 64 << 20, "pipe never fills? drained {drained}");
                }
                Err(e) => panic!("unexpected writev error: {e}"),
            }
        }
    }

    #[test]
    fn thread_cpu_by_name_accounts_a_spinning_thread() {
        if !std::path::Path::new("/proc/self/task").exists() {
            return; // helper is allowed to opt out off procfs
        }
        let stop = Arc::new(AtomicBool::new(false));
        let spinner = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("reactor-spin-probe".into())
                .spawn(move || {
                    let mut acc = 1u64;
                    while !stop.load(Ordering::Relaxed) {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    acc
                })
                .expect("spawn")
        };
        // Spin long enough to cross several 10ms accounting ticks.
        std::thread::sleep(Duration::from_millis(120));
        let burned = thread_cpu_time_by_name("reactor-spin").expect("matched the spinner");
        stop.store(true, Ordering::Relaxed);
        assert!(spinner.join().expect("spinner") != 42);
        assert!(
            burned >= Duration::from_millis(20),
            "a 120ms spin must account ≥20ms of CPU, saw {burned:?}"
        );
        assert!(
            thread_cpu_time_by_name("no-such-thread-name").is_none(),
            "unmatched prefix reports None"
        );
    }
}
