//! Length-prefixed binary framing for the engine's wire types.
//!
//! Every frame is `header ‖ payload ‖ checksum` with an **explicit
//! little-endian field layout** — fields are written byte by byte, never
//! `unsafe`-transmuted, so the format is identical across platforms and
//! independent of Rust struct layout:
//!
//! ```text
//! offset  size  field
//! 0       1     magic      (0xD5 — rejects non-protocol peers fast)
//! 1       1     version    (1; any other value is rejected)
//! 2       1     msg type   (1=SUBMIT 2=RESULT 3=BUSY 4=REJECT 5=PREWARM
//!                           6=STATS 7=STATS_REQUEST)
//! 3       1     reserved   (0)
//! 4       4     payload length, u32 LE (fixed per msg type)
//! 8       len   payload    (layouts below)
//! 8+len   8     checksum, u64 LE over header ‖ payload
//! ```
//!
//! The payload length is *redundant* on purpose: each message type has
//! exactly one legal length, and a mismatch is rejected before any
//! payload byte is interpreted — a corrupted length can neither trigger
//! a huge allocation nor desynchronize the stream parser. The checksum
//! is the workspace's `mix64` chain ([`Digest`]) over the length-tagged
//! bytes; it detects corruption, not tampering (the transport trusts its
//! network like the in-process queues trust their callers).
//!
//! Payload layouts (all integers little-endian):
//!
//! `SUBMIT` — a [`JobSpec`], 60 bytes: `id:u64, n:u64, k:u64, m:u64,
//! design_seed:u64, job_seed:u64, c_milli:u32, query_cost_micros:u32,
//! design_kind:u8, decoder:u8, pad:u16(=0)`.
//!
//! `RESULT` — a [`JobResult`], 64 bytes: `id:u64, support_digest:u64,
//! score_digest:u64, decode_micros:u64, queue_micros:u64,
//! total_micros:u64, hits:u32, weight:u32, worker:u32, decoder:u8,
//! exact:u8(0|1), pad:u16(=0)`.
//!
//! `BUSY` / `REJECT` — 8 bytes: the job `id` the server could not accept
//! right now (backpressure — retry) or will never accept (infeasible
//! spec — don't).
//!
//! `PREWARM` — a [`DesignKey`], 32 bytes: `n:u64, m:u64, design_seed:u64,
//! c_milli:u32, design_kind:u8, pad:[u8;3](=0)`. Client → server,
//! fire-and-forget: warm the node's design cache for this key (the
//! router's standby-warming path). No reply — a node that cannot warm
//! simply pays the miss later.
//!
//! `STATS` — a token-correlated [`EngineStats`] snapshot, 7992 bytes of
//! u64 LE words (server → client, answering `STATS_REQUEST`): the echoed
//! request token, the scalar counters and gauges, both latency
//! [`Summary`] accumulators as raw Welford parts (`count` plus
//! `mean/m2/min/max` as `f64::to_bits` words — lossless, so the far
//! side's merged moments are bit-identical to a local merge), and the
//! full [`LatencyHistogram`]: `count`, `sum_micros`, `max_micros`, then
//! all [`LATENCY_BUCKETS`] bucket counters. Fixed-size like every other
//! frame — one legal length, checked before any payload byte is read.
//!
//! `STATS_REQUEST` — 8 bytes: an opaque correlation token the server
//! echoes back in its `STATS` reply (client → server). A server whose
//! session cannot observe engine stats sends no reply; the scraper's
//! read deadline turns that silence into a `stats_unavailable` marker.

use std::sync::Arc;

use pooled_design::factory::DesignKind;
use pooled_lab::histogram::{LatencyHistogram, LATENCY_BUCKETS};
use pooled_stats::summary::Summary;

use crate::cache::DesignKey;
use crate::engine::EngineStats;
use crate::job::{DecoderKind, DesignSpec, Digest, JobResult, JobSpec};
use crate::telemetry::{Metric, MetricsRegistry};

/// First byte of every frame.
pub const MAGIC: u8 = 0xD5;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size (magic, version, type, reserved, length).
pub const HEADER_LEN: usize = 8;
/// Trailing checksum size.
pub const CHECKSUM_LEN: usize = 8;
/// `SUBMIT` payload size.
pub const SPEC_PAYLOAD_LEN: usize = 60;
/// `RESULT` payload size.
pub const RESULT_PAYLOAD_LEN: usize = 64;
/// `BUSY` / `REJECT` payload size.
pub const ID_PAYLOAD_LEN: usize = 8;
/// `PREWARM` payload size.
pub const KEY_PAYLOAD_LEN: usize = 32;
/// `STATS` payload size: token + 9 scalar words + 2×5 summary words +
/// 3 histogram scalars + [`LATENCY_BUCKETS`] bucket counters, 8 bytes
/// each.
pub const STATS_PAYLOAD_LEN: usize = (1 + 9 + 10 + 3 + LATENCY_BUCKETS) * 8;
/// `STATS_REQUEST` payload size (the correlation token).
pub const STATS_REQUEST_PAYLOAD_LEN: usize = 8;
/// Largest whole frame the protocol can produce.
pub const MAX_FRAME_LEN: usize = HEADER_LEN + STATS_PAYLOAD_LEN + CHECKSUM_LEN;

const TYPE_SUBMIT: u8 = 1;
const TYPE_RESULT: u8 = 2;
const TYPE_BUSY: u8 = 3;
const TYPE_REJECT: u8 = 4;
const TYPE_PREWARM: u8 = 5;
const TYPE_STATS: u8 = 6;
const TYPE_STATS_REQUEST: u8 = 7;

/// A server's answer to a `STATS_REQUEST`: the far-side engine's
/// telemetry snapshot, tagged with the request's correlation token so a
/// scraper can discard stale replies after a timeout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StatsReply {
    /// Echo of the request token this snapshot answers.
    pub token: u64,
    /// The serving engine's stats at scrape time.
    pub stats: EngineStats,
}

/// One decoded wire message.
//
// The STATS variant embeds a full fixed-size histogram (~8 KiB), which
// dwarfs the other variants; boxing it would forfeit `Copy` for the hot
// SUBMIT/RESULT frames and put an allocation on the scrape path, so the
// size skew is accepted deliberately.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: run this job.
    Submit(JobSpec),
    /// Server → client: one completed job.
    Result(JobResult),
    /// Server → client: the submission queue was full when job `id`
    /// arrived (backpressure made explicit — the client may retry).
    Busy(u64),
    /// Server → client: job `id` is infeasible and will never be
    /// accepted (do not retry).
    Reject(u64),
    /// Client → server, fire-and-forget: warm the design cache for this
    /// key before traffic arrives (standby keep-warm). Never answered.
    Prewarm(DesignKey),
    /// Server → client: the engine-stats snapshot answering a
    /// [`Frame::StatsRequest`] with the same token.
    Stats(StatsReply),
    /// Client → server: scrape the serving engine's stats. The reply is
    /// a [`Frame::Stats`] echoing the token; a session with no stats to
    /// report stays silent and lets the scraper's deadline expire.
    StatsRequest(u64),
}

/// Why a byte sequence is not a valid frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// First byte is not [`MAGIC`].
    BadMagic(u8),
    /// Version byte differs from [`VERSION`].
    BadVersion(u8),
    /// Unknown message type byte.
    UnknownType(u8),
    /// Payload length does not match the message type's fixed layout.
    BadLength {
        /// The offending message type.
        msg_type: u8,
        /// The length the header claimed.
        got: u32,
    },
    /// Fewer bytes than the frame needs.
    Truncated {
        /// Bytes the frame needs in total.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Checksum mismatch — the frame was corrupted in flight.
    BadChecksum,
    /// An enum byte is outside its domain.
    BadEnum {
        /// Which field.
        field: &'static str,
        /// The offending code.
        code: u8,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownType(t) => write!(f, "unknown message type {t}"),
            FrameError::BadLength { msg_type, got } => {
                write!(f, "payload length {got} is illegal for message type {msg_type}")
            }
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: {got} of {needed} bytes")
            }
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadEnum { field, code } => {
                write!(f, "field {field} has out-of-domain code {code}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Checksum of the length-tagged byte stream: `mix64`-chained words, the
/// same digest primitive the determinism fingerprints use. Shared with
/// the durable tier — WAL records and design snapshots carry exactly
/// this checksum, so the on-disk and on-wire formats corrupt-detect the
/// same way.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        d.push(u64::from_le_bytes(word));
    }
    d.finish()
}

/// Reserved wire code of the hidden panic-probe decoder, which is
/// deliberately absent from [`DecoderKind::ALL`] (it exists only to
/// exercise worker panic containment) yet must survive the wire so the
/// containment tests run over TCP too.
const DECODER_CODE_PANIC_PROBE: u8 = 0xFE;

/// Wire code of a decoder (index in [`DecoderKind::ALL`] — stable because
/// `ALL` is the presentation order the whole workspace keys on).
fn decoder_code(kind: DecoderKind) -> u8 {
    if kind == DecoderKind::PanicProbe {
        return DECODER_CODE_PANIC_PROBE;
    }
    DecoderKind::ALL.iter().position(|&k| k == kind).expect("decoder in ALL") as u8
}

fn decoder_from_code(code: u8) -> Result<DecoderKind, FrameError> {
    if code == DECODER_CODE_PANIC_PROBE {
        return Ok(DecoderKind::PanicProbe);
    }
    DecoderKind::ALL
        .get(code as usize)
        .copied()
        .ok_or(FrameError::BadEnum { field: "decoder", code })
}

fn design_code(kind: DesignKind) -> u8 {
    DesignKind::ALL.iter().position(|&k| k == kind).expect("design kind in ALL") as u8
}

fn design_from_code(code: u8) -> Result<DesignKind, FrameError> {
    DesignKind::ALL
        .get(code as usize)
        .copied()
        .ok_or(FrameError::BadEnum { field: "design_kind", code })
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn get_usize(bytes: &[u8], at: usize, field: &'static str) -> Result<usize, FrameError> {
    usize::try_from(get_u64(bytes, at)).map_err(|_| FrameError::BadEnum { field, code: u8::MAX })
}

fn payload_len_of(msg_type: u8) -> Result<usize, FrameError> {
    match msg_type {
        TYPE_SUBMIT => Ok(SPEC_PAYLOAD_LEN),
        TYPE_RESULT => Ok(RESULT_PAYLOAD_LEN),
        TYPE_BUSY | TYPE_REJECT => Ok(ID_PAYLOAD_LEN),
        TYPE_PREWARM => Ok(KEY_PAYLOAD_LEN),
        TYPE_STATS => Ok(STATS_PAYLOAD_LEN),
        TYPE_STATS_REQUEST => Ok(STATS_REQUEST_PAYLOAD_LEN),
        other => Err(FrameError::UnknownType(other)),
    }
}

/// Append a [`Summary`]'s raw Welford parts as 5 LE words (`f64`s via
/// `to_bits`, so the far side reconstructs the accumulator bit-exactly).
fn put_summary(buf: &mut Vec<u8>, s: &Summary) {
    let (count, mean, m2, min, max) = s.raw_parts();
    put_u64(buf, count);
    put_u64(buf, mean.to_bits());
    put_u64(buf, m2.to_bits());
    put_u64(buf, min.to_bits());
    put_u64(buf, max.to_bits());
}

fn get_summary(bytes: &[u8], at: usize) -> Summary {
    Summary::from_raw_parts(
        get_u64(bytes, at),
        f64::from_bits(get_u64(bytes, at + 8)),
        f64::from_bits(get_u64(bytes, at + 16)),
        f64::from_bits(get_u64(bytes, at + 24)),
        f64::from_bits(get_u64(bytes, at + 32)),
    )
}

/// Serialize `frame` into `buf` (cleared first; reuse the buffer across
/// frames to keep the wire path allocation-free after warm-up).
pub fn encode_frame(frame: &Frame, buf: &mut Vec<u8>) {
    buf.clear();
    let (msg_type, payload_len) = match frame {
        Frame::Submit(_) => (TYPE_SUBMIT, SPEC_PAYLOAD_LEN),
        Frame::Result(_) => (TYPE_RESULT, RESULT_PAYLOAD_LEN),
        Frame::Busy(_) => (TYPE_BUSY, ID_PAYLOAD_LEN),
        Frame::Reject(_) => (TYPE_REJECT, ID_PAYLOAD_LEN),
        Frame::Prewarm(_) => (TYPE_PREWARM, KEY_PAYLOAD_LEN),
        Frame::Stats(_) => (TYPE_STATS, STATS_PAYLOAD_LEN),
        Frame::StatsRequest(_) => (TYPE_STATS_REQUEST, STATS_REQUEST_PAYLOAD_LEN),
    };
    buf.reserve(HEADER_LEN + payload_len + CHECKSUM_LEN);
    buf.push(MAGIC);
    buf.push(VERSION);
    buf.push(msg_type);
    buf.push(0); // reserved
    put_u32(buf, payload_len as u32);
    match frame {
        Frame::Submit(spec) => {
            put_u64(buf, spec.id);
            put_u64(buf, spec.n as u64);
            put_u64(buf, spec.k as u64);
            put_u64(buf, spec.m as u64);
            put_u64(buf, spec.design.seed);
            put_u64(buf, spec.seed);
            put_u32(buf, spec.design.c_milli);
            put_u32(buf, spec.query_cost_micros);
            buf.push(design_code(spec.design.kind));
            buf.push(decoder_code(spec.decoder));
            put_u16(buf, 0); // pad
        }
        Frame::Result(r) => {
            put_u64(buf, r.id);
            put_u64(buf, r.support_digest);
            put_u64(buf, r.score_digest);
            put_u64(buf, r.decode_micros);
            put_u64(buf, r.queue_micros);
            put_u64(buf, r.total_micros);
            put_u32(buf, r.hits);
            put_u32(buf, r.weight);
            put_u32(buf, r.worker);
            buf.push(decoder_code(r.decoder));
            buf.push(r.exact as u8);
            put_u16(buf, 0); // pad
        }
        Frame::Busy(id) | Frame::Reject(id) => put_u64(buf, *id),
        Frame::Prewarm(key) => {
            put_u64(buf, key.n as u64);
            put_u64(buf, key.m as u64);
            put_u64(buf, key.seed);
            put_u32(buf, key.c_milli);
            buf.push(design_code(key.kind));
            buf.extend_from_slice(&[0u8; 3]); // pad
        }
        Frame::Stats(reply) => {
            let s = &reply.stats;
            put_u64(buf, reply.token);
            put_u64(buf, s.jobs_completed);
            put_u64(buf, s.jobs_poisoned);
            put_u64(buf, s.exact_recoveries);
            put_u64(buf, s.cache_hits);
            put_u64(buf, s.cache_misses);
            put_u64(buf, s.cache_len as u64);
            put_u64(buf, s.queued_jobs as u64);
            put_u64(buf, s.pending_results as u64);
            put_u64(buf, s.workers as u64);
            put_summary(buf, &s.total_latency);
            put_summary(buf, &s.decode_latency);
            put_u64(buf, s.histogram.count());
            put_u64(buf, s.histogram.sum_micros());
            put_u64(buf, s.histogram.max_micros());
            for &b in s.histogram.bucket_counts() {
                put_u64(buf, b);
            }
        }
        Frame::StatsRequest(token) => put_u64(buf, *token),
    }
    debug_assert_eq!(buf.len(), HEADER_LEN + payload_len);
    let ck = checksum(buf);
    put_u64(buf, ck);
}

/// Parse one frame from the front of `bytes`; returns the frame and how
/// many bytes it consumed. Never reads past the frame, never allocates,
/// and never interprets a payload byte before magic, version, type,
/// length and checksum have all been verified.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated { needed: HEADER_LEN, got: bytes.len() });
    }
    if bytes[0] != MAGIC {
        return Err(FrameError::BadMagic(bytes[0]));
    }
    if bytes[1] != VERSION {
        return Err(FrameError::BadVersion(bytes[1]));
    }
    let msg_type = bytes[2];
    let expected = payload_len_of(msg_type)?;
    let claimed = get_u32(bytes, 4);
    if claimed as usize != expected {
        return Err(FrameError::BadLength { msg_type, got: claimed });
    }
    let total = HEADER_LEN + expected + CHECKSUM_LEN;
    if bytes.len() < total {
        return Err(FrameError::Truncated { needed: total, got: bytes.len() });
    }
    let body = &bytes[..HEADER_LEN + expected];
    if checksum(body) != get_u64(bytes, HEADER_LEN + expected) {
        return Err(FrameError::BadChecksum);
    }
    let p = &bytes[HEADER_LEN..HEADER_LEN + expected];
    let frame = match msg_type {
        TYPE_SUBMIT => Frame::Submit(JobSpec {
            id: get_u64(p, 0),
            n: get_usize(p, 8, "n")?,
            k: get_usize(p, 16, "k")?,
            m: get_usize(p, 24, "m")?,
            design: DesignSpec {
                kind: design_from_code(p[56])?,
                c_milli: get_u32(p, 48),
                seed: get_u64(p, 32),
            },
            decoder: decoder_from_code(p[57])?,
            seed: get_u64(p, 40),
            query_cost_micros: get_u32(p, 52),
        }),
        TYPE_RESULT => Frame::Result(JobResult {
            id: get_u64(p, 0),
            decoder: decoder_from_code(p[60])?,
            exact: match p[61] {
                0 => false,
                1 => true,
                code => return Err(FrameError::BadEnum { field: "exact", code }),
            },
            hits: get_u32(p, 48),
            weight: get_u32(p, 52),
            support_digest: get_u64(p, 8),
            score_digest: get_u64(p, 16),
            decode_micros: get_u64(p, 24),
            queue_micros: get_u64(p, 32),
            total_micros: get_u64(p, 40),
            worker: get_u32(p, 56),
        }),
        TYPE_BUSY => Frame::Busy(get_u64(p, 0)),
        TYPE_REJECT => Frame::Reject(get_u64(p, 0)),
        TYPE_PREWARM => Frame::Prewarm(DesignKey {
            n: get_usize(p, 0, "n")?,
            m: get_usize(p, 8, "m")?,
            kind: design_from_code(p[28])?,
            c_milli: get_u32(p, 24),
            seed: get_u64(p, 16),
        }),
        TYPE_STATS => {
            let mut buckets = [0u64; LATENCY_BUCKETS];
            for (i, b) in buckets.iter_mut().enumerate() {
                *b = get_u64(p, 184 + i * 8);
            }
            Frame::Stats(StatsReply {
                token: get_u64(p, 0),
                stats: EngineStats {
                    jobs_completed: get_u64(p, 8),
                    jobs_poisoned: get_u64(p, 16),
                    exact_recoveries: get_u64(p, 24),
                    cache_hits: get_u64(p, 32),
                    cache_misses: get_u64(p, 40),
                    cache_len: get_usize(p, 48, "cache_len")?,
                    queued_jobs: get_usize(p, 56, "queued_jobs")?,
                    pending_results: get_usize(p, 64, "pending_results")?,
                    workers: get_usize(p, 72, "workers")?,
                    total_latency: get_summary(p, 80),
                    decode_latency: get_summary(p, 120),
                    histogram: LatencyHistogram::from_raw_parts(
                        buckets,
                        get_u64(p, 160),
                        get_u64(p, 168),
                        get_u64(p, 176),
                    ),
                },
            })
        }
        TYPE_STATS_REQUEST => Frame::StatsRequest(get_u64(p, 0)),
        _ => unreachable!("payload_len_of admitted the type"),
    };
    Ok((frame, total))
}

/// Write one frame to `w` (buffered writers should flush when their
/// burst ends, not per frame). `scratch` is the reusable encode buffer.
pub fn write_frame<W: std::io::Write>(
    w: &mut W,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> std::io::Result<()> {
    encode_frame(frame, scratch);
    w.write_all(scratch)
}

/// A segment-queue sink: accepts whole encoded frames as discrete
/// owned buffers instead of a byte stream.
///
/// This is the zero-copy outbound contract. [`FrameWriter::send_segment`]
/// borrows a recycled buffer from the sink, encodes the frame straight
/// into it, and hands the buffer back as the queue entry — after the
/// encode, no byte of the frame is ever copied or memmoved again; the
/// drain side (a vectored `writev` over the queued segments) only
/// advances an offset.
pub trait SegmentSink {
    /// A cleared, reusable buffer to encode the next frame into (the
    /// sink's recycle pool keeps the steady state allocation-free).
    fn take_buffer(&mut self) -> Vec<u8>;
    /// Queue `segment` — one whole encoded frame — for transmission.
    fn push_segment(&mut self, segment: Vec<u8>);
}

/// A sink plus its reusable encode scratch — the pairing every frame
/// producer needs (the server's per-connection writer, a remote node's
/// submission half). One definition here so a future change to the
/// encode path has exactly one home.
///
/// The sink is either a byte stream ([`std::io::Write`]: `send` encodes
/// into the shared scratch and streams it) or a [`SegmentSink`]
/// (`send_segment` encodes into a sink-owned buffer that *becomes* the
/// queue entry — the event-loop server's zero-copy outbound path).
pub struct FrameWriter<W> {
    w: W,
    scratch: Vec<u8>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<W> FrameWriter<W> {
    /// Wrap a sink (callers hand in a `BufWriter` when batching).
    pub fn new(w: W) -> Self {
        Self { w, scratch: Vec::new(), metrics: None }
    }

    /// [`Self::new`] with wire accounting: every frame that reaches the
    /// sink adds its encoded byte count to [`Metric::WireBytesTx`] and
    /// bumps [`Metric::WireFramesTx`].
    pub fn with_metrics(w: W, metrics: Arc<MetricsRegistry>) -> Self {
        Self { w, scratch: Vec::new(), metrics: Some(metrics) }
    }

    fn meter(&self, encoded_len: usize) {
        if let Some(metrics) = &self.metrics {
            metrics.add(Metric::WireBytesTx, encoded_len as u64);
            metrics.inc(Metric::WireFramesTx);
        }
    }

    /// The underlying sink (the event-loop server keeps a connection's
    /// outbound segment queue inside its writer and drains it against
    /// the socket between readiness ticks).
    pub fn get_ref(&self) -> &W {
        &self.w
    }

    /// Mutable access to the underlying sink.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.w
    }
}

impl<W: std::io::Write> FrameWriter<W> {
    /// Encode and write one frame (buffered until [`Self::flush`] when
    /// the sink buffers).
    pub fn send(&mut self, frame: &Frame) -> std::io::Result<()> {
        write_frame(&mut self.w, frame, &mut self.scratch)?;
        self.meter(self.scratch.len());
        Ok(())
    }

    /// Flush the sink.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }
}

impl<W: SegmentSink> FrameWriter<W> {
    /// Encode one frame directly into a sink-recycled buffer and queue
    /// it as a discrete segment. Infallible: queueing into memory has
    /// no I/O to fail — backpressure is the *caller's* contract (the
    /// server pauses reading a tenant whose queue passes high water).
    pub fn send_segment(&mut self, frame: &Frame) {
        let mut segment = self.w.take_buffer();
        encode_frame(frame, &mut segment);
        let len = segment.len();
        self.w.push_segment(segment);
        self.meter(len);
    }
}

/// Read one frame from `r`. `Ok(None)` is a clean end of stream (EOF
/// before the first header byte); an EOF mid-frame is an error. Malformed
/// frames surface as [`std::io::ErrorKind::InvalidData`] wrapping the
/// [`FrameError`] — the caller should drop the connection, since a
/// framing error leaves no way to resynchronize the stream.
pub fn read_frame<R: std::io::Read>(
    r: &mut R,
    scratch: &mut Vec<u8>,
) -> std::io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    // Distinguish clean EOF (no bytes at all) from a torn header.
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let got = r.read(&mut header[filled..])?;
        if got == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(invalid(FrameError::Truncated { needed: HEADER_LEN, got: filled }));
        }
        filled += got;
    }
    // Validate the header before trusting its length (bounded by the
    // fixed per-type layouts, so no attacker-controlled allocation).
    if header[0] != MAGIC {
        return Err(invalid(FrameError::BadMagic(header[0])));
    }
    if header[1] != VERSION {
        return Err(invalid(FrameError::BadVersion(header[1])));
    }
    let payload_len = payload_len_of(header[2]).map_err(invalid)?;
    let rest = payload_len + CHECKSUM_LEN;
    scratch.clear();
    scratch.extend_from_slice(&header);
    scratch.resize(HEADER_LEN + rest, 0);
    r.read_exact(&mut scratch[HEADER_LEN..])?;
    match decode_frame(scratch) {
        Ok((frame, _)) => Ok(Some(frame)),
        Err(e) => Err(invalid(e)),
    }
}

/// [`read_frame`] with wire accounting: a decoded frame adds its whole
/// byte count (header ‖ payload ‖ checksum) to [`Metric::WireBytesRx`]
/// and bumps [`Metric::WireFramesRx`]; a checksum mismatch bumps
/// [`Metric::WireChecksumRejects`] before the error surfaces.
pub fn read_frame_metered<R: std::io::Read>(
    r: &mut R,
    scratch: &mut Vec<u8>,
    metrics: &MetricsRegistry,
) -> std::io::Result<Option<Frame>> {
    let out = read_frame(r, scratch);
    match &out {
        Ok(Some(_)) => {
            metrics.add(Metric::WireBytesRx, scratch.len() as u64);
            metrics.inc(Metric::WireFramesRx);
        }
        Err(e) if is_checksum_reject(e) => metrics.inc(Metric::WireChecksumRejects),
        _ => {}
    }
    out
}

/// Incremental frame decoder for nonblocking reads: feed whatever byte
/// run the socket produced via [`FrameAssembler::extend`], then pull
/// complete frames with [`FrameAssembler::next_frame`] until it returns
/// `Ok(None)` ("need more bytes"). Partial frames stay buffered across
/// calls, so a tenant dribbling one byte per readiness tick still
/// decodes correctly — just slowly, and at its own expense only.
///
/// Unlike [`read_frame`], truncation is *not* an error here — it is the
/// steady state between reads. Every other [`FrameError`] is fatal to
/// the stream (no resync point), exactly as on the blocking path.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` — decoded frames are logically removed
    /// by advancing this, and physically removed by [`Self::compact`]
    /// so a long-lived connection doesn't grow the buffer forever.
    pos: usize,
}

impl FrameAssembler {
    /// An empty assembler (per-connection; holds no fd).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a partial frame, or complete
    /// frames not yet pulled).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, returning it with its encoded
    /// byte count (for wire accounting). `Ok(None)` means the buffer
    /// holds only a frame prefix — extend and retry after the next
    /// read. Any `Err` is unrecoverable: drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<(Frame, usize)>, FrameError> {
        // Eager desync detection: magic, version, and type are each a
        // single byte, so a stream gone bad is caught on the first bad
        // byte — a garbage-spraying peer is dropped immediately instead
        // of being buffered until a full header accumulates.
        let pending = &self.buf[self.pos..];
        if !pending.is_empty() && pending[0] != MAGIC {
            return Err(FrameError::BadMagic(pending[0]));
        }
        if pending.len() >= 2 && pending[1] != VERSION {
            return Err(FrameError::BadVersion(pending[1]));
        }
        if pending.len() >= 3 {
            payload_len_of(pending[2])?;
        }
        match decode_frame(&self.buf[self.pos..]) {
            Ok((frame, consumed)) => {
                self.pos += consumed;
                if self.pos == self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                Ok(Some((frame, consumed)))
            }
            Err(FrameError::Truncated { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// [`Self::next_frame`] with the wire accounting contract of
    /// [`read_frame_metered`]: each decoded frame adds its whole byte
    /// count to [`Metric::WireBytesRx`] and bumps
    /// [`Metric::WireFramesRx`]; a checksum mismatch bumps
    /// [`Metric::WireChecksumRejects`] before the error surfaces.
    pub fn next_frame_metered(
        &mut self,
        metrics: &MetricsRegistry,
    ) -> Result<Option<(Frame, usize)>, FrameError> {
        let out = self.next_frame();
        match &out {
            Ok(Some((_, consumed))) => {
                metrics.add(Metric::WireBytesRx, *consumed as u64);
                metrics.inc(Metric::WireFramesRx);
            }
            Err(FrameError::BadChecksum) => metrics.inc(Metric::WireChecksumRejects),
            _ => {}
        }
        out
    }

    /// Physically drop the consumed prefix once it dominates the buffer
    /// (amortized O(1) per byte — each byte moves at most once).
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

fn is_checksum_reject(e: &std::io::Error) -> bool {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<FrameError>())
        .is_some_and(|fe| *fe == FrameError::BadChecksum)
}

fn invalid(e: FrameError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            id: 42,
            n: 1000,
            k: 7,
            m: 420,
            design: DesignSpec { kind: DesignKind::NoReplace, c_milli: 350, seed: 0xDEAD_BEEF },
            decoder: DecoderKind::GeneralMn,
            seed: 0x1234_5678_9ABC_DEF0,
            query_cost_micros: 2_000,
        }
    }

    fn result() -> JobResult {
        JobResult {
            id: 42,
            decoder: DecoderKind::Mn,
            exact: true,
            hits: 7,
            weight: 7,
            support_digest: 0x1111_2222_3333_4444,
            score_digest: 0x5555_6666_7777_8888,
            decode_micros: 314,
            queue_micros: 159,
            total_micros: 2_653,
            worker: 3,
        }
    }

    fn design_key() -> DesignKey {
        DesignKey { n: 1000, m: 420, kind: DesignKind::NoReplace, c_milli: 350, seed: 0xDEAD_BEEF }
    }

    fn stats_reply() -> StatsReply {
        let mut stats = EngineStats::zero();
        stats.jobs_completed = 1234;
        stats.jobs_poisoned = 3;
        stats.exact_recoveries = 1200;
        stats.cache_hits = 999;
        stats.cache_misses = 17;
        stats.cache_len = 16;
        stats.queued_jobs = 5;
        stats.pending_results = 2;
        stats.workers = 8;
        for i in 0..100u64 {
            stats.total_latency.push(4_000.0 + i as f64 * 13.5);
            stats.decode_latency.push(250.0 + i as f64);
            stats.histogram.record_micros(4_000 + i * 13);
        }
        StatsReply { token: 0xFEED_F00D_CAFE_0001, stats }
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        for frame in [
            Frame::Submit(spec()),
            Frame::Result(result()),
            Frame::Busy(9),
            Frame::Reject(11),
            Frame::Prewarm(design_key()),
            Frame::Stats(stats_reply()),
            Frame::StatsRequest(0xA5A5),
        ] {
            encode_frame(&frame, &mut buf);
            let (decoded, consumed) = decode_frame(&buf).expect("round trip");
            assert_eq!(decoded, frame);
            assert_eq!(consumed, buf.len());
            assert!(buf.len() <= MAX_FRAME_LEN);
        }
    }

    #[test]
    fn segment_writer_emits_one_decodable_segment_per_frame() {
        /// Minimal recording sink: keeps every segment it was handed
        /// and counts how many recycled buffers were requested.
        #[derive(Default)]
        struct RecordingSink {
            segments: Vec<Vec<u8>>,
            recycled: Vec<Vec<u8>>,
        }
        impl SegmentSink for RecordingSink {
            fn take_buffer(&mut self) -> Vec<u8> {
                self.recycled.pop().unwrap_or_default()
            }
            fn push_segment(&mut self, segment: Vec<u8>) {
                self.segments.push(segment);
            }
        }

        let metrics = Arc::new(MetricsRegistry::new());
        let mut writer = FrameWriter::with_metrics(RecordingSink::default(), Arc::clone(&metrics));
        let frames =
            [Frame::Submit(spec()), Frame::Result(result()), Frame::Busy(9), Frame::Reject(11)];
        let mut expected_bytes = 0u64;
        for frame in &frames {
            writer.send_segment(frame);
            expected_bytes += writer.get_ref().segments.last().expect("segment").len() as u64;
        }
        let sink = writer.get_mut();
        assert_eq!(sink.segments.len(), frames.len(), "exactly one segment per frame");
        for (segment, frame) in sink.segments.iter().zip(&frames) {
            let (decoded, consumed) = decode_frame(segment).expect("segment decodes standalone");
            assert_eq!(&decoded, frame);
            assert_eq!(consumed, segment.len(), "segment holds exactly one frame");
        }
        // A recycled dirty buffer must be fully overwritten, not appended to.
        sink.recycled.push(vec![0xFF; 300]);
        let before = sink.segments.len();
        writer.send_segment(&Frame::Busy(77));
        let sink = writer.get_ref();
        let (decoded, consumed) =
            decode_frame(&sink.segments[before]).expect("recycled segment decodes");
        assert_eq!(decoded, Frame::Busy(77));
        assert_eq!(consumed, sink.segments[before].len());
        // Wire accounting matches the byte-stream path: bytes + frames.
        let last = sink.segments[before].len() as u64;
        assert_eq!(metrics.get(Metric::WireBytesTx), expected_bytes + last);
        assert_eq!(metrics.get(Metric::WireFramesTx), frames.len() as u64 + 1);
    }

    #[test]
    fn assembler_reassembles_frames_from_single_byte_feeds() {
        // The adversarial dribbler scenario in miniature: every byte of
        // a multi-frame burst arrives alone, and the assembler must
        // yield exactly the original frame sequence with exact counts.
        let frames = [
            Frame::Submit(spec()),
            Frame::Busy(9),
            Frame::Result(result()),
            Frame::Prewarm(design_key()),
            Frame::Stats(stats_reply()),
            Frame::StatsRequest(0xA5A5),
            Frame::Reject(11),
        ];
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for frame in &frames {
            encode_frame(frame, &mut scratch);
            wire.extend_from_slice(&scratch);
        }
        let mut asm = FrameAssembler::new();
        let mut decoded = Vec::new();
        let mut accounted = 0usize;
        for byte in &wire {
            asm.extend(std::slice::from_ref(byte));
            while let Some((frame, consumed)) = asm.next_frame().expect("valid stream") {
                decoded.push(frame);
                accounted += consumed;
            }
        }
        assert_eq!(decoded.as_slice(), frames.as_slice());
        assert_eq!(accounted, wire.len(), "every wire byte belongs to exactly one frame");
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_yields_all_frames_of_a_burst_then_holds_the_tail() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for frame in [Frame::Busy(1), Frame::Busy(2), Frame::Busy(3)] {
            encode_frame(&frame, &mut scratch);
            wire.extend_from_slice(&scratch);
        }
        // Deliver two complete frames plus half of the third in one read.
        let split = wire.len() - scratch.len() / 2;
        let mut asm = FrameAssembler::new();
        asm.extend(&wire[..split]);
        assert_eq!(asm.next_frame().unwrap().map(|(f, _)| f), Some(Frame::Busy(1)));
        assert_eq!(asm.next_frame().unwrap().map(|(f, _)| f), Some(Frame::Busy(2)));
        assert!(asm.next_frame().unwrap().is_none(), "half a frame is not a frame");
        assert!(asm.buffered() > 0);
        asm.extend(&wire[split..]);
        assert_eq!(asm.next_frame().unwrap().map(|(f, _)| f), Some(Frame::Busy(3)));
        assert!(asm.next_frame().unwrap().is_none());
    }

    #[test]
    fn assembler_surfaces_stream_corruption_as_fatal() {
        let mut wire = Vec::new();
        encode_frame(&Frame::Busy(1), &mut wire);
        let tail = wire.len() - 1;
        wire[tail] ^= 0xFF; // corrupt the checksum
        let mut asm = FrameAssembler::new();
        asm.extend(&wire);
        assert_eq!(asm.next_frame(), Err(FrameError::BadChecksum));
        let mut asm = FrameAssembler::new();
        asm.extend(&[0x00, 0x01, 0x02]); // garbage, wrong magic
        assert!(asm.next_frame().is_err(), "desynced stream must not look like 'need more'");
    }

    #[test]
    fn assembler_compaction_keeps_long_lived_buffers_bounded() {
        let mut frame_bytes = Vec::new();
        encode_frame(&Frame::Submit(spec()), &mut frame_bytes);
        let mut asm = FrameAssembler::new();
        for _ in 0..10_000 {
            asm.extend(&frame_bytes);
            let (_, consumed) = asm.next_frame().expect("valid").expect("complete");
            assert_eq!(consumed, frame_bytes.len());
        }
        assert_eq!(asm.buffered(), 0);
        // 10k frames passed through; the retained allocation must stay
        // on the order of one compaction window, not the stream size.
        assert!(asm.buf.capacity() < 64 * 1024, "buffer grew to {}", asm.buf.capacity());
    }

    #[test]
    fn assembler_metering_matches_the_blocking_reader_contract() {
        let metrics = MetricsRegistry::new();
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for frame in [Frame::Busy(7), Frame::Reject(8)] {
            encode_frame(&frame, &mut scratch);
            wire.extend_from_slice(&scratch);
        }
        let mut asm = FrameAssembler::new();
        asm.extend(&wire);
        while asm.next_frame_metered(&metrics).expect("valid").is_some() {}
        assert_eq!(metrics.get(Metric::WireFramesRx), 2);
        assert_eq!(metrics.get(Metric::WireBytesRx), wire.len() as u64);
        assert_eq!(metrics.get(Metric::WireChecksumRejects), 0);

        let mut bad = Vec::new();
        encode_frame(&Frame::Busy(9), &mut bad);
        let tail = bad.len() - 1;
        bad[tail] ^= 0xFF;
        asm.extend(&bad);
        assert!(asm.next_frame_metered(&metrics).is_err());
        assert_eq!(metrics.get(Metric::WireChecksumRejects), 1);
        assert_eq!(
            metrics.get(Metric::WireFramesRx),
            2,
            "rejected frame is not counted as received"
        );
    }

    #[test]
    fn stats_layout_is_stable_little_endian() {
        let reply = stats_reply();
        let mut buf = Vec::new();
        encode_frame(&Frame::Stats(reply), &mut buf);
        assert_eq!(buf.len(), HEADER_LEN + STATS_PAYLOAD_LEN + CHECKSUM_LEN);
        assert_eq!(buf.len(), MAX_FRAME_LEN);
        let len = STATS_PAYLOAD_LEN as u32;
        assert_eq!(&buf[..4], &[MAGIC, VERSION, 6, 0]);
        assert_eq!(&buf[4..8], &len.to_le_bytes());
        assert_eq!(&buf[8..16], &0xFEED_F00D_CAFE_0001u64.to_le_bytes(), "token");
        assert_eq!(&buf[16..24], &1234u64.to_le_bytes(), "jobs_completed");
        assert_eq!(&buf[24..32], &3u64.to_le_bytes(), "jobs_poisoned");
        assert_eq!(&buf[80..88], &8u64.to_le_bytes(), "workers");
        assert_eq!(&buf[88..96], &100u64.to_le_bytes(), "total_latency count");
        // The summary's mean travels as raw f64 bits — lossless.
        let mean = f64::from_le_bytes(buf[96..104].try_into().unwrap());
        assert_eq!(mean.to_bits(), reply.stats.total_latency.mean().to_bits());

        let mut buf = Vec::new();
        encode_frame(&Frame::StatsRequest(7), &mut buf);
        assert_eq!(&buf[..8], &[MAGIC, VERSION, 7, 0, 8, 0, 0, 0]);
        assert_eq!(&buf[8..16], &7u64.to_le_bytes(), "token");
    }

    #[test]
    fn stats_round_trip_preserves_moments_and_quantiles_bit_exactly() {
        // The far side must be able to merge a scraped snapshot into its
        // cluster view exactly as if the histogram had been recorded
        // locally — that's what makes remote ClusterStats sums complete.
        let reply = stats_reply();
        let mut buf = Vec::new();
        encode_frame(&Frame::Stats(reply), &mut buf);
        let (decoded, _) = decode_frame(&buf).expect("round trip");
        let Frame::Stats(back) = decoded else { panic!("wrong frame type") };
        assert_eq!(back.token, reply.token);
        let (a, b) = (&back.stats, &reply.stats);
        assert_eq!(a.total_latency.mean().to_bits(), b.total_latency.mean().to_bits());
        assert_eq!(a.total_latency.variance().to_bits(), b.total_latency.variance().to_bits());
        assert_eq!(a.decode_latency.min().to_bits(), b.decode_latency.min().to_bits());
        assert_eq!(a.histogram.quantile_micros(0.99), b.histogram.quantile_micros(0.99));
        assert_eq!(a.histogram.sum_micros(), b.histogram.sum_micros());
        // An empty snapshot round-trips too (±∞ summary sentinels).
        let empty = StatsReply { token: 0, stats: EngineStats::zero() };
        encode_frame(&Frame::Stats(empty), &mut buf);
        let (decoded, _) = decode_frame(&buf).expect("empty round trip");
        assert_eq!(decoded, Frame::Stats(empty));
    }

    #[test]
    fn every_stats_truncation_and_corruption_is_rejected() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Stats(stats_reply()), &mut buf);
        for cut in [0, 1, 7, 8, 100, HEADER_LEN + STATS_PAYLOAD_LEN, buf.len() - 1] {
            let err = decode_frame(&buf[..cut]).expect_err("truncation must fail");
            assert!(matches!(err, FrameError::Truncated { .. }), "cut {cut}: {err:?}");
        }
        // Checksum coverage: flip a byte in the header, the scalar block,
        // the bucket array, and the checksum itself.
        for i in [2usize, 20, 500, 5_000, buf.len() - 3] {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x40;
            assert!(decode_frame(&corrupt).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn prewarm_layout_is_stable_little_endian() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Prewarm(design_key()), &mut buf);
        assert_eq!(buf.len(), HEADER_LEN + KEY_PAYLOAD_LEN + CHECKSUM_LEN);
        assert_eq!(&buf[..8], &[MAGIC, VERSION, 5, 0, 32, 0, 0, 0]);
        assert_eq!(&buf[8..16], &1000u64.to_le_bytes(), "n");
        assert_eq!(&buf[16..24], &420u64.to_le_bytes(), "m");
        assert_eq!(&buf[24..32], &0xDEAD_BEEFu64.to_le_bytes(), "seed");
        assert_eq!(&buf[32..36], &350u32.to_le_bytes(), "c_milli");
        assert_eq!(buf[36], 1, "design kind code (NoReplace)");
    }

    #[test]
    fn panic_probe_decoder_survives_the_wire_under_its_reserved_code() {
        assert_eq!(decoder_code(DecoderKind::PanicProbe), DECODER_CODE_PANIC_PROBE);
        assert_eq!(decoder_from_code(DECODER_CODE_PANIC_PROBE), Ok(DecoderKind::PanicProbe));
    }

    #[test]
    fn layout_is_stable_little_endian() {
        // The byte layout is a wire contract: pin the exact bytes of a
        // known SUBMIT frame so an accidental field reorder or endianness
        // change cannot slip through as "still round-trips".
        let mut buf = Vec::new();
        encode_frame(&Frame::Submit(spec()), &mut buf);
        assert_eq!(buf.len(), HEADER_LEN + SPEC_PAYLOAD_LEN + CHECKSUM_LEN);
        assert_eq!(&buf[..8], &[MAGIC, VERSION, 1, 0, 60, 0, 0, 0]);
        assert_eq!(&buf[8..16], &42u64.to_le_bytes(), "id");
        assert_eq!(&buf[16..24], &1000u64.to_le_bytes(), "n");
        assert_eq!(&buf[56..60], &350u32.to_le_bytes(), "c_milli");
        assert_eq!(buf[64], 1, "design kind code (NoReplace)");
        assert_eq!(buf[65], 1, "decoder code (GeneralMn)");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Result(result()), &mut buf);
        for cut in 0..buf.len() {
            let err = decode_frame(&buf[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut} gave {err:?} instead of Truncated"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        // The checksum covers header and payload, so flipping any byte —
        // including the padding — must fail decode; flipping checksum
        // bytes fails by definition.
        let mut buf = Vec::new();
        encode_frame(&Frame::Submit(spec()), &mut buf);
        for i in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x40;
            assert!(decode_frame(&corrupt).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn header_errors_take_precedence() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Busy(1), &mut buf);
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadMagic(0x00)));
        let mut bad = buf.clone();
        bad[1] = 9;
        assert_eq!(decode_frame(&bad), Err(FrameError::BadVersion(9)));
        let mut bad = buf.clone();
        bad[2] = 77;
        assert_eq!(decode_frame(&bad), Err(FrameError::UnknownType(77)));
    }

    #[test]
    fn decoder_and_design_codes_cover_all_variants() {
        for (i, &k) in DecoderKind::ALL.iter().enumerate() {
            assert_eq!(decoder_code(k), i as u8);
            assert_eq!(decoder_from_code(i as u8), Ok(k));
        }
        assert!(decoder_from_code(DecoderKind::ALL.len() as u8).is_err());
        for (i, &k) in DesignKind::ALL.iter().enumerate() {
            assert_eq!(design_code(k), i as u8);
            assert_eq!(design_from_code(i as u8), Ok(k));
        }
        assert!(design_from_code(DesignKind::ALL.len() as u8).is_err());
    }

    #[test]
    fn stream_reader_round_trips_and_reports_clean_eof() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for frame in [Frame::Submit(spec()), Frame::Busy(3), Frame::Result(result())] {
            write_frame(&mut wire, &frame, &mut scratch).unwrap();
        }
        let mut cursor = std::io::Cursor::new(wire);
        let mut rbuf = Vec::new();
        assert_eq!(read_frame(&mut cursor, &mut rbuf).unwrap(), Some(Frame::Submit(spec())));
        assert_eq!(read_frame(&mut cursor, &mut rbuf).unwrap(), Some(Frame::Busy(3)));
        assert_eq!(read_frame(&mut cursor, &mut rbuf).unwrap(), Some(Frame::Result(result())));
        assert_eq!(read_frame(&mut cursor, &mut rbuf).unwrap(), None, "clean EOF");
    }

    #[test]
    fn metered_io_counts_bytes_frames_and_checksum_rejects() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut wire, &Frame::Busy(1), &mut scratch).unwrap();
        let frame_len = wire.len() as u64;

        let metrics = MetricsRegistry::new();
        let mut cursor = std::io::Cursor::new(wire.clone());
        let mut rbuf = Vec::new();
        assert_eq!(
            read_frame_metered(&mut cursor, &mut rbuf, &metrics).unwrap(),
            Some(Frame::Busy(1))
        );
        assert_eq!(metrics.get(Metric::WireBytesRx), frame_len);
        assert_eq!(metrics.get(Metric::WireFramesRx), 1);

        let mut corrupt = wire;
        corrupt[HEADER_LEN + 2] ^= 0x40;
        let mut cursor = std::io::Cursor::new(corrupt);
        let err = read_frame_metered(&mut cursor, &mut rbuf, &metrics).expect_err("corrupt");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(metrics.get(Metric::WireChecksumRejects), 1);
        assert_eq!(metrics.get(Metric::WireFramesRx), 1, "rejected frames are not counted rx");

        let tx = Arc::new(MetricsRegistry::new());
        let mut w = FrameWriter::with_metrics(Vec::new(), Arc::clone(&tx));
        w.send(&Frame::Busy(1)).unwrap();
        assert_eq!(tx.get(Metric::WireBytesTx), frame_len);
        assert_eq!(tx.get(Metric::WireFramesTx), 1);
    }

    #[test]
    fn stream_reader_rejects_torn_frames() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame(&mut wire, &Frame::Busy(3), &mut scratch).unwrap();
        wire.truncate(wire.len() - 3);
        let mut cursor = std::io::Cursor::new(wire);
        let mut rbuf = Vec::new();
        let err = read_frame(&mut cursor, &mut rbuf).expect_err("torn frame");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
