//! Blocking TCP client for the engine's transport front.
//!
//! [`TransportClient`] speaks the frame protocol over one connection:
//! `submit`/`poll` for fine-grained control, and [`run_batch`] — a
//! streaming batch mode mirroring [`Engine::run_batch`] semantics — for
//! replaying a whole [`LoadProfile`] over the wire. `run_batch` keeps a
//! bounded submission window in flight and interleaves reads, so it can
//! never deadlock against the server's bounded queues, and it retries
//! `BUSY` replies (the server's explicit backpressure signal) until
//! every job is served. Results come back sorted by id, so the
//! cross-wire determinism check is `fingerprints(tcp) ==
//! fingerprints(in_process)` — bit for bit.
//!
//! [`run_batch`]: TransportClient::run_batch
//! [`Engine::run_batch`]: crate::engine::Engine::run_batch
//! [`LoadProfile`]: crate::traffic::LoadProfile

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

use pooled_lab::split::LatencySplit;

use crate::job::{JobResult, JobSpec};
use crate::transport::frame::{read_frame, write_frame, Frame, FrameError};
use crate::transport::{connect_stream, WireTimeouts};

/// What can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure (includes torn frames surfaced as
    /// `InvalidData` by the stream reader).
    Io(std::io::Error),
    /// The server closed the connection mid-conversation.
    Disconnected,
    /// The peer sent a frame that is illegal in this direction.
    Protocol(&'static str),
    /// The server rejected job `id` as infeasible (terminal; retrying
    /// cannot succeed).
    Rejected(u64),
    /// The read deadline ([`WireTimeouts::read`]) expired while waiting
    /// for a reply — the peer is half-dead or badly stalled. The
    /// connection should be considered unusable (the deadline may have
    /// cut a frame in half).
    TimedOut,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Disconnected => write!(f, "server closed the connection"),
            TransportError::Protocol(what) => write!(f, "protocol violation: {what}"),
            TransportError::Rejected(id) => write!(f, "server rejected job {id} as infeasible"),
            TransportError::TimedOut => write!(f, "read deadline expired waiting for a reply"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// A reply frame the server may send.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reply {
    /// One completed job.
    Result(JobResult),
    /// The submission queue was full when job `id` arrived; retry.
    Busy(u64),
    /// Job `id` is infeasible; do not retry.
    Rejected(u64),
}

/// One connection to a [`TransportServer`].
///
/// [`TransportServer`]: crate::transport::server::TransportServer
pub struct TransportClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    read_scratch: Vec<u8>,
    write_scratch: Vec<u8>,
    window: usize,
    busy_retries: u64,
}

impl TransportClient {
    /// Connect to a transport server with the default [`WireTimeouts`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, WireTimeouts::default())
    }

    /// Connect with explicit deadlines: a bounded connect, and a read
    /// deadline that turns an eternal [`Self::poll`] against a half-dead
    /// server into [`TransportError::TimedOut`].
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeouts: WireTimeouts,
    ) -> std::io::Result<Self> {
        let stream = connect_stream(addr, timeouts.connect)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(timeouts.read)?;
        let reader = BufReader::new(read_half);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            read_scratch: Vec::new(),
            write_scratch: Vec::new(),
            window: 32,
            busy_retries: 0,
        })
    }

    /// Cap on unanswered submissions [`Self::run_batch`] keeps in flight
    /// (default 32). Every in-flight frame provokes at most one ~88-byte
    /// reply, so any window comfortably below the kernel's socket-buffer
    /// budget keeps the pipeline deadlock-free; larger windows only help
    /// on high-latency links.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn set_window(&mut self, window: usize) {
        assert!(window > 0, "the batch pipeline needs a window of at least 1");
        self.window = window;
    }

    /// `BUSY` replies absorbed (and retried) by [`Self::run_batch`] calls
    /// so far — the client-visible face of server backpressure.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Send one job (buffered until [`Self::flush`] or a batch read).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<(), TransportError> {
        write_frame(&mut self.writer, &Frame::Submit(*spec), &mut self.write_scratch)?;
        Ok(())
    }

    /// Flush buffered submissions to the socket.
    pub fn flush(&mut self) -> Result<(), TransportError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Blocking read of the next server reply (bounded by the connect
    /// call's [`WireTimeouts::read`], surfacing as
    /// [`TransportError::TimedOut`]).
    pub fn poll(&mut self) -> Result<Reply, TransportError> {
        let frame = read_frame(&mut self.reader, &mut self.read_scratch).map_err(|e| {
            if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) {
                TransportError::TimedOut
            } else {
                TransportError::Io(e)
            }
        })?;
        match frame {
            None => Err(TransportError::Disconnected),
            Some(Frame::Result(r)) => Ok(Reply::Result(r)),
            Some(Frame::Busy(id)) => Ok(Reply::Busy(id)),
            Some(Frame::Reject(id)) => Ok(Reply::Rejected(id)),
            Some(Frame::Submit(_)) => Err(TransportError::Protocol("server sent a SUBMIT frame")),
            Some(Frame::Prewarm(_)) => Err(TransportError::Protocol("server sent a PREWARM frame")),
            // This client never scrapes, so a STATS reply is as illegal
            // as a server-originated request would be.
            Some(Frame::Stats(_)) => {
                Err(TransportError::Protocol("server sent an unsolicited STATS frame"))
            }
            Some(Frame::StatsRequest(_)) => {
                Err(TransportError::Protocol("server sent a STATS_REQUEST frame"))
            }
        }
    }

    /// Serve a whole batch over the wire: pipeline submissions within the
    /// window, retry `BUSY` replies, and append exactly `specs.len()`
    /// results to `out`, **sorted by job id** — the same contract as
    /// [`Engine::run_batch`], so fingerprint comparisons line up
    /// element-wise.
    ///
    /// [`Engine::run_batch`]: crate::engine::Engine::run_batch
    ///
    /// # Panics
    /// Panics if job ids repeat within the batch (ids are the retry and
    /// routing key).
    pub fn run_batch(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
    ) -> Result<(), TransportError> {
        self.run_batch_impl(specs, out, None)
    }

    /// [`Self::run_batch`], additionally folding every job's latency into
    /// `split`: the engine-reported queue wait and service time, plus the
    /// wire overhead only this side of the socket can observe.
    pub fn run_batch_split(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        split: &mut LatencySplit,
    ) -> Result<(), TransportError> {
        self.run_batch_impl(specs, out, Some(split))
    }

    fn run_batch_impl(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        mut split: Option<&mut LatencySplit>,
    ) -> Result<(), TransportError> {
        let start = out.len();
        let by_id: HashMap<u64, JobSpec> = specs.iter().map(|s| (s.id, *s)).collect();
        assert_eq!(by_id.len(), specs.len(), "batch job ids must be unique");
        let mut to_send: VecDeque<u64> = specs.iter().map(|s| s.id).collect();
        let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(specs.len());
        let mut in_flight = 0usize;
        let mut got = 0usize;
        // After a BUSY, prefer draining a reply over instantly resending:
        // a Result frees a queue slot, so the retry lands; blind resends
        // would ping-pong BUSY frames while the queue is still full.
        let mut defer_retries = false;
        while got < specs.len() {
            let can_send = in_flight < self.window && !to_send.is_empty() && !defer_retries;
            if can_send {
                let id = to_send.pop_front().expect("nonempty");
                sent_at.insert(id, Instant::now());
                self.submit(&by_id[&id])?;
                in_flight += 1;
                if to_send.is_empty() || in_flight == self.window {
                    self.flush()?;
                }
                continue;
            }
            self.flush()?;
            match self.poll()? {
                Reply::Result(r) => {
                    in_flight -= 1;
                    got += 1;
                    defer_retries = false;
                    if let Some(split) = split.as_deref_mut() {
                        let observed = sent_at[&r.id].elapsed().as_micros() as u64;
                        split.record_observed(r.queue_micros, r.total_micros, observed);
                    }
                    out.push(r);
                }
                Reply::Busy(id) => {
                    assert!(by_id.contains_key(&id), "BUSY for a job this batch never sent");
                    in_flight -= 1;
                    self.busy_retries += 1;
                    to_send.push_back(id);
                    if in_flight > 0 {
                        defer_retries = true;
                    } else {
                        // Nothing left to wait on: the whole window got
                        // BUSY'd. Resending is now the *only* source of
                        // future replies, so retries must not stay
                        // deferred — just give the queue a moment to
                        // drain instead of ping-ponging frames.
                        defer_retries = false;
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
                Reply::Rejected(id) => return Err(TransportError::Rejected(id)),
            }
        }
        out[start..].sort_unstable_by_key(|r| r.id);
        Ok(())
    }
}
