//! Blocking TCP client for the engine's transport front.
//!
//! [`TransportClient`] speaks the frame protocol over one connection:
//! `submit`/`poll` for fine-grained control, and [`run_batch`] — a
//! streaming batch mode mirroring [`Engine::run_batch`] semantics — for
//! replaying a whole [`LoadProfile`] over the wire. `run_batch` keeps a
//! bounded submission window in flight and interleaves reads, so it can
//! never deadlock against the server's bounded queues, and it retries
//! `BUSY` replies (the server's explicit backpressure signal) until
//! every job is served. Results come back sorted by id, so the
//! cross-wire determinism check is `fingerprints(tcp) ==
//! fingerprints(in_process)` — bit for bit.
//!
//! The waiting contract is explicit: [`poll`] **blocks in the kernel**
//! (`read(2)` on an empty socket parks the thread; zero CPU until the
//! reply or the [`WireTimeouts::read`] deadline), and [`try_poll`]
//! **never blocks** (`WouldBlock` maps to `Ok(None)`). Both sides of
//! the contract decode through a [`FrameAssembler`], so a deadline or
//! `WouldBlock` landing mid-frame leaves the partial frame buffered —
//! it never desynchronizes the stream.
//!
//! [`run_batch`]: TransportClient::run_batch
//! [`poll`]: TransportClient::poll
//! [`try_poll`]: TransportClient::try_poll
//! [`Engine::run_batch`]: crate::engine::Engine::run_batch
//! [`LoadProfile`]: crate::traffic::LoadProfile
//! [`FrameAssembler`]: crate::transport::frame::FrameAssembler

use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Instant;

use pooled_lab::split::LatencySplit;

use crate::job::{JobResult, JobSpec};
use crate::transport::frame::{write_frame, Frame, FrameAssembler, FrameError};
use crate::transport::{connect_stream, WireTimeouts};

/// What can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure (includes torn frames surfaced as
    /// `InvalidData` by the stream reader).
    Io(std::io::Error),
    /// The server closed the connection mid-conversation.
    Disconnected,
    /// The peer sent a frame that is illegal in this direction.
    Protocol(&'static str),
    /// The server rejected job `id` as infeasible (terminal; retrying
    /// cannot succeed).
    Rejected(u64),
    /// The read deadline ([`WireTimeouts::read`]) expired while waiting
    /// for a reply — the peer is half-dead or badly stalled. The stream
    /// itself stays consistent (a frame cut in half by the deadline is
    /// held by the assembler), but a peer silent past its deadline
    /// should be considered down.
    TimedOut,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Disconnected => write!(f, "server closed the connection"),
            TransportError::Protocol(what) => write!(f, "protocol violation: {what}"),
            TransportError::Rejected(id) => write!(f, "server rejected job {id} as infeasible"),
            TransportError::TimedOut => write!(f, "read deadline expired waiting for a reply"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// A reply frame the server may send.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reply {
    /// One completed job.
    Result(JobResult),
    /// The submission queue was full when job `id` arrived; retry.
    Busy(u64),
    /// Job `id` is infeasible; do not retry.
    Rejected(u64),
}

/// One connection to a [`TransportServer`].
///
/// [`TransportServer`]: crate::transport::server::TransportServer
pub struct TransportClient {
    /// The read half (a clone of the writer's stream; carries the read
    /// deadline). Reads go straight to the socket — partial-frame state
    /// lives in the assembler, not a buffered reader, so blocking and
    /// non-blocking reads can interleave safely.
    read_half: TcpStream,
    writer: BufWriter<TcpStream>,
    asm: FrameAssembler,
    read_buf: Vec<u8>,
    write_scratch: Vec<u8>,
    window: usize,
    busy_retries: u64,
}

impl TransportClient {
    /// Connect to a transport server with the default [`WireTimeouts`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, WireTimeouts::default())
    }

    /// Connect with explicit deadlines: a bounded connect, and a read
    /// deadline that turns an eternal [`Self::poll`] against a half-dead
    /// server into [`TransportError::TimedOut`].
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        timeouts: WireTimeouts,
    ) -> std::io::Result<Self> {
        let stream = connect_stream(addr, timeouts.connect)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        read_half.set_read_timeout(timeouts.read)?;
        Ok(Self {
            read_half,
            writer: BufWriter::new(stream),
            asm: FrameAssembler::new(),
            read_buf: vec![0u8; 16 * 1024],
            write_scratch: Vec::new(),
            window: 32,
            busy_retries: 0,
        })
    }

    /// Cap on unanswered submissions [`Self::run_batch`] keeps in flight
    /// (default 32). Every in-flight frame provokes at most one ~88-byte
    /// reply, so any window comfortably below the kernel's socket-buffer
    /// budget keeps the pipeline deadlock-free; larger windows only help
    /// on high-latency links.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn set_window(&mut self, window: usize) {
        assert!(window > 0, "the batch pipeline needs a window of at least 1");
        self.window = window;
    }

    /// `BUSY` replies absorbed (and retried) by [`Self::run_batch`] calls
    /// so far — the client-visible face of server backpressure.
    pub fn busy_retries(&self) -> u64 {
        self.busy_retries
    }

    /// Send one job (buffered until [`Self::flush`] or a batch read).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<(), TransportError> {
        write_frame(&mut self.writer, &Frame::Submit(*spec), &mut self.write_scratch)?;
        Ok(())
    }

    /// Flush buffered submissions to the socket.
    pub fn flush(&mut self) -> Result<(), TransportError> {
        self.writer.flush()?;
        Ok(())
    }

    /// **Blocking** read of the next server reply: with nothing buffered
    /// the thread parks in the kernel's `read(2)` — no spinning, no CPU
    /// — until a reply arrives or [`WireTimeouts::read`] expires
    /// (surfacing as [`TransportError::TimedOut`]). For a non-blocking
    /// probe, use [`Self::try_poll`].
    pub fn poll(&mut self) -> Result<Reply, TransportError> {
        loop {
            if let Some((frame, _)) = self.asm.next_frame()? {
                return classify(frame);
            }
            let got = self.read_half.read(&mut self.read_buf).map_err(|e| {
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
                {
                    TransportError::TimedOut
                } else {
                    TransportError::Io(e)
                }
            })?;
            if got == 0 {
                return Err(self.eof_error());
            }
            self.asm.extend(&self.read_buf[..got]);
        }
    }

    /// **Non-blocking** read of the next server reply: `Ok(None)` means
    /// no complete reply is available *right now* — never an error, and
    /// never a parked thread. A reply split across packets stays
    /// buffered in the assembler until its remaining bytes arrive.
    pub fn try_poll(&mut self) -> Result<Option<Reply>, TransportError> {
        loop {
            if let Some((frame, _)) = self.asm.next_frame()? {
                return classify(frame).map(Some);
            }
            self.read_half.set_nonblocking(true)?;
            let got = self.read_half.read(&mut self.read_buf);
            // Restore before interpreting the result: the blocking
            // contract of every other method must hold even if this
            // probe came up empty or errored.
            self.read_half.set_nonblocking(false)?;
            match got {
                Ok(0) => return Err(self.eof_error()),
                Ok(n) => self.asm.extend(&self.read_buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    /// EOF classification: clean between frames is [`Disconnected`];
    /// mid-frame means the server died with half a reply on the wire.
    ///
    /// [`Disconnected`]: TransportError::Disconnected
    fn eof_error(&self) -> TransportError {
        if self.asm.buffered() == 0 {
            TransportError::Disconnected
        } else {
            TransportError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            ))
        }
    }

    /// Serve a whole batch over the wire: pipeline submissions within the
    /// window, retry `BUSY` replies, and append exactly `specs.len()`
    /// results to `out`, **sorted by job id** — the same contract as
    /// [`Engine::run_batch`], so fingerprint comparisons line up
    /// element-wise.
    ///
    /// [`Engine::run_batch`]: crate::engine::Engine::run_batch
    ///
    /// # Panics
    /// Panics if job ids repeat within the batch (ids are the retry and
    /// routing key).
    pub fn run_batch(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
    ) -> Result<(), TransportError> {
        self.run_batch_impl(specs, out, None)
    }

    /// [`Self::run_batch`], additionally folding every job's latency into
    /// `split`: the engine-reported queue wait and service time, plus the
    /// wire overhead only this side of the socket can observe.
    pub fn run_batch_split(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        split: &mut LatencySplit,
    ) -> Result<(), TransportError> {
        self.run_batch_impl(specs, out, Some(split))
    }

    fn run_batch_impl(
        &mut self,
        specs: &[JobSpec],
        out: &mut Vec<JobResult>,
        mut split: Option<&mut LatencySplit>,
    ) -> Result<(), TransportError> {
        let start = out.len();
        let by_id: HashMap<u64, JobSpec> = specs.iter().map(|s| (s.id, *s)).collect();
        assert_eq!(by_id.len(), specs.len(), "batch job ids must be unique");
        let mut to_send: VecDeque<u64> = specs.iter().map(|s| s.id).collect();
        let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(specs.len());
        let mut in_flight = 0usize;
        let mut got = 0usize;
        // After a BUSY, prefer draining a reply over instantly resending:
        // a Result frees a queue slot, so the retry lands; blind resends
        // would ping-pong BUSY frames while the queue is still full.
        let mut defer_retries = false;
        while got < specs.len() {
            let can_send = in_flight < self.window && !to_send.is_empty() && !defer_retries;
            if can_send {
                let id = to_send.pop_front().expect("nonempty");
                sent_at.insert(id, Instant::now());
                self.submit(&by_id[&id])?;
                in_flight += 1;
                if to_send.is_empty() || in_flight == self.window {
                    self.flush()?;
                }
                continue;
            }
            self.flush()?;
            match self.poll()? {
                Reply::Result(r) => {
                    in_flight -= 1;
                    got += 1;
                    defer_retries = false;
                    if let Some(split) = split.as_deref_mut() {
                        let observed = sent_at[&r.id].elapsed().as_micros() as u64;
                        split.record_observed(r.queue_micros, r.total_micros, observed);
                    }
                    out.push(r);
                }
                Reply::Busy(id) => {
                    assert!(by_id.contains_key(&id), "BUSY for a job this batch never sent");
                    in_flight -= 1;
                    self.busy_retries += 1;
                    to_send.push_back(id);
                    if in_flight > 0 {
                        defer_retries = true;
                    } else {
                        // Nothing left to wait on: the whole window got
                        // BUSY'd. Resending is now the *only* source of
                        // future replies, so retries must not stay
                        // deferred — just give the queue a moment to
                        // drain instead of ping-ponging frames.
                        defer_retries = false;
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
                Reply::Rejected(id) => return Err(TransportError::Rejected(id)),
            }
        }
        out[start..].sort_unstable_by_key(|r| r.id);
        Ok(())
    }
}

/// Map a server→client frame to its [`Reply`], rejecting frames that
/// are illegal in this direction.
fn classify(frame: Frame) -> Result<Reply, TransportError> {
    match frame {
        Frame::Result(r) => Ok(Reply::Result(r)),
        Frame::Busy(id) => Ok(Reply::Busy(id)),
        Frame::Reject(id) => Ok(Reply::Rejected(id)),
        Frame::Submit(_) => Err(TransportError::Protocol("server sent a SUBMIT frame")),
        Frame::Prewarm(_) => Err(TransportError::Protocol("server sent a PREWARM frame")),
        // This client never scrapes, so a STATS reply is as illegal
        // as a server-originated request would be.
        Frame::Stats(_) => Err(TransportError::Protocol("server sent an unsolicited STATS frame")),
        Frame::StatsRequest(_) => {
            Err(TransportError::Protocol("server sent a STATS_REQUEST frame"))
        }
    }
}
