//! Readiness-driven TCP front over a [`NodeHandle`] session per
//! connection.
//!
//! One accept thread, N event-loop threads, zero per-connection
//! threads:
//!
//! ```text
//!  accept ──(conn_id % N)──► loop thread: EventBackend::wait(ready fds only)
//!                              │   (epoll on Linux; poll(2) fallback)
//!                              ├─ readable ► budgeted read ► FrameAssembler
//!                              │      SUBMIT ► session.try_submit (sync Busy ⇒ BUSY(id))
//!                              │      infeasible ⇒ REJECT(id)   (never a silent drop)
//!                              ├─ route waker ► session.try_recv drain ► segment queue
//!                              └─ writable ► vectored writev, resume at head offset
//! ```
//!
//! Each connection is a state machine, not a thread pair: an inbound
//! [`FrameAssembler`] that decodes across partial reads, an outbound
//! queue of encoded frame segments drained by vectored writes with
//! partial-write resume, and a per-tick read budget. The loop parks in
//! its [`EventBackend`] and is roused by socket readiness or by the
//! engine-side route waker ([`NodeHandle::register_waker`]) when a
//! worker finishes a job — results are pushed to the loop, never
//! polled for.
//!
//! A tick costs O(active), not O(connections). The backend holds the
//! interest set across ticks (registered at adoption, modified only on
//! pause/resume and write-arm/disarm edges, deregistered at close), so
//! under epoll a wait returns exactly the ready fds and an idle herd of
//! tenants is never scanned; idle eviction rides a coarse timer wheel
//! ([`IdleWheel`]) that examines a connection once per timeout period,
//! not once per sweep; and the outbound path never compacts — a
//! partial write just advances an offset into the segment queue.
//!
//! Tenant isolation is a liveness guarantee at three layers:
//!
//! * a tenant at its in-flight cap gets `BUSY` (its results queue can
//!   never fill, so workers never block on a slow socket);
//! * a write-blocked tenant accumulates output only to a bounded high
//!   water, after which the loop stops *reading* from it (its own
//!   submissions stall, nobody else's);
//! * a firehose tenant is cut off at the per-tick read budget and
//!   resumed next tick; an idle or Slowloris tenant is evicted after
//!   [`TransportConfig::idle_timeout`].
//!
//! The server still doesn't know what an [`Engine`] is: each accepted
//! connection gets a private [`NodeHandle`] session minted by a
//! [`NodeFactory`] — for the canonical `Arc<Engine>` factory that is a
//! [`LocalNode`] attached over its own [`ResultRoute`]. Concurrent
//! tenants only ever see their own completions, and the engine's
//! shared completion stream stays untouched.
//!
//! The server trusts determinism, not the network: a malformed frame
//! (bad magic, bad checksum, torn stream) terminates the connection —
//! after a framing error there is no way to resynchronize, and
//! decoding a corrupted `JobSpec` would break the bit-identical
//! results contract the loopback suite pins.
//!
//! [`Engine`]: crate::engine::Engine
//! [`LocalNode`]: crate::cluster::node::LocalNode
//! [`ResultRoute`]: crate::engine::ResultRoute
//! [`FrameAssembler`]: crate::transport::frame::FrameAssembler

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cluster::node::{NodeError, NodeEvent, NodeFactory, NodeHandle, SubmitOutcome};
use crate::engine::Engine;
use crate::queue::TryPop;
use crate::telemetry::{Metric, MetricsRegistry};
use crate::transport::frame::{Frame, FrameAssembler, FrameWriter, SegmentSink, StatsReply};
use crate::transport::reactor::{
    new_backend, writev_fd, BackendChoice, BackendKind, EventBackend, Interest, IoVec, ReadyEvent,
    WakePipe,
};

/// Transport sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Per-connection cap on jobs in flight (accepted but not yet
    /// written back as `RESULT` frames). Doubles as the connection's
    /// event-queue bound. A tenant at its cap gets `BUSY` replies, so
    /// a stalled tenant that pipelines submissions without reading can
    /// never park an engine worker on its full result queue — tenant
    /// isolation is a liveness guarantee, not just a routing one.
    pub route_capacity: usize,
    /// Upper bound on a remote spec's `n` and `m`. `is_feasible` admits
    /// any self-consistent shape, but a network peer could send a
    /// well-formed `SUBMIT` whose buffers would exhaust memory and take
    /// every tenant down; anything larger than this is `REJECT`ed at
    /// the door.
    pub max_dimension: usize,
    /// Event-loop threads. Connections are assigned at accept time
    /// (`conn_id % event_loops`); each loop multiplexes its share
    /// through its own [`EventBackend`]. Server thread count is
    /// `1 + event_loops`, independent of connection count.
    pub event_loops: usize,
    /// Per-connection, per-tick read budget in bytes. A firehose tenant
    /// that keeps the kernel buffer full is cut off at this budget each
    /// tick and resumed the next, so it pays latency for its own volume
    /// instead of starving the other tenants on its loop.
    pub read_budget: usize,
    /// Evict a connection after this long without a byte of progress in
    /// either direction (Slowloris/abandoned-tenant reclamation).
    /// `None` disables eviction.
    pub idle_timeout: Option<Duration>,
    /// Accept-time cap on concurrent connections; connection attempts
    /// beyond it are dropped at the door (the fd is the scarce resource
    /// being protected, so no protocol reply is owed).
    pub max_connections: usize,
    /// Readiness backend: `Auto` resolves to epoll on Linux (O(active)
    /// per tick) and `poll(2)` elsewhere; either can be forced. A
    /// forced-but-unavailable backend fails `bind` — there is no silent
    /// fallback.
    pub backend: BackendChoice,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            route_capacity: 256,
            max_dimension: 1 << 24,
            event_loops: 2,
            read_budget: 64 * 1024,
            idle_timeout: Some(Duration::from_secs(300)),
            max_connections: 65_536,
            backend: BackendChoice::Auto,
        }
    }
}

/// Read-chunk size: one `read` syscall per chunk, sized so a typical
/// submit burst lands in one go.
const READ_CHUNK: usize = 16 * 1024;

/// Shared between the accept loop, the event loops, and `stop`.
struct ServerShared {
    factory: Arc<dyn NodeFactory>,
    config: TransportConfig,
    stopping: AtomicBool,
    /// Live connection count (accept increments, teardown decrements);
    /// mirrored by the `pooled_transport_connections` gauge.
    live: AtomicUsize,
    next_conn: AtomicU64,
    /// Server-wide wire accounting (all connections share one registry:
    /// frames/bytes both ways, checksum rejects, rejected jobs,
    /// answered scrapes, reactor wakeups/budget/evictions).
    metrics: Arc<MetricsRegistry>,
    /// One inbox per event loop: the accept thread and route wakers
    /// post to it, the loop drains it at the top of every tick.
    inboxes: Vec<Arc<LoopInbox>>,
}

/// Cross-thread mailbox of one event loop.
struct LoopInbox {
    /// Connections accepted but not yet registered with the loop.
    new_conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Connections whose session has undrained events (posted by route
    /// wakers, deduplicated by each connection's `queued` flag).
    ready: Mutex<Vec<u64>>,
    /// Rouses the loop out of `poll(2)`.
    wake: WakePipe,
}

impl LoopInbox {
    /// Wake the loop, counting wakeups that actually signaled the pipe
    /// (coalesced wakes are free and uncounted).
    fn wake(&self, metrics: &MetricsRegistry) {
        if self.wake.wake() {
            metrics.inc(Metric::ReactorWakeups);
        }
    }
}

/// A listening TCP front. Dropping without [`TransportServer::stop`]
/// abandons the threads (they exit on their next wake-up after the
/// process-exit teardown); call `stop` for a deterministic teardown.
pub struct TransportServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    backend: BackendKind,
    accept_handle: Option<JoinHandle<()>>,
    loop_handles: Vec<JoinHandle<()>>,
}

impl TransportServer {
    /// Bind `addr` (use port 0 for an ephemeral loopback port) and start
    /// accepting connections against `engine` — the canonical factory:
    /// every connection becomes a [`LocalNode`] session on this engine.
    ///
    /// [`LocalNode`]: crate::cluster::node::LocalNode
    pub fn bind<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with(engine, addr, config)
    }

    /// Bind `addr` and serve sessions minted by an arbitrary
    /// [`NodeFactory`] — the general form: what a connection talks to
    /// is the factory's business, not the server's.
    pub fn bind_with<F, A>(factory: F, addr: A, config: TransportConfig) -> std::io::Result<Self>
    where
        F: NodeFactory + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let loops = config.event_loops.max(1);
        // Construct every backend before spawning anything: a forced
        // epoll off Linux (or a failed `epoll_create1`) fails the bind
        // loudly instead of silently serving with the wrong backend.
        let mut backends = Vec::with_capacity(loops);
        for _ in 0..loops {
            backends.push(new_backend(config.backend)?);
        }
        let backend = backends[0].kind();
        let mut inboxes = Vec::with_capacity(loops);
        for _ in 0..loops {
            inboxes.push(Arc::new(LoopInbox {
                new_conns: Mutex::new(Vec::new()),
                ready: Mutex::new(Vec::new()),
                wake: WakePipe::new()?,
            }));
        }
        let shared = Arc::new(ServerShared {
            factory: Arc::new(factory),
            config,
            stopping: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
            inboxes,
        });
        shared.metrics.set(Metric::TransportBackend, u64::from(backend == BackendKind::Epoll));
        let mut loop_handles = Vec::with_capacity(loops);
        for (loop_id, backend) in backends.into_iter().enumerate() {
            let loop_shared = Arc::clone(&shared);
            loop_handles.push(
                std::thread::Builder::new()
                    .name(format!("transport-loop-{loop_id}"))
                    .spawn(move || event_loop(loop_id, &loop_shared, backend))
                    .expect("failed to spawn transport event loop"),
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("transport-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("failed to spawn transport accept thread");
        Ok(Self { local_addr, shared, backend, accept_handle: Some(accept_handle), loop_handles })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The readiness backend actually in force (post-`Auto` resolution;
    /// also exposed as the `pooled_transport_backend` gauge).
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// This server's wire accounting, summed over all connections.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Connections currently being served (observability; also pins the
    /// no-fd-leak contract — a disconnected tenant's count is gone once
    /// its loop reaps the connection).
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }

    /// Stop accepting, drop every live connection, and join all
    /// transport threads. The nodes behind the factory keep running —
    /// their owner shuts them down.
    pub fn stop(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it only observes `stopping` between
        // accepts, so poke it with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("transport accept thread panicked");
        }
        for inbox in &self.shared.inboxes {
            inbox.wake(&self.shared.metrics);
        }
        for handle in self.loop_handles.drain(..) {
            handle.join().expect("transport event loop panicked");
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let loops = shared.inboxes.len() as u64;
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue, // transient accept error; keep serving
        };
        if shared.live.load(Ordering::Acquire) >= shared.config.max_connections {
            continue; // at capacity: drop at the door (fd is the scarce resource)
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue; // a socket the loop can't poll is unusable
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.live.fetch_add(1, Ordering::AcqRel);
        shared.metrics.inc(Metric::TransportConnections);
        let inbox = &shared.inboxes[(conn_id % loops) as usize];
        inbox.new_conns.lock().expect("inbox poisoned").push((conn_id, stream));
        inbox.wake(&shared.metrics);
    }
}

/// Most segments a single `writev` gathers. 64 RESULT frames is ~5KiB —
/// comfortably one syscall's worth — and the array lives on the stack.
const MAX_IOV: usize = 64;

/// Retired segment buffers a connection keeps for reuse. The cap bounds
/// idle memory; under steady load the pool cycles and the outbound path
/// stops allocating entirely.
const SPARE_SEGMENTS: usize = 64;

/// A connection's outbound queue of encoded frame segments.
///
/// Zero-copy by construction: each frame is encoded once, directly into
/// a recycled buffer ([`SegmentSink::take_buffer`] →
/// [`FrameWriter::send_segment`]), and that buffer *is* the queue
/// entry. Draining gathers the segments into one vectored `writev`;
/// a partial write advances `head` into the front segment and fully
/// sent segments pop into the spare pool. No byte is memmoved or
/// re-copied after encode — the compaction memmove the byte-ring
/// predecessor paid on every append (`buf.drain(..pos)`) is gone, and
/// the regression tests pin that by watching segment addresses stay put
/// while a write-blocked tenant accumulates frames.
#[derive(Default)]
struct OutRing {
    /// Encoded frames awaiting transmission, oldest first.
    segs: VecDeque<Vec<u8>>,
    /// Bytes of `segs[0]` already accepted by the kernel.
    head: usize,
    /// Total unsent bytes across all segments (kept incrementally so
    /// high-water checks are O(1), not O(segments)).
    pending: usize,
    /// Retired segment buffers, cleared and ready for reuse.
    spare: Vec<Vec<u8>>,
}

impl OutRing {
    /// Unsent bytes queued on this connection.
    fn pending(&self) -> usize {
        self.pending
    }

    /// Fill `iovs` with the unsent byte ranges (the front segment from
    /// `head`, then whole segments), up to the array's length. Returns
    /// the entry count and the total bytes they cover.
    fn fill_iovs(&self, iovs: &mut [IoVec; MAX_IOV]) -> (usize, usize) {
        let mut count = 0;
        let mut bytes = 0;
        for (i, seg) in self.segs.iter().take(MAX_IOV).enumerate() {
            let slice = if i == 0 { &seg[self.head..] } else { &seg[..] };
            iovs[count] = IoVec::from_slice(slice);
            bytes += slice.len();
            count += 1;
        }
        (count, bytes)
    }

    /// Record that the kernel accepted `n` bytes: advance the head
    /// offset, retire fully sent segments into the spare pool. Only
    /// bookkeeping moves — never frame bytes.
    fn advance(&mut self, mut n: usize) {
        debug_assert!(n <= self.pending, "advance past the queue");
        self.pending -= n;
        while n > 0 {
            let remaining = self.segs[0].len() - self.head;
            if n < remaining {
                self.head += n;
                return;
            }
            n -= remaining;
            self.head = 0;
            let mut seg = self.segs.pop_front().expect("accounted segment");
            if self.spare.len() < SPARE_SEGMENTS {
                seg.clear();
                self.spare.push(seg);
            }
        }
    }
}

impl SegmentSink for OutRing {
    fn take_buffer(&mut self) -> Vec<u8> {
        self.spare.pop().unwrap_or_default()
    }

    fn push_segment(&mut self, segment: Vec<u8>) {
        debug_assert!(!segment.is_empty(), "a frame never encodes to zero bytes");
        self.pending += segment.len();
        self.segs.push_back(segment);
    }
}

/// One connection's state machine. No threads, no locks — everything
/// here is owned by exactly one event loop. The only cross-thread piece
/// is `queued`, shared with the route waker closure.
struct Conn {
    stream: TcpStream,
    session: Arc<dyn NodeHandle>,
    asm: FrameAssembler,
    /// Outbound frames ride inside the metered writer; its sink is the
    /// [`OutRing`] the write phase drains.
    wire: FrameWriter<OutRing>,
    /// Jobs accepted but not yet answered on the wire. Bounding this at
    /// `route_capacity` (reads refuse with BUSY at the cap) is what
    /// keeps workers from ever blocking on this tenant's event queue:
    /// at most `route_capacity` results can exist at once, and the
    /// queue holds exactly that many — a worker's push always finds
    /// room, even if the tenant stops reading forever.
    pending: usize,
    /// Wake dedup flag shared with this connection's route waker: set
    /// by the waker when it posts to the loop's ready list, cleared by
    /// the loop before draining, so each burst of deliveries costs one
    /// inbox entry.
    queued: Arc<AtomicBool>,
    /// Last instant a byte moved in either direction (idle eviction).
    last_activity: Instant,
    /// Interest mask currently registered with the event backend. The
    /// loop recomputes the desired mask after touching a connection and
    /// issues a backend `modify` only when it differs — interest
    /// updates happen on pause/resume and write-arm/disarm *edges*,
    /// never per tick.
    interest: Interest,
    /// Tick stamp of the last budgeted read, so a connection that is
    /// both in the ready set and on the carried-over hot list gets one
    /// read budget per tick, not two.
    serviced_tick: u64,
    /// Read budget ran out with socket bytes possibly still pending —
    /// the loop polls with zero timeout and returns to this conn next
    /// tick (fairness without starvation).
    hot: bool,
    /// Out ring passed high water: stop reading from this tenant until
    /// it drains its results (a write-blocked tenant stalls itself,
    /// never the loop and never a worker).
    read_paused: bool,
    /// Session reported `Closed`: flush what's buffered, then die.
    draining: bool,
    /// Terminal; reaped at end of tick.
    dead: bool,
}

impl Conn {
    /// Output high water: past this, reading from the tenant pauses.
    /// Sized so the cap-bounded result backlog always fits (a RESULT
    /// frame is 80 bytes; 96 leaves headroom) plus a burst of replies.
    fn pause_high(config: &TransportConfig) -> usize {
        16 * 1024 + config.route_capacity * 96
    }

    /// The interest mask this connection's state calls for right now:
    /// read unless paused, write while unsent segments remain.
    fn desired_interest(&self) -> Interest {
        Interest { readable: !self.read_paused, writable: self.wire.get_ref().pending() > 0 }
    }
}

/// Coarse single-level timer wheel for idle eviction, keyed by
/// last-activity bucket.
///
/// The predecessor swept *every* connection each interval — another
/// O(connections) tick cost. The wheel checks only connections whose
/// scheduled bucket has come due: activity never touches the wheel
/// (`Conn::last_activity` just advances), and a due connection that
/// turns out to be alive is rescheduled into the bucket matching its
/// actual deadline. Each connection sits in exactly one bucket, so the
/// amortized cost per interval is O(due connections), and an idle herd
/// is examined once per timeout period instead of once per sweep.
struct IdleWheel {
    /// `buckets[cursor]` is due now; slot `cursor + k` is due in `k`
    /// granules.
    buckets: Vec<Vec<u64>>,
    cursor: usize,
    granularity: Duration,
    last_advance: Instant,
    timeout: Duration,
}

impl IdleWheel {
    fn new(timeout: Duration, granularity: Duration, now: Instant) -> Self {
        // Enough slots to park a fresh connection a full timeout out,
        // plus slack so "due" and "just scheduled" never collide.
        let slots = (timeout.as_nanos() / granularity.as_nanos().max(1)) as usize + 2;
        Self {
            buckets: vec![Vec::new(); slots],
            cursor: 0,
            granularity,
            last_advance: now,
            timeout,
        }
    }

    /// Park `id` in the bucket matching `deadline` (its last activity
    /// plus the timeout), clamped into the wheel's horizon.
    fn schedule(&mut self, id: u64, deadline: Instant, now: Instant) {
        let granules = if deadline <= now {
            1 // already due: next advance picks it up
        } else {
            let nanos = (deadline - now).as_nanos();
            let g = nanos.div_ceil(self.granularity.as_nanos().max(1)) as usize;
            g.clamp(1, self.buckets.len() - 1)
        };
        let slot = (self.cursor + granules) % self.buckets.len();
        self.buckets[slot].push(id);
    }

    /// Advance the cursor over every granule that has elapsed since the
    /// last call, draining due buckets into `due` (the caller checks
    /// each id's real `last_activity` and either evicts or reschedules).
    fn collect_due(&mut self, now: Instant, due: &mut Vec<u64>) {
        due.clear();
        let mut steps = 0;
        while now.duration_since(self.last_advance) >= self.granularity {
            self.last_advance += self.granularity;
            self.cursor = (self.cursor + 1) % self.buckets.len();
            due.append(&mut self.buckets[self.cursor]);
            // A long stall (debugger, suspended VM) must not spin the
            // wheel forever: one full revolution visits every bucket.
            steps += 1;
            if steps >= self.buckets.len() {
                self.last_advance = now;
                break;
            }
        }
    }
}

/// Backend token of the loop's wake pipe (connection ids count up from
/// zero and can never reach it).
const WAKE_TOKEN: u64 = u64::MAX;

fn event_loop(loop_id: usize, shared: &Arc<ServerShared>, mut backend: Box<dyn EventBackend>) {
    let inbox = Arc::clone(&shared.inboxes[loop_id]);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut ready: Vec<ReadyEvent> = Vec::new();
    let mut hot_ids: Vec<u64> = Vec::new();
    let mut dead_ids: Vec<u64> = Vec::new();
    let mut due_ids: Vec<u64> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut tick: u64 = 0;
    let sweep_interval = shared
        .config
        .idle_timeout
        .map(|t| (t / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)));
    let mut wheel = match (shared.config.idle_timeout, sweep_interval) {
        (Some(timeout), Some(granularity)) => {
            Some(IdleWheel::new(timeout, granularity, Instant::now()))
        }
        _ => None,
    };
    if backend.register(inbox.wake.read_fd(), WAKE_TOKEN, Interest::READ).is_err() {
        return; // no wakeup channel, no loop — bind's smoke tests catch this
    }

    while !shared.stopping.load(Ordering::SeqCst) {
        tick = tick.wrapping_add(1);

        // ── park: only ready fds come back, idle tenants cost nothing ─
        let timeout = if hot_ids.is_empty() { sweep_interval } else { Some(Duration::ZERO) };
        let touched = backend.wait(timeout, &mut ready).unwrap_or(0);
        shared.metrics.inc(Metric::TransportTicks);
        shared.metrics.add(Metric::TransportReadyFds, touched as u64);
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        inbox.wake.drain();
        let prev_hot = std::mem::take(&mut hot_ids);

        // ── adopt newly accepted connections (interest: register) ────
        let fresh = std::mem::take(&mut *inbox.new_conns.lock().expect("inbox poisoned"));
        for (id, stream) in fresh {
            let mut conn = register_conn(id, stream, shared, &inbox);
            if backend.register(conn.stream.as_raw_fd(), id, Interest::READ).is_err() {
                conn.dead = true;
            } else {
                // The socket may already hold the tenant's first burst
                // (it was live before the loop ever waited on it).
                conn.serviced_tick = tick;
                read_conn(&mut conn, shared, &mut scratch);
                flush_out(&mut conn, shared);
                sync_interest(id, &mut conn, backend.as_mut());
            }
            if conn.hot {
                hot_ids.push(id);
            }
            if conn.dead {
                dead_ids.push(id);
            } else if let Some(wheel) = &mut wheel {
                let now = Instant::now();
                wheel.schedule(id, conn.last_activity + wheel.timeout, now);
            }
            conns.insert(id, conn);
        }

        // ── drain sessions the wakers flagged ────────────────────────
        let flagged = std::mem::take(&mut *inbox.ready.lock().expect("inbox poisoned"));
        for id in flagged {
            let Some(conn) = conns.get_mut(&id) else { continue };
            if conn.dead {
                continue;
            }
            drain_session(conn);
            flush_out(conn, shared);
            sync_interest(id, conn, backend.as_mut());
            if conn.dead {
                dead_ids.push(id);
            }
        }

        // ── readiness events: read, then drain what the read queued ──
        for ev in &ready {
            if ev.token == WAKE_TOKEN {
                continue;
            }
            let Some(conn) = conns.get_mut(&ev.token) else { continue };
            if conn.dead {
                continue;
            }
            if ev.error {
                conn.dead = true;
                dead_ids.push(ev.token);
                continue;
            }
            if (ev.readable || ev.hup) && conn.serviced_tick != tick {
                conn.serviced_tick = tick;
                read_conn(conn, shared, &mut scratch);
            }
            flush_out(conn, shared);
            sync_interest(ev.token, conn, backend.as_mut());
            if conn.hot {
                hot_ids.push(ev.token);
            }
            if conn.dead {
                dead_ids.push(ev.token);
            }
        }

        // ── hot carry-over: budget-bounded readers get their next turn
        //    even if readiness reporting raced the budget edge ────────
        for id in prev_hot {
            let Some(conn) = conns.get_mut(&id) else { continue };
            if conn.dead || !conn.hot || conn.serviced_tick == tick {
                continue; // gone, cooled off, or already served above
            }
            conn.serviced_tick = tick;
            read_conn(conn, shared, &mut scratch);
            flush_out(conn, shared);
            sync_interest(id, conn, backend.as_mut());
            if conn.hot {
                hot_ids.push(id);
            }
            if conn.dead {
                dead_ids.push(id);
            }
        }

        // ── idle wheel: examine only connections whose bucket is due ─
        if let Some(wheel) = &mut wheel {
            let now = Instant::now();
            wheel.collect_due(now, &mut due_ids);
            for &id in &due_ids {
                let Some(conn) = conns.get_mut(&id) else { continue };
                if conn.dead {
                    continue; // already on the reap list this tick
                }
                if now.duration_since(conn.last_activity) > wheel.timeout {
                    shared.metrics.inc(Metric::TransportIdleEvictions);
                    conn.dead = true;
                    dead_ids.push(id);
                } else {
                    wheel.schedule(id, conn.last_activity + wheel.timeout, now);
                }
            }
        }

        // ── reap (interest: deregister) ──────────────────────────────
        for id in dead_ids.drain(..) {
            // A connection can earn multiple dead entries in one tick;
            // the first removal wins and the rest no-op here.
            let Some(mut conn) = conns.remove(&id) else { continue };
            let _ = backend.deregister(conn.stream.as_raw_fd());
            teardown_conn(&mut conn, shared);
        }
    }

    // Loop exit: tear down every served connection plus any the accept
    // thread posted that we never adopted.
    for conn in conns.values_mut() {
        teardown_conn(conn, shared);
    }
    for (_, stream) in std::mem::take(&mut *inbox.new_conns.lock().expect("inbox poisoned")) {
        let _ = stream.shutdown(Shutdown::Both);
        shared.live.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.dec(Metric::TransportConnections);
    }
}

/// Mint the session, install the route waker, and build the state
/// machine for a freshly accepted connection.
fn register_conn(
    id: u64,
    stream: TcpStream,
    shared: &Arc<ServerShared>,
    inbox: &Arc<LoopInbox>,
) -> Conn {
    let session: Arc<dyn NodeHandle> =
        Arc::from(shared.factory.open_session(shared.config.route_capacity));
    let queued = Arc::new(AtomicBool::new(false));
    {
        let queued = Arc::clone(&queued);
        let inbox = Arc::clone(inbox);
        let metrics = Arc::clone(&shared.metrics);
        // Push-then-wake, dedup'd: the first delivery of a burst posts
        // the conn id and signals the pipe; the rest ride along free.
        session.register_waker(Arc::new(move || {
            if !queued.swap(true, Ordering::AcqRel) {
                inbox.ready.lock().expect("inbox poisoned").push(id);
                inbox.wake(&metrics);
            }
        }));
    }
    Conn {
        stream,
        session,
        asm: FrameAssembler::new(),
        wire: FrameWriter::with_metrics(OutRing::default(), Arc::clone(&shared.metrics)),
        pending: 0,
        queued,
        last_activity: Instant::now(),
        interest: Interest::READ,
        serviced_tick: 0,
        hot: false,
        read_paused: false,
        draining: false,
        dead: false,
    }
}

/// Push the connection's interest edges to the backend: recompute the
/// desired mask and issue a `modify` only when it drifted from what is
/// registered. This is the O(1)-per-edge half of the O(active) tick —
/// a connection whose state didn't change costs no syscall at all.
fn sync_interest(id: u64, conn: &mut Conn, backend: &mut dyn EventBackend) {
    if conn.dead {
        return;
    }
    let want = conn.desired_interest();
    if want == conn.interest {
        return;
    }
    if backend.modify(conn.stream.as_raw_fd(), id, want).is_err() {
        conn.dead = true;
        return;
    }
    conn.interest = want;
}

/// Drain freshly queued output and settle a drain-then-close: results
/// go out on the tick they are produced (the kernel buffer is almost
/// always writable), and a `draining` connection whose queue just
/// emptied dies here.
fn flush_out(conn: &mut Conn, shared: &ServerShared) {
    if !conn.dead && conn.wire.get_ref().pending() > 0 {
        write_conn(conn, shared);
    }
    if conn.draining && conn.wire.get_ref().pending() == 0 {
        conn.dead = true;
    }
}

/// Close the session and the socket, and release the connection's slot
/// in the live count/gauge.
fn teardown_conn(conn: &mut Conn, shared: &ServerShared) {
    conn.session.close();
    let _ = conn.stream.shutdown(Shutdown::Both);
    shared.live.fetch_sub(1, Ordering::AcqRel);
    shared.metrics.dec(Metric::TransportConnections);
}

/// Drain the session's event queue into the out ring (non-blocking; the
/// route waker re-posts if a delivery races the drain).
fn drain_session(conn: &mut Conn) {
    // Clear the dedup flag *before* draining: a delivery that lands
    // after this store re-posts the conn, so nothing is lost; one that
    // lands before is picked up by this very drain.
    conn.queued.store(false, Ordering::Release);
    loop {
        if conn.dead || conn.draining {
            return;
        }
        match conn.session.try_recv() {
            TryPop::Item(event) => {
                let Some(frame) = event_frame(event) else {
                    // A proxied upstream died (`Down` has no wire form):
                    // this connection ends with it.
                    conn.dead = true;
                    return;
                };
                conn.pending = conn.pending.saturating_sub(1);
                conn.wire.send_segment(&frame);
                if let Frame::Result(r) = frame {
                    // The trace itself drained at delivery; this is its
                    // wire-tx causal counterpart in the flight recorder.
                    conn.session.note_wire_tx(r.id);
                }
            }
            TryPop::Empty => return,
            TryPop::Closed => {
                // Engine/session gone: whatever is already encoded still
                // goes out, then the connection closes.
                conn.draining = true;
                return;
            }
        }
    }
}

/// The wire frame answering one session event. Local sessions only emit
/// results; a proxy session (a remote node chained behind this server)
/// would also relay its upstream's BUSY/REJECT verdicts. `Down` has no
/// wire form — a proxied upstream dying ends this connection too
/// (`None`), and the client's own health checking takes over from there.
fn event_frame(event: NodeEvent) -> Option<Frame> {
    match event {
        NodeEvent::Result(result) => Some(Frame::Result(result)),
        NodeEvent::Busy(id) => Some(Frame::Busy(id)),
        NodeEvent::Rejected(id) => Some(Frame::Reject(id)),
        NodeEvent::Down => None,
    }
}

/// Budgeted nonblocking read: pull at most `read_budget` bytes this
/// tick, feeding the assembler and processing every complete frame.
fn read_conn(conn: &mut Conn, shared: &ServerShared, scratch: &mut [u8]) {
    let mut budget = shared.config.read_budget.max(1);
    conn.hot = false;
    loop {
        if conn.dead || conn.draining || conn.read_paused {
            return;
        }
        if budget == 0 {
            // Bytes may still be pending in the kernel buffer; come
            // back next tick so siblings on this loop get their turn.
            conn.hot = true;
            shared.metrics.inc(Metric::ReactorReadBudgetExhausted);
            return;
        }
        let want = budget.min(scratch.len());
        match (&conn.stream).read(&mut scratch[..want]) {
            Ok(0) => {
                // Clean EOF: the tenant hung up. In-flight results have
                // nowhere to go — teardown drops them, as the blocking
                // front did.
                conn.dead = true;
                return;
            }
            Ok(n) => {
                budget -= n;
                conn.last_activity = Instant::now();
                conn.asm.extend(&scratch[..n]);
                if !process_frames(conn, shared) {
                    conn.dead = true;
                    return;
                }
                if n < want {
                    return; // short read: kernel buffer is drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Decode and serve every complete frame the assembler holds. Returns
/// `false` when the connection must end (torn stream, protocol
/// violation, or the node behind it is gone).
fn process_frames(conn: &mut Conn, shared: &ServerShared) -> bool {
    loop {
        let frame = match conn.asm.next_frame_metered(&shared.metrics) {
            Ok(Some((frame, _))) => frame,
            Ok(None) => return true, // partial frame: wait for more bytes
            Err(_) => return false,  // torn/corrupt stream: no resync possible
        };
        // When this frame is a SUBMIT whose job gets sampled, this is
        // the instant its trace's `wire_rx` span records.
        let received = Instant::now();
        match frame {
            Frame::Submit(spec) => {
                // Semantic validation without unwinding the loop: remote
                // peers must not be able to panic the server with a bad
                // spec, nor OOM the process with a well-formed spec whose
                // buffers would be astronomically large.
                if !spec.is_feasible()
                    || spec.n > shared.config.max_dimension
                    || spec.m > shared.config.max_dimension
                {
                    shared.metrics.inc(Metric::JobsRejected);
                    conn.wire.send_segment(&Frame::Reject(spec.id));
                } else if conn.pending >= shared.config.route_capacity {
                    // Per-connection in-flight cap: a tenant at its
                    // window gets BUSY like any other backpressure —
                    // explicit, retryable, never a drop.
                    conn.wire.send_segment(&Frame::Busy(spec.id));
                } else {
                    conn.pending += 1;
                    match conn.session.try_submit_stamped(spec, Some(received)) {
                        Ok(SubmitOutcome::Accepted) => {}
                        Ok(SubmitOutcome::Busy) => {
                            conn.pending -= 1;
                            // The explicit backpressure contract: full
                            // queue ⇒ BUSY reply carrying the id, never
                            // a silent drop.
                            conn.wire.send_segment(&Frame::Busy(spec.id));
                        }
                        Err(NodeError::Closed) | Err(NodeError::Io(_)) => return false,
                    }
                }
            }
            Frame::Prewarm(key) => {
                // Administrative fire-and-forget (no reply channel, no
                // pending slot). Same door policy as SUBMIT: a shape past
                // the dimension cap could OOM the node via the sampler,
                // so oversized or degenerate keys are silently ignored —
                // the worst case is a cold miss later.
                if key.n == 0
                    || key.m == 0
                    || key.n > shared.config.max_dimension
                    || key.m > shared.config.max_dimension
                    || !(1..=1000).contains(&key.c_milli)
                {
                    continue;
                }
                let _ = conn.session.prewarm(std::slice::from_ref(&key));
            }
            Frame::StatsRequest(token) => {
                // Scrape: answer with this session's observable stats,
                // echoing the token. A session with nothing to observe
                // stays silent — the scraper's deadline turns that into
                // a stats-unavailable marker, which is honest, whereas
                // an all-zeros reply would silently dilute merges.
                if let Some(stats) = conn.session.stats() {
                    shared.metrics.inc(Metric::StatsScrapes);
                    conn.wire.send_segment(&Frame::Stats(StatsReply { token, stats }));
                }
            }
            // RESULT/BUSY/REJECT/STATS flow server→client only;
            // receiving one here is a protocol violation — drop the
            // connection.
            Frame::Result(_) | Frame::Busy(_) | Frame::Reject(_) | Frame::Stats(_) => return false,
        }
        // A tenant that won't read its replies gets its output bounded:
        // past high water the loop stops reading from it, so it can
        // stall only itself (its cap-bounded results always fit).
        if conn.wire.get_ref().pending() >= Conn::pause_high(&shared.config) {
            conn.read_paused = true;
            return true;
        }
    }
}

/// Drain the outbound segment queue against the nonblocking socket
/// with vectored writes — every queued frame rides one `writev`
/// gather, and a partial write advances the queue's head offset so the
/// resume (next tick, when the backend reports writability again)
/// starts mid-segment without any byte ever being copied.
fn write_conn(conn: &mut Conn, shared: &ServerShared) {
    let fd = conn.stream.as_raw_fd();
    loop {
        let mut iovs = [IoVec::empty(); MAX_IOV];
        let ring = conn.wire.get_mut();
        let (count, attempted) = ring.fill_iovs(&mut iovs);
        if count == 0 {
            break;
        }
        shared.metrics.inc(Metric::TransportWritevCalls);
        match writev_fd(fd, &iovs[..count]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                if n < attempted {
                    shared.metrics.inc(Metric::TransportPartialWrites);
                }
                ring.advance(n);
                conn.last_activity = Instant::now();
                if n < attempted {
                    break; // kernel send buffer is full; resume next tick
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    // Resuming reads at half the pause threshold (not zero) keeps a
    // borderline tenant from flapping between paused and resumed on
    // every frame.
    if conn.read_paused && conn.wire.get_ref().pending() < Conn::pause_high(&shared.config) / 2 {
        conn.read_paused = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Encoded wire bytes of one BUSY frame (convenient fixed-size
    /// segment for queue arithmetic).
    fn busy_len() -> usize {
        let mut writer = FrameWriter::new(OutRing::default());
        writer.send_segment(&Frame::Busy(0));
        writer.get_ref().pending()
    }

    /// The zero-copy regression the old byte ring failed: while a
    /// partial write is outstanding, appending more frames must not
    /// move a single already-encoded byte. The byte ring compacted with
    /// `buf.drain(..pos)` on append — every unsent byte memmoved, O(n)
    /// per append for a write-blocked tenant. The segment queue is
    /// pinned here by address: the storage of every queued segment
    /// stays exactly where the encoder left it.
    #[test]
    fn appends_never_move_queued_bytes_while_a_partial_write_is_outstanding() {
        let mut writer = FrameWriter::new(OutRing::default());
        writer.send_segment(&Frame::Busy(1));
        writer.send_segment(&Frame::Busy(2));
        let frame_len = busy_len();

        // A partial write consumed half of the front segment…
        writer.get_mut().advance(frame_len / 2);
        let ring = writer.get_ref();
        assert_eq!(ring.head, frame_len / 2);
        let pinned: Vec<(usize, Vec<u8>)> =
            ring.segs.iter().map(|s| (s.as_ptr() as usize, s.clone())).collect();

        // …and the write-blocked tenant keeps accumulating replies.
        for id in 3..300u64 {
            writer.send_segment(&Frame::Busy(id));
        }
        let ring = writer.get_ref();
        for (i, (ptr, bytes)) in pinned.iter().enumerate() {
            assert_eq!(
                ring.segs[i].as_ptr() as usize,
                *ptr,
                "segment {i} storage moved on append — the outbound path re-copied bytes"
            );
            assert_eq!(&ring.segs[i], bytes, "segment {i} content changed on append");
        }
        assert_eq!(ring.head, frame_len / 2, "append must not disturb the resume offset");
        assert_eq!(ring.pending(), 299 * frame_len - frame_len / 2);
    }

    /// Partial-write resume walks segment boundaries correctly and
    /// retires drained segments into the spare pool, whose buffers the
    /// encoder then reuses — steady-state appends allocate nothing.
    #[test]
    fn advance_retires_segments_and_recycles_their_buffers() {
        let mut writer = FrameWriter::new(OutRing::default());
        for id in 0..4u64 {
            writer.send_segment(&Frame::Busy(id));
        }
        let frame_len = busy_len();
        let retired_ptr = writer.get_ref().segs[0].as_ptr() as usize;

        // Drain 1.5 frames: segment 0 retires, segment 1 is half done.
        writer.get_mut().advance(frame_len + frame_len / 2);
        let ring = writer.get_ref();
        assert_eq!(ring.segs.len(), 3);
        assert_eq!(ring.head, frame_len / 2);
        assert_eq!(ring.pending(), 3 * frame_len - frame_len / 2);
        assert_eq!(ring.spare.len(), 1, "drained segment joins the spare pool");

        // The next encode reuses the retired buffer, byte-for-byte.
        writer.send_segment(&Frame::Busy(99));
        let ring = writer.get_ref();
        assert_eq!(
            ring.segs.back().expect("queued").as_ptr() as usize,
            retired_ptr,
            "encoder must reuse the recycled segment buffer"
        );

        // Draining everything empties the queue and zeroes the offset.
        let rest = writer.get_ref().pending();
        writer.get_mut().advance(rest);
        let ring = writer.get_ref();
        assert_eq!((ring.pending(), ring.head, ring.segs.len()), (0, 0, 0));
    }

    /// `fill_iovs` exposes exactly the unsent bytes: the front segment
    /// from its head offset, then whole segments, capped at `MAX_IOV`.
    #[test]
    fn fill_iovs_covers_the_unsent_suffix_only() {
        let mut writer = FrameWriter::new(OutRing::default());
        for id in 0..3u64 {
            writer.send_segment(&Frame::Busy(id));
        }
        let frame_len = busy_len();
        writer.get_mut().advance(5);
        let mut iovs = [IoVec::empty(); MAX_IOV];
        let (count, bytes) = writer.get_ref().fill_iovs(&mut iovs);
        assert_eq!(count, 3);
        assert_eq!(bytes, 3 * frame_len - 5);
        assert_eq!(iovs[0].len(), frame_len - 5);
        assert_eq!(iovs[1].len(), frame_len);

        // Over MAX_IOV segments: one gather's worth, the rest next call.
        for id in 0..(MAX_IOV as u64 + 40) {
            writer.send_segment(&Frame::Busy(id));
        }
        let (count, _) = writer.get_ref().fill_iovs(&mut iovs);
        assert_eq!(count, MAX_IOV);
    }

    #[test]
    fn idle_wheel_examines_a_connection_once_per_timeout_not_per_sweep() {
        let start = Instant::now();
        let timeout = Duration::from_millis(100);
        let granularity = Duration::from_millis(25);
        let mut wheel = IdleWheel::new(timeout, granularity, start);
        let mut due = Vec::new();

        wheel.schedule(7, start + timeout, start);
        // Three sweeps' worth of advancing: the id must not surface
        // early (the per-sweep full scan is what the wheel replaces).
        wheel.collect_due(start + Duration::from_millis(80), &mut due);
        assert!(due.is_empty(), "id surfaced {due:?} before its deadline bucket");
        // Crossing the deadline granule surfaces it exactly once.
        wheel.collect_due(start + Duration::from_millis(105), &mut due);
        assert_eq!(due, vec![7]);
        wheel.collect_due(start + Duration::from_millis(130), &mut due);
        assert!(due.is_empty(), "an id never surfaces twice without a reschedule");
    }

    #[test]
    fn idle_wheel_reschedule_tracks_fresh_activity() {
        let start = Instant::now();
        let timeout = Duration::from_millis(100);
        let mut wheel = IdleWheel::new(timeout, Duration::from_millis(25), start);
        let mut due = Vec::new();
        wheel.schedule(3, start + timeout, start);
        let now = start + Duration::from_millis(105);
        wheel.collect_due(now, &mut due);
        assert_eq!(due, vec![3]);
        // The connection was active at +90ms: the loop reschedules it
        // for +190ms rather than evicting.
        let last_activity = start + Duration::from_millis(90);
        wheel.schedule(3, last_activity + timeout, now);
        wheel.collect_due(start + Duration::from_millis(180), &mut due);
        assert!(due.is_empty(), "rescheduled id must wait for its new deadline");
        wheel.collect_due(start + Duration::from_millis(200), &mut due);
        assert_eq!(due, vec![3]);
    }

    #[test]
    fn idle_wheel_survives_a_long_stall_without_spinning() {
        let start = Instant::now();
        let mut wheel = IdleWheel::new(Duration::from_secs(1), Duration::from_millis(250), start);
        let mut due = Vec::new();
        wheel.schedule(1, start + Duration::from_secs(1), start);
        // A multi-minute stall (suspended VM) advances at most one full
        // revolution and still surfaces everything scheduled.
        wheel.collect_due(start + Duration::from_secs(300), &mut due);
        assert_eq!(due, vec![1]);
        wheel.collect_due(start + Duration::from_secs(301), &mut due);
        assert!(due.is_empty());
    }

    /// Past-due and far-future deadlines clamp into the wheel instead
    /// of panicking or parking forever.
    #[test]
    fn idle_wheel_clamps_deadlines_into_its_horizon() {
        let start = Instant::now();
        let timeout = Duration::from_millis(100);
        let granularity = Duration::from_millis(25);
        let mut wheel = IdleWheel::new(timeout, granularity, start);
        let mut due = Vec::new();
        wheel.schedule(1, start, start); // already due
        wheel.schedule(2, start + Duration::from_secs(3600), start); // far out
        wheel.collect_due(start + granularity, &mut due);
        assert_eq!(due, vec![1], "past-due lands in the very next granule");
        wheel.collect_due(start + timeout + 2 * granularity, &mut due);
        assert_eq!(due, vec![2], "far deadlines clamp to the wheel horizon");
    }
}
