//! Blocking TCP front over a [`NodeHandle`] session per connection.
//!
//! One accept thread, two threads per connection:
//!
//! ```text
//!            ┌─ reader thread:  SUBMIT frames ──► session.try_submit
//!            │        │  sync Busy ⇒ BUSY(id)    (never a silent drop)
//!  TcpStream ┤        │  infeasible ⇒ REJECT(id)
//!            └─ writer thread:  session.recv events ──► RESULT/BUSY/REJECT frames
//! ```
//!
//! The server no longer knows what an [`Engine`] is: each accepted
//! connection gets a private [`NodeHandle`] session minted by a
//! [`NodeFactory`] — for the canonical `Arc<Engine>` factory that is a
//! [`LocalNode`] attached over its own [`ResultRoute`], which is
//! exactly the pre-refactor per-connection route, now expressed through
//! the same abstraction the cluster router uses. Concurrent tenants
//! only ever see their own completions, and the engine's shared
//! completion stream (used by in-process `run_batch` callers) stays
//! untouched. Serving a different backend (another engine wrapper, a
//! router-fronted cluster) is a factory away, not a server rewrite.
//!
//! Backpressure is explicit end to end: a full submission queue
//! surfaces as the session's synchronous [`SubmitOutcome::Busy`] and
//! turns into a `BUSY` reply frame carrying the job id — the client
//! decides whether to retry — and a full per-connection event queue
//! blocks the worker delivering into it (which the writer thread
//! drains), exactly like the in-process bounded queues.
//!
//! The server trusts determinism, not the network: a malformed frame
//! (bad magic, bad checksum, torn stream) terminates the connection —
//! after a framing error there is no way to resynchronize, and decoding
//! a corrupted `JobSpec` would break the bit-identical-results contract
//! the loopback suite pins.
//!
//! [`Engine`]: crate::engine::Engine
//! [`LocalNode`]: crate::cluster::node::LocalNode
//! [`ResultRoute`]: crate::engine::ResultRoute

use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::cluster::node::{NodeError, NodeEvent, NodeFactory, NodeHandle, SubmitOutcome};
use crate::engine::Engine;
use crate::queue::TryPop;
use crate::telemetry::{Metric, MetricsRegistry};
use crate::transport::frame::{read_frame_metered, Frame, FrameWriter, StatsReply};

/// Transport sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Per-connection cap on jobs in flight (accepted but not yet
    /// written back as `RESULT` frames). Doubles as the connection's
    /// event-queue bound. A tenant at its cap gets `BUSY` replies, so
    /// a stalled tenant that pipelines submissions without reading can
    /// never park an engine worker on its full result queue — tenant
    /// isolation is a liveness guarantee, not just a routing one.
    pub route_capacity: usize,
    /// Upper bound on a remote spec's `n` and `m`. `is_feasible` admits
    /// any self-consistent shape, but a network peer could send a
    /// well-formed `SUBMIT` whose buffers would exhaust memory and take
    /// every tenant down; anything larger than this is `REJECT`ed at
    /// the door.
    pub max_dimension: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self { route_capacity: 256, max_dimension: 1 << 24 }
    }
}

/// Shared between the accept loop and `stop`.
struct ServerShared {
    factory: Arc<dyn NodeFactory>,
    config: TransportConfig,
    stopping: AtomicBool,
    /// `(conn id, socket clone)` per **live** connection, so `stop` can
    /// shut the sockets down and unblock reader threads parked in
    /// `read`. Each connection removes its own entry on exit — a
    /// long-running server must not leak one fd per tenant that ever
    /// connected.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn: AtomicU64,
    /// Server-wide wire accounting (all connections share one registry:
    /// frames/bytes both ways, checksum rejects, rejected jobs,
    /// answered scrapes).
    metrics: Arc<MetricsRegistry>,
}

/// A listening TCP front. Dropping without [`TransportServer::stop`]
/// aborts the accept loop on its next wake-up but does not join it;
/// call `stop` for a deterministic teardown.
pub struct TransportServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_handle: Option<JoinHandle<()>>,
}

impl TransportServer {
    /// Bind `addr` (use port 0 for an ephemeral loopback port) and start
    /// accepting connections against `engine` — the canonical factory:
    /// every connection becomes a [`LocalNode`] session on this engine.
    ///
    /// [`LocalNode`]: crate::cluster::node::LocalNode
    pub fn bind<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with(engine, addr, config)
    }

    /// Bind `addr` and serve sessions minted by an arbitrary
    /// [`NodeFactory`] — the general form: what a connection talks to
    /// is the factory's business, not the server's.
    pub fn bind_with<F, A>(factory: F, addr: A, config: TransportConfig) -> std::io::Result<Self>
    where
        F: NodeFactory + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            factory: Arc::new(factory),
            config,
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("transport-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("failed to spawn transport accept thread");
        Ok(Self { local_addr, shared, accept_handle: Some(accept_handle) })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This server's wire accounting, summed over all connections.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Connections currently being served (observability; also pins the
    /// no-fd-leak contract — a disconnected tenant's entry is gone once
    /// its threads wind down).
    pub fn live_connections(&self) -> usize {
        self.shared.conns.lock().expect("conn list poisoned").len()
    }

    /// Stop accepting, drop every live connection, and join all transport
    /// threads. The nodes behind the factory keep running — their owner
    /// shuts them down.
    pub fn stop(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it only observes `stopping` between
        // accepts, so poke it with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("transport accept thread panicked");
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        // Reap finished connections so a long-running server's handle
        // list tracks live tenants, not every tenant that ever was.
        conn_handles.retain(|h| !h.is_finished());
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue, // transient accept error; keep serving
        };
        let _ = stream.set_nodelay(true);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conn list poisoned").push((conn_id, clone));
        }
        let conn_shared = Arc::clone(shared);
        if let Ok(handle) = std::thread::Builder::new()
            .name("transport-conn".into())
            .spawn(move || serve_connection(conn_id, stream, &conn_shared))
        {
            conn_handles.push(handle);
        }
    }
    // Shut every live socket down so reader threads parked in `read`
    // wake with EOF, then join them (each joins its own writer).
    for (_, conn) in shared.conns.lock().expect("conn list poisoned").iter() {
        let _ = conn.shutdown(Shutdown::Both);
    }
    for handle in conn_handles {
        handle.join().expect("transport connection thread panicked");
    }
}

/// The connection's frame sink, shared by its two producers (the
/// writer thread streams session events, the reader thread interjects
/// immediate BUSY/REJECT answers).
type WireWriter = FrameWriter<BufWriter<TcpStream>>;

fn serve_connection(conn_id: u64, stream: TcpStream, shared: &ServerShared) {
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            forget_connection(conn_id, shared);
            return;
        }
    };
    // This connection's private place-jobs-run: for the `Arc<Engine>`
    // factory, a LocalNode over a fresh ResultRoute.
    let session: Arc<dyn NodeHandle> =
        Arc::from(shared.factory.open_session(shared.config.route_capacity));
    let wire = Arc::new(Mutex::new(WireWriter::with_metrics(
        BufWriter::new(write_stream),
        Arc::clone(&shared.metrics),
    )));
    // Jobs accepted but not yet answered on the wire. Bounding this at
    // `route_capacity` (reader refuses with BUSY at the cap) is what
    // keeps workers from ever blocking on this tenant's event queue: at
    // most `route_capacity` results can exist at once, and the queue
    // holds exactly that many — a worker's push always finds room, even
    // if the tenant stops reading forever.
    let pending = Arc::new(AtomicUsize::new(0));

    // Writer thread: drain this connection's session events. The
    // tri-state `try_recv` is what makes the loop correct: `Empty` means
    // flush the burst and park in the blocking `recv`, `Closed` means
    // the tenant or node is gone — terminate instead of polling a dead
    // stream.
    let writer_session = Arc::clone(&session);
    let writer_wire = Arc::clone(&wire);
    let writer_pending = Arc::clone(&pending);
    let writer = std::thread::Builder::new()
        .name("transport-writer".into())
        .spawn(move || writer_loop(writer_session.as_ref(), &writer_wire, &writer_pending))
        .expect("failed to spawn transport writer");

    reader_loop(&stream, shared, session.as_ref(), &wire, &pending);

    // Reader is done (EOF, framing error, or node shutdown): close the
    // session so the writer drains what's buffered and exits, and so
    // workers finishing this tenant's in-flight jobs drop their results
    // instead of blocking on a stream nobody reads.
    session.close();
    writer.join().expect("transport writer panicked");
    let _ = stream.shutdown(Shutdown::Both);
    forget_connection(conn_id, shared);
}

/// Drop this connection's socket clone from the live list (a server
/// handling short-lived tenants must not leak a descriptor per connect).
fn forget_connection(conn_id: u64, shared: &ServerShared) {
    shared.conns.lock().expect("conn list poisoned").retain(|(id, _)| *id != conn_id);
}

/// The wire frame answering one session event. Local sessions only emit
/// results; a proxy session (a remote node chained behind this server)
/// would also relay its upstream's BUSY/REJECT verdicts. `Down` has no
/// wire form — a proxied upstream dying ends this connection too
/// (`None`), and the client's own health checking takes over from there.
fn event_frame(event: NodeEvent) -> Option<Frame> {
    match event {
        NodeEvent::Result(result) => Some(Frame::Result(result)),
        NodeEvent::Busy(id) => Some(Frame::Busy(id)),
        NodeEvent::Rejected(id) => Some(Frame::Reject(id)),
        NodeEvent::Down => None,
    }
}

/// Relay one session event onto the wire. `false` means the connection
/// should end (peer gone, or the event was terminal).
fn relay_event(
    event: NodeEvent,
    session: &dyn NodeHandle,
    wire: &Mutex<WireWriter>,
    pending: &AtomicUsize,
) -> bool {
    let Some(frame) = event_frame(event) else {
        return false;
    };
    let mut w = wire.lock().expect("wire writer poisoned");
    let sent = w.send(&frame);
    drop(w);
    pending.fetch_sub(1, Ordering::AcqRel);
    if sent.is_ok() {
        if let NodeEvent::Result(r) = event {
            // The trace itself drained at delivery; this is its wire-tx
            // causal counterpart in the flight recorder.
            session.note_wire_tx(r.id);
        }
    }
    sent.is_ok()
}

fn writer_loop(session: &dyn NodeHandle, wire: &Mutex<WireWriter>, pending: &AtomicUsize) {
    loop {
        match session.try_recv() {
            TryPop::Item(event) => {
                if !relay_event(event, session, wire, pending) {
                    return; // peer or upstream gone; reader closes the session
                }
            }
            TryPop::Empty => {
                // Burst over: flush what the tenant is waiting on, then
                // park in the blocking recv until traffic resumes.
                if wire.lock().expect("wire writer poisoned").flush().is_err() {
                    return;
                }
                match session.recv() {
                    Some(event) => {
                        if !relay_event(event, session, wire, pending) {
                            return;
                        }
                    }
                    None => break,
                }
            }
            TryPop::Closed => break,
        }
    }
    let _ = wire.lock().expect("wire writer poisoned").flush();
}

fn reader_loop(
    stream: &TcpStream,
    shared: &ServerShared,
    session: &dyn NodeHandle,
    wire: &Mutex<WireWriter>,
    pending: &AtomicUsize,
) {
    let mut r = BufReader::new(stream);
    let mut scratch = Vec::new();
    loop {
        let frame = match read_frame_metered(&mut r, &mut scratch, &shared.metrics) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean disconnect
            Err(_) => return,   // torn/corrupt stream: no resync possible
        };
        // When this frame is a SUBMIT whose job gets sampled, this is
        // the instant its trace's `wire_rx` span records.
        let received = std::time::Instant::now();
        match frame {
            Frame::Submit(spec) => {
                // Semantic validation without unwinding the thread: remote
                // peers must not be able to panic a reader with a bad
                // spec, nor OOM the process with a well-formed spec whose
                // buffers would be astronomically large.
                if !spec.is_feasible()
                    || spec.n > shared.config.max_dimension
                    || spec.m > shared.config.max_dimension
                {
                    shared.metrics.inc(Metric::JobsRejected);
                    if send_now(wire, &Frame::Reject(spec.id)).is_err() {
                        return;
                    }
                    continue;
                }
                // Per-connection in-flight cap (see `serve_connection`):
                // a tenant at its window gets BUSY like any other
                // backpressure — explicit, retryable, never a drop.
                if pending.load(Ordering::Acquire) >= shared.config.route_capacity {
                    if send_now(wire, &Frame::Busy(spec.id)).is_err() {
                        return;
                    }
                    continue;
                }
                pending.fetch_add(1, Ordering::AcqRel);
                match session.try_submit_stamped(spec, Some(received)) {
                    Ok(SubmitOutcome::Accepted) => {}
                    Ok(SubmitOutcome::Busy) => {
                        pending.fetch_sub(1, Ordering::AcqRel);
                        // The explicit backpressure contract: full queue ⇒
                        // BUSY reply carrying the id, never a silent drop.
                        if send_now(wire, &Frame::Busy(spec.id)).is_err() {
                            return;
                        }
                    }
                    Err(NodeError::Closed) | Err(NodeError::Io(_)) => return, // node gone
                }
            }
            Frame::Prewarm(key) => {
                // Administrative fire-and-forget (no reply channel, no
                // pending slot). Same door policy as SUBMIT: a shape past
                // the dimension cap could OOM the node via the sampler,
                // so oversized or degenerate keys are silently ignored —
                // the worst case is a cold miss later.
                if key.n == 0
                    || key.m == 0
                    || key.n > shared.config.max_dimension
                    || key.m > shared.config.max_dimension
                    || !(1..=1000).contains(&key.c_milli)
                {
                    continue;
                }
                let _ = session.prewarm(std::slice::from_ref(&key));
            }
            Frame::StatsRequest(token) => {
                // Scrape: answer with this session's observable stats,
                // echoing the token. A session with nothing to observe
                // stays silent — the scraper's deadline turns that into
                // a stats-unavailable marker, which is honest, whereas
                // an all-zeros reply would silently dilute merges.
                if let Some(stats) = session.stats() {
                    shared.metrics.inc(Metric::StatsScrapes);
                    if send_now(wire, &Frame::Stats(StatsReply { token, stats })).is_err() {
                        return;
                    }
                }
            }
            // RESULT/BUSY/REJECT/STATS flow server→client only;
            // receiving one here is a protocol violation — drop the
            // connection.
            Frame::Result(_) | Frame::Busy(_) | Frame::Reject(_) | Frame::Stats(_) => return,
        }
    }
}

/// Send a reply frame and flush immediately — BUSY/REJECT are answers the
/// client is actively waiting on; parking them in the buffer could
/// deadlock a client that blocks on the reply before sending more.
fn send_now(wire: &Mutex<WireWriter>, frame: &Frame) -> std::io::Result<()> {
    let mut w = wire.lock().expect("wire writer poisoned");
    w.send(frame)?;
    w.flush()
}
