//! Readiness-driven TCP front over a [`NodeHandle`] session per
//! connection.
//!
//! One accept thread, N event-loop threads, zero per-connection
//! threads:
//!
//! ```text
//!  accept ──(conn_id % N)──► loop thread: poll(wake pipe + every conn fd)
//!                              │
//!                              ├─ readable ► budgeted read ► FrameAssembler
//!                              │      SUBMIT ► session.try_submit (sync Busy ⇒ BUSY(id))
//!                              │      infeasible ⇒ REJECT(id)   (never a silent drop)
//!                              ├─ route waker ► session.try_recv drain ► out ring
//!                              └─ writable ► partial-write resume from out ring
//! ```
//!
//! Each connection is a state machine, not a thread pair: an inbound
//! [`FrameAssembler`] that decodes across partial reads, an outbound
//! byte ring with partial-write resume, and a per-tick read budget.
//! The loop parks in `poll(2)` and is roused by socket readiness or by
//! the engine-side route waker ([`NodeHandle::register_waker`]) when a
//! worker finishes a job — results are pushed to the loop, never
//! polled for.
//!
//! Tenant isolation is a liveness guarantee at three layers:
//!
//! * a tenant at its in-flight cap gets `BUSY` (its results queue can
//!   never fill, so workers never block on a slow socket);
//! * a write-blocked tenant accumulates output only to a bounded high
//!   water, after which the loop stops *reading* from it (its own
//!   submissions stall, nobody else's);
//! * a firehose tenant is cut off at the per-tick read budget and
//!   resumed next tick; an idle or Slowloris tenant is evicted after
//!   [`TransportConfig::idle_timeout`].
//!
//! The server still doesn't know what an [`Engine`] is: each accepted
//! connection gets a private [`NodeHandle`] session minted by a
//! [`NodeFactory`] — for the canonical `Arc<Engine>` factory that is a
//! [`LocalNode`] attached over its own [`ResultRoute`]. Concurrent
//! tenants only ever see their own completions, and the engine's
//! shared completion stream stays untouched.
//!
//! The server trusts determinism, not the network: a malformed frame
//! (bad magic, bad checksum, torn stream) terminates the connection —
//! after a framing error there is no way to resynchronize, and
//! decoding a corrupted `JobSpec` would break the bit-identical
//! results contract the loopback suite pins.
//!
//! [`Engine`]: crate::engine::Engine
//! [`LocalNode`]: crate::cluster::node::LocalNode
//! [`ResultRoute`]: crate::engine::ResultRoute
//! [`FrameAssembler`]: crate::transport::frame::FrameAssembler

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cluster::node::{NodeError, NodeEvent, NodeFactory, NodeHandle, SubmitOutcome};
use crate::engine::Engine;
use crate::queue::TryPop;
use crate::telemetry::{Metric, MetricsRegistry};
use crate::transport::frame::{Frame, FrameAssembler, FrameWriter, StatsReply};
use crate::transport::reactor::{
    poll_fds, PollFd, WakePipe, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT,
};

/// Transport sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Per-connection cap on jobs in flight (accepted but not yet
    /// written back as `RESULT` frames). Doubles as the connection's
    /// event-queue bound. A tenant at its cap gets `BUSY` replies, so
    /// a stalled tenant that pipelines submissions without reading can
    /// never park an engine worker on its full result queue — tenant
    /// isolation is a liveness guarantee, not just a routing one.
    pub route_capacity: usize,
    /// Upper bound on a remote spec's `n` and `m`. `is_feasible` admits
    /// any self-consistent shape, but a network peer could send a
    /// well-formed `SUBMIT` whose buffers would exhaust memory and take
    /// every tenant down; anything larger than this is `REJECT`ed at
    /// the door.
    pub max_dimension: usize,
    /// Event-loop threads. Connections are assigned at accept time
    /// (`conn_id % event_loops`); each loop multiplexes its share with
    /// `poll(2)`. Server thread count is `1 + event_loops`, independent
    /// of connection count.
    pub event_loops: usize,
    /// Per-connection, per-tick read budget in bytes. A firehose tenant
    /// that keeps the kernel buffer full is cut off at this budget each
    /// tick and resumed the next, so it pays latency for its own volume
    /// instead of starving the other tenants on its loop.
    pub read_budget: usize,
    /// Evict a connection after this long without a byte of progress in
    /// either direction (Slowloris/abandoned-tenant reclamation).
    /// `None` disables eviction.
    pub idle_timeout: Option<Duration>,
    /// Accept-time cap on concurrent connections; connection attempts
    /// beyond it are dropped at the door (the fd is the scarce resource
    /// being protected, so no protocol reply is owed).
    pub max_connections: usize,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            route_capacity: 256,
            max_dimension: 1 << 24,
            event_loops: 2,
            read_budget: 64 * 1024,
            idle_timeout: Some(Duration::from_secs(300)),
            max_connections: 65_536,
        }
    }
}

/// Read-chunk size: one `read` syscall per chunk, sized so a typical
/// submit burst lands in one go.
const READ_CHUNK: usize = 16 * 1024;

/// Shared between the accept loop, the event loops, and `stop`.
struct ServerShared {
    factory: Arc<dyn NodeFactory>,
    config: TransportConfig,
    stopping: AtomicBool,
    /// Live connection count (accept increments, teardown decrements);
    /// mirrored by the `pooled_transport_connections` gauge.
    live: AtomicUsize,
    next_conn: AtomicU64,
    /// Server-wide wire accounting (all connections share one registry:
    /// frames/bytes both ways, checksum rejects, rejected jobs,
    /// answered scrapes, reactor wakeups/budget/evictions).
    metrics: Arc<MetricsRegistry>,
    /// One inbox per event loop: the accept thread and route wakers
    /// post to it, the loop drains it at the top of every tick.
    inboxes: Vec<Arc<LoopInbox>>,
}

/// Cross-thread mailbox of one event loop.
struct LoopInbox {
    /// Connections accepted but not yet registered with the loop.
    new_conns: Mutex<Vec<(u64, TcpStream)>>,
    /// Connections whose session has undrained events (posted by route
    /// wakers, deduplicated by each connection's `queued` flag).
    ready: Mutex<Vec<u64>>,
    /// Rouses the loop out of `poll(2)`.
    wake: WakePipe,
}

impl LoopInbox {
    /// Wake the loop, counting wakeups that actually signaled the pipe
    /// (coalesced wakes are free and uncounted).
    fn wake(&self, metrics: &MetricsRegistry) {
        if self.wake.wake() {
            metrics.inc(Metric::ReactorWakeups);
        }
    }
}

/// A listening TCP front. Dropping without [`TransportServer::stop`]
/// abandons the threads (they exit on their next wake-up after the
/// process-exit teardown); call `stop` for a deterministic teardown.
pub struct TransportServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_handle: Option<JoinHandle<()>>,
    loop_handles: Vec<JoinHandle<()>>,
}

impl TransportServer {
    /// Bind `addr` (use port 0 for an ephemeral loopback port) and start
    /// accepting connections against `engine` — the canonical factory:
    /// every connection becomes a [`LocalNode`] session on this engine.
    ///
    /// [`LocalNode`]: crate::cluster::node::LocalNode
    pub fn bind<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: TransportConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with(engine, addr, config)
    }

    /// Bind `addr` and serve sessions minted by an arbitrary
    /// [`NodeFactory`] — the general form: what a connection talks to
    /// is the factory's business, not the server's.
    pub fn bind_with<F, A>(factory: F, addr: A, config: TransportConfig) -> std::io::Result<Self>
    where
        F: NodeFactory + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let loops = config.event_loops.max(1);
        let mut inboxes = Vec::with_capacity(loops);
        for _ in 0..loops {
            inboxes.push(Arc::new(LoopInbox {
                new_conns: Mutex::new(Vec::new()),
                ready: Mutex::new(Vec::new()),
                wake: WakePipe::new()?,
            }));
        }
        let shared = Arc::new(ServerShared {
            factory: Arc::new(factory),
            config,
            stopping: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
            inboxes,
        });
        let mut loop_handles = Vec::with_capacity(loops);
        for loop_id in 0..loops {
            let loop_shared = Arc::clone(&shared);
            loop_handles.push(
                std::thread::Builder::new()
                    .name(format!("transport-loop-{loop_id}"))
                    .spawn(move || event_loop(loop_id, &loop_shared))
                    .expect("failed to spawn transport event loop"),
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("transport-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("failed to spawn transport accept thread");
        Ok(Self { local_addr, shared, accept_handle: Some(accept_handle), loop_handles })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This server's wire accounting, summed over all connections.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Connections currently being served (observability; also pins the
    /// no-fd-leak contract — a disconnected tenant's count is gone once
    /// its loop reaps the connection).
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }

    /// Stop accepting, drop every live connection, and join all
    /// transport threads. The nodes behind the factory keep running —
    /// their owner shuts them down.
    pub fn stop(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it only observes `stopping` between
        // accepts, so poke it with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("transport accept thread panicked");
        }
        for inbox in &self.shared.inboxes {
            inbox.wake(&self.shared.metrics);
        }
        for handle in self.loop_handles.drain(..) {
            handle.join().expect("transport event loop panicked");
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let loops = shared.inboxes.len() as u64;
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue, // transient accept error; keep serving
        };
        if shared.live.load(Ordering::Acquire) >= shared.config.max_connections {
            continue; // at capacity: drop at the door (fd is the scarce resource)
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue; // a socket the loop can't poll is unusable
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.live.fetch_add(1, Ordering::AcqRel);
        shared.metrics.inc(Metric::TransportConnections);
        let inbox = &shared.inboxes[(conn_id % loops) as usize];
        inbox.new_conns.lock().expect("inbox poisoned").push((conn_id, stream));
        inbox.wake(&shared.metrics);
    }
}

/// A connection's outbound byte ring: frames are appended at the tail
/// (through the connection's [`FrameWriter`]) and drained from `pos`
/// against the nonblocking socket — partial-write resume is just "keep
/// `pos`". The consumed prefix is dropped lazily, amortized O(1)/byte.
#[derive(Default)]
struct OutRing {
    buf: Vec<u8>,
    pos: usize,
}

impl OutRing {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
    }
}

impl Write for OutRing {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        if self.pos >= 4096 && self.pos >= self.buf.len() / 2 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(()) // the event loop drains the ring; nothing buffers below it
    }
}

/// One connection's state machine. No threads, no locks — everything
/// here is owned by exactly one event loop. The only cross-thread piece
/// is `queued`, shared with the route waker closure.
struct Conn {
    stream: TcpStream,
    session: Arc<dyn NodeHandle>,
    asm: FrameAssembler,
    /// Outbound frames ride inside the metered writer; its sink is the
    /// [`OutRing`] the write phase drains.
    wire: FrameWriter<OutRing>,
    /// Jobs accepted but not yet answered on the wire. Bounding this at
    /// `route_capacity` (reads refuse with BUSY at the cap) is what
    /// keeps workers from ever blocking on this tenant's event queue:
    /// at most `route_capacity` results can exist at once, and the
    /// queue holds exactly that many — a worker's push always finds
    /// room, even if the tenant stops reading forever.
    pending: usize,
    /// Wake dedup flag shared with this connection's route waker: set
    /// by the waker when it posts to the loop's ready list, cleared by
    /// the loop before draining, so each burst of deliveries costs one
    /// inbox entry.
    queued: Arc<AtomicBool>,
    /// Last instant a byte moved in either direction (idle eviction).
    last_activity: Instant,
    /// Read budget ran out with socket bytes possibly still pending —
    /// the loop polls with zero timeout and returns to this conn next
    /// tick (fairness without starvation).
    hot: bool,
    /// Out ring passed high water: stop reading from this tenant until
    /// it drains its results (a write-blocked tenant stalls itself,
    /// never the loop and never a worker).
    read_paused: bool,
    /// Session reported `Closed`: flush what's buffered, then die.
    draining: bool,
    /// Terminal; reaped at end of tick.
    dead: bool,
}

impl Conn {
    /// Output high water: past this, reading from the tenant pauses.
    /// Sized so the cap-bounded result backlog always fits (a RESULT
    /// frame is 80 bytes; 96 leaves headroom) plus a burst of replies.
    fn pause_high(config: &TransportConfig) -> usize {
        16 * 1024 + config.route_capacity * 96
    }
}

fn event_loop(loop_id: usize, shared: &Arc<ServerShared>) {
    let inbox = Arc::clone(&shared.inboxes[loop_id]);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut poll_ids: Vec<u64> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let sweep_interval = shared
        .config
        .idle_timeout
        .map(|t| (t / 4).clamp(Duration::from_millis(10), Duration::from_secs(1)));
    let mut last_sweep = Instant::now();

    while !shared.stopping.load(Ordering::SeqCst) {
        // ── build the poll set ───────────────────────────────────────
        pollfds.clear();
        poll_ids.clear();
        pollfds.push(PollFd { fd: inbox.wake.read_fd(), events: POLLIN, revents: 0 });
        poll_ids.push(u64::MAX);
        let mut any_hot = false;
        for (&id, conn) in conns.iter() {
            let mut events = 0i16;
            if !conn.read_paused {
                events |= POLLIN;
            }
            if conn.wire.get_ref().pending() > 0 {
                events |= POLLOUT;
            }
            any_hot |= conn.hot;
            pollfds.push(PollFd { fd: conn.stream.as_raw_fd(), events, revents: 0 });
            poll_ids.push(id);
        }

        // ── park ─────────────────────────────────────────────────────
        let timeout = if any_hot { Some(Duration::ZERO) } else { sweep_interval };
        let _ = poll_fds(&mut pollfds, timeout);
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        inbox.wake.drain();

        // ── adopt newly accepted connections ─────────────────────────
        let fresh = std::mem::take(&mut *inbox.new_conns.lock().expect("inbox poisoned"));
        for (id, stream) in fresh {
            let mut conn = register_conn(id, stream, shared, &inbox);
            // The socket may already hold the tenant's first burst (it
            // was live before the loop ever polled it).
            read_conn(&mut conn, shared, &mut scratch);
            conns.insert(id, conn);
        }

        // ── drain sessions the wakers flagged ────────────────────────
        let ready = std::mem::take(&mut *inbox.ready.lock().expect("inbox poisoned"));
        for id in ready {
            if let Some(conn) = conns.get_mut(&id) {
                drain_session(conn);
            }
        }

        // ── read phase ───────────────────────────────────────────────
        for (i, pfd) in pollfds.iter().enumerate().skip(1) {
            let Some(conn) = conns.get_mut(&poll_ids[i]) else { continue };
            if conn.dead {
                continue;
            }
            if pfd.revents & (POLLERR | POLLNVAL) != 0 {
                conn.dead = true;
                continue;
            }
            if conn.hot || pfd.revents & (POLLIN | POLLHUP) != 0 {
                read_conn(conn, shared, &mut scratch);
            }
        }

        // ── write phase (always attempted: reads and session drains
        //    appended frames the peer is waiting on) ──────────────────
        for conn in conns.values_mut() {
            if !conn.dead && conn.wire.get_ref().pending() > 0 {
                write_conn(conn, shared);
            }
            if conn.draining && conn.wire.get_ref().pending() == 0 {
                conn.dead = true;
            }
        }

        // ── idle sweep ───────────────────────────────────────────────
        if let (Some(timeout), Some(interval)) = (shared.config.idle_timeout, sweep_interval) {
            let now = Instant::now();
            if now.duration_since(last_sweep) >= interval {
                last_sweep = now;
                for conn in conns.values_mut() {
                    if !conn.dead && now.duration_since(conn.last_activity) > timeout {
                        shared.metrics.inc(Metric::TransportIdleEvictions);
                        conn.dead = true;
                    }
                }
            }
        }

        // ── reap ─────────────────────────────────────────────────────
        conns.retain(|_, conn| {
            if !conn.dead {
                return true;
            }
            teardown_conn(conn, shared);
            false
        });
    }

    // Loop exit: tear down every served connection plus any the accept
    // thread posted that we never adopted.
    for conn in conns.values_mut() {
        teardown_conn(conn, shared);
    }
    for (_, stream) in std::mem::take(&mut *inbox.new_conns.lock().expect("inbox poisoned")) {
        let _ = stream.shutdown(Shutdown::Both);
        shared.live.fetch_sub(1, Ordering::AcqRel);
        shared.metrics.dec(Metric::TransportConnections);
    }
}

/// Mint the session, install the route waker, and build the state
/// machine for a freshly accepted connection.
fn register_conn(
    id: u64,
    stream: TcpStream,
    shared: &Arc<ServerShared>,
    inbox: &Arc<LoopInbox>,
) -> Conn {
    let session: Arc<dyn NodeHandle> =
        Arc::from(shared.factory.open_session(shared.config.route_capacity));
    let queued = Arc::new(AtomicBool::new(false));
    {
        let queued = Arc::clone(&queued);
        let inbox = Arc::clone(inbox);
        let metrics = Arc::clone(&shared.metrics);
        // Push-then-wake, dedup'd: the first delivery of a burst posts
        // the conn id and signals the pipe; the rest ride along free.
        session.register_waker(Arc::new(move || {
            if !queued.swap(true, Ordering::AcqRel) {
                inbox.ready.lock().expect("inbox poisoned").push(id);
                inbox.wake(&metrics);
            }
        }));
    }
    Conn {
        stream,
        session,
        asm: FrameAssembler::new(),
        wire: FrameWriter::with_metrics(OutRing::default(), Arc::clone(&shared.metrics)),
        pending: 0,
        queued,
        last_activity: Instant::now(),
        hot: false,
        read_paused: false,
        draining: false,
        dead: false,
    }
}

/// Close the session and the socket, and release the connection's slot
/// in the live count/gauge.
fn teardown_conn(conn: &mut Conn, shared: &ServerShared) {
    conn.session.close();
    let _ = conn.stream.shutdown(Shutdown::Both);
    shared.live.fetch_sub(1, Ordering::AcqRel);
    shared.metrics.dec(Metric::TransportConnections);
}

/// Drain the session's event queue into the out ring (non-blocking; the
/// route waker re-posts if a delivery races the drain).
fn drain_session(conn: &mut Conn) {
    // Clear the dedup flag *before* draining: a delivery that lands
    // after this store re-posts the conn, so nothing is lost; one that
    // lands before is picked up by this very drain.
    conn.queued.store(false, Ordering::Release);
    loop {
        if conn.dead || conn.draining {
            return;
        }
        match conn.session.try_recv() {
            TryPop::Item(event) => {
                let Some(frame) = event_frame(event) else {
                    // A proxied upstream died (`Down` has no wire form):
                    // this connection ends with it.
                    conn.dead = true;
                    return;
                };
                conn.pending = conn.pending.saturating_sub(1);
                if conn.wire.send(&frame).is_err() {
                    conn.dead = true;
                    return;
                }
                if let Frame::Result(r) = frame {
                    // The trace itself drained at delivery; this is its
                    // wire-tx causal counterpart in the flight recorder.
                    conn.session.note_wire_tx(r.id);
                }
            }
            TryPop::Empty => return,
            TryPop::Closed => {
                // Engine/session gone: whatever is already encoded still
                // goes out, then the connection closes.
                conn.draining = true;
                return;
            }
        }
    }
}

/// The wire frame answering one session event. Local sessions only emit
/// results; a proxy session (a remote node chained behind this server)
/// would also relay its upstream's BUSY/REJECT verdicts. `Down` has no
/// wire form — a proxied upstream dying ends this connection too
/// (`None`), and the client's own health checking takes over from there.
fn event_frame(event: NodeEvent) -> Option<Frame> {
    match event {
        NodeEvent::Result(result) => Some(Frame::Result(result)),
        NodeEvent::Busy(id) => Some(Frame::Busy(id)),
        NodeEvent::Rejected(id) => Some(Frame::Reject(id)),
        NodeEvent::Down => None,
    }
}

/// Budgeted nonblocking read: pull at most `read_budget` bytes this
/// tick, feeding the assembler and processing every complete frame.
fn read_conn(conn: &mut Conn, shared: &ServerShared, scratch: &mut [u8]) {
    let mut budget = shared.config.read_budget.max(1);
    conn.hot = false;
    loop {
        if conn.dead || conn.draining || conn.read_paused {
            return;
        }
        if budget == 0 {
            // Bytes may still be pending in the kernel buffer; come
            // back next tick so siblings on this loop get their turn.
            conn.hot = true;
            shared.metrics.inc(Metric::ReactorReadBudgetExhausted);
            return;
        }
        let want = budget.min(scratch.len());
        match (&conn.stream).read(&mut scratch[..want]) {
            Ok(0) => {
                // Clean EOF: the tenant hung up. In-flight results have
                // nowhere to go — teardown drops them, as the blocking
                // front did.
                conn.dead = true;
                return;
            }
            Ok(n) => {
                budget -= n;
                conn.last_activity = Instant::now();
                conn.asm.extend(&scratch[..n]);
                if !process_frames(conn, shared) {
                    conn.dead = true;
                    return;
                }
                if n < want {
                    return; // short read: kernel buffer is drained
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Decode and serve every complete frame the assembler holds. Returns
/// `false` when the connection must end (torn stream, protocol
/// violation, or the node behind it is gone).
fn process_frames(conn: &mut Conn, shared: &ServerShared) -> bool {
    loop {
        let frame = match conn.asm.next_frame_metered(&shared.metrics) {
            Ok(Some((frame, _))) => frame,
            Ok(None) => return true, // partial frame: wait for more bytes
            Err(_) => return false,  // torn/corrupt stream: no resync possible
        };
        // When this frame is a SUBMIT whose job gets sampled, this is
        // the instant its trace's `wire_rx` span records.
        let received = Instant::now();
        match frame {
            Frame::Submit(spec) => {
                // Semantic validation without unwinding the loop: remote
                // peers must not be able to panic the server with a bad
                // spec, nor OOM the process with a well-formed spec whose
                // buffers would be astronomically large.
                if !spec.is_feasible()
                    || spec.n > shared.config.max_dimension
                    || spec.m > shared.config.max_dimension
                {
                    shared.metrics.inc(Metric::JobsRejected);
                    if conn.wire.send(&Frame::Reject(spec.id)).is_err() {
                        return false;
                    }
                } else if conn.pending >= shared.config.route_capacity {
                    // Per-connection in-flight cap: a tenant at its
                    // window gets BUSY like any other backpressure —
                    // explicit, retryable, never a drop.
                    if conn.wire.send(&Frame::Busy(spec.id)).is_err() {
                        return false;
                    }
                } else {
                    conn.pending += 1;
                    match conn.session.try_submit_stamped(spec, Some(received)) {
                        Ok(SubmitOutcome::Accepted) => {}
                        Ok(SubmitOutcome::Busy) => {
                            conn.pending -= 1;
                            // The explicit backpressure contract: full
                            // queue ⇒ BUSY reply carrying the id, never
                            // a silent drop.
                            if conn.wire.send(&Frame::Busy(spec.id)).is_err() {
                                return false;
                            }
                        }
                        Err(NodeError::Closed) | Err(NodeError::Io(_)) => return false,
                    }
                }
            }
            Frame::Prewarm(key) => {
                // Administrative fire-and-forget (no reply channel, no
                // pending slot). Same door policy as SUBMIT: a shape past
                // the dimension cap could OOM the node via the sampler,
                // so oversized or degenerate keys are silently ignored —
                // the worst case is a cold miss later.
                if key.n == 0
                    || key.m == 0
                    || key.n > shared.config.max_dimension
                    || key.m > shared.config.max_dimension
                    || !(1..=1000).contains(&key.c_milli)
                {
                    continue;
                }
                let _ = conn.session.prewarm(std::slice::from_ref(&key));
            }
            Frame::StatsRequest(token) => {
                // Scrape: answer with this session's observable stats,
                // echoing the token. A session with nothing to observe
                // stays silent — the scraper's deadline turns that into
                // a stats-unavailable marker, which is honest, whereas
                // an all-zeros reply would silently dilute merges.
                if let Some(stats) = conn.session.stats() {
                    shared.metrics.inc(Metric::StatsScrapes);
                    if conn.wire.send(&Frame::Stats(StatsReply { token, stats })).is_err() {
                        return false;
                    }
                }
            }
            // RESULT/BUSY/REJECT/STATS flow server→client only;
            // receiving one here is a protocol violation — drop the
            // connection.
            Frame::Result(_) | Frame::Busy(_) | Frame::Reject(_) | Frame::Stats(_) => return false,
        }
        // A tenant that won't read its replies gets its output bounded:
        // past high water the loop stops reading from it, so it can
        // stall only itself (its cap-bounded results always fit).
        if conn.wire.get_ref().pending() >= Conn::pause_high(&shared.config) {
            conn.read_paused = true;
            return true;
        }
    }
}

/// Drain the out ring against the nonblocking socket; partial writes
/// resume next tick (the poll set registers `POLLOUT` while bytes
/// remain).
fn write_conn(conn: &mut Conn, shared: &ServerShared) {
    loop {
        let ring = conn.wire.get_mut();
        let pending = ring.pending();
        if pending == 0 {
            break;
        }
        let window = &ring.buf[ring.pos..];
        match (&conn.stream).write(window) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                ring.advance(n);
                conn.last_activity = Instant::now();
                if n < pending {
                    break; // kernel send buffer is full; resume next tick
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    // Resuming reads at half the pause threshold (not zero) keeps a
    // borderline tenant from flapping between paused and resumed on
    // every frame.
    if conn.read_paused && conn.wire.get_ref().pending() < Conn::pause_high(&shared.config) / 2 {
        conn.read_paused = false;
    }
}
