//! Network front for the engine: remote tenants over TCP.
//!
//! The engine's queues are in-process; this module puts a socket on
//! them. Three pieces:
//!
//! * [`frame`] — length-prefixed binary framing for [`JobSpec`] /
//!   [`JobResult`] with an explicit little-endian layout, a version
//!   byte, and a checksum. Pure functions over byte slices, so the
//!   codec is testable (and property-tested) without a socket.
//! * [`reactor`] — the readiness core: the [`EventBackend`] trait with
//!   raw epoll (Linux) and `poll(2)` (portable) implementations, a
//!   vectored `writev` shim, a self-pipe wakeup channel, and process
//!   introspection helpers. No dependencies beyond the libc `std`
//!   already links.
//! * [`server`] — a readiness-driven event-loop front: an accept
//!   thread hands nonblocking sockets to N loop threads, each
//!   multiplexing thousands of per-connection state machines (one
//!   [`NodeHandle`] session per connection, minted by a
//!   [`NodeFactory`]; for the canonical `Arc<Engine>` factory: a
//!   [`LocalNode`] over a private [`ResultRoute`]). A tick costs
//!   O(active): the backend holds fd interest across ticks, and
//!   outbound frames queue as encoded segments drained by `writev` —
//!   no post-encode byte is ever copied. Backpressure is an explicit
//!   `BUSY` reply frame — never a silent drop.
//! * [`client`] — [`TransportClient`]: submit/poll plus a streaming
//!   batch mode mirroring [`Engine::run_batch`], used by `engine_load
//!   --transport tcp` to replay a [`LoadProfile`] over loopback.
//!
//! The headline invariant, pinned by `tests/transport_loopback.rs` and
//! the CI smoke job: the same profile submitted over TCP produces
//! result fingerprints **bit-identical** to in-process submission,
//! across worker counts and batch windows. The wire may change *when*
//! a job runs — never *what* it computes.
//!
//! [`JobSpec`]: crate::job::JobSpec
//! [`JobResult`]: crate::job::JobResult
//! [`NodeHandle`]: crate::cluster::node::NodeHandle
//! [`NodeFactory`]: crate::cluster::node::NodeFactory
//! [`LocalNode`]: crate::cluster::node::LocalNode
//! [`Engine::run_batch`]: crate::engine::Engine::run_batch
//! [`ResultRoute`]: crate::engine::ResultRoute
//! [`LoadProfile`]: crate::traffic::LoadProfile
//! [`EventBackend`]: reactor::EventBackend

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

pub mod client;
pub mod frame;
pub mod reactor;
pub mod server;

pub use client::{Reply, TransportClient, TransportError};
pub use frame::{Frame, FrameError};
pub use reactor::{BackendChoice, BackendKind};
pub use server::{TransportConfig, TransportServer};

/// Connect/read deadlines for a wire peer. Blocking reads without a
/// deadline can park a reply pump forever on a half-dead peer (SYN
/// blackhole, stalled middlebox); with one, silence is bounded and a
/// peer that owes replies past the deadline is declared down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireTimeouts {
    /// Deadline for establishing the TCP connection. `None` leaves the
    /// OS default (which can be minutes).
    pub connect: Option<Duration>,
    /// Socket read deadline. An *idle* peer may be silent indefinitely —
    /// the deadline only fails the connection when replies are owed
    /// (tracked by the caller). `None` blocks forever.
    pub read: Option<Duration>,
}

impl Default for WireTimeouts {
    /// Generous production defaults: 5 s to connect, 10 s of owed-reply
    /// silence. Cluster probation (router-level, default 2 s) normally
    /// fires first; these are the backstop for peers that die between
    /// router polls.
    fn default() -> Self {
        Self { connect: Some(Duration::from_secs(5)), read: Some(Duration::from_secs(10)) }
    }
}

impl WireTimeouts {
    /// No deadlines at all — the pre-timeout behavior, for callers that
    /// prefer to block forever (debugging against a paused peer).
    pub fn none() -> Self {
        Self { connect: None, read: None }
    }
}

/// Connect to `addr`, honoring an optional connect deadline (tries each
/// resolved address in turn, like `TcpStream::connect` does).
pub(crate) fn connect_stream<A: ToSocketAddrs>(
    addr: A,
    deadline: Option<Duration>,
) -> std::io::Result<TcpStream> {
    let Some(deadline) = deadline else {
        return TcpStream::connect(addr);
    };
    let mut last_err = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, deadline) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}
