//! Network front for the engine: remote tenants over TCP.
//!
//! The engine's queues are in-process; this module puts a socket on
//! them. Three pieces:
//!
//! * [`frame`] — length-prefixed binary framing for [`JobSpec`] /
//!   [`JobResult`] with an explicit little-endian layout, a version
//!   byte, and a checksum. Pure functions over byte slices, so the
//!   codec is testable (and property-tested) without a socket.
//! * [`server`] — a blocking TCP acceptor serving a per-connection
//!   [`NodeHandle`] session minted by a [`NodeFactory`] (for the
//!   canonical `Arc<Engine>` factory: a [`LocalNode`] over a private
//!   [`ResultRoute`]): reader thread into the session's `try_submit`,
//!   writer thread draining its events. Backpressure is an explicit
//!   `BUSY` reply frame — never a silent drop.
//! * [`client`] — [`TransportClient`]: submit/poll plus a streaming
//!   batch mode mirroring [`Engine::run_batch`], used by `engine_load
//!   --transport tcp` to replay a [`LoadProfile`] over loopback.
//!
//! The headline invariant, pinned by `tests/transport_loopback.rs` and
//! the CI smoke job: the same profile submitted over TCP produces
//! result fingerprints **bit-identical** to in-process submission,
//! across worker counts and batch windows. The wire may change *when*
//! a job runs — never *what* it computes.
//!
//! [`JobSpec`]: crate::job::JobSpec
//! [`JobResult`]: crate::job::JobResult
//! [`NodeHandle`]: crate::cluster::node::NodeHandle
//! [`NodeFactory`]: crate::cluster::node::NodeFactory
//! [`LocalNode`]: crate::cluster::node::LocalNode
//! [`Engine::run_batch`]: crate::engine::Engine::run_batch
//! [`ResultRoute`]: crate::engine::ResultRoute
//! [`LoadProfile`]: crate::traffic::LoadProfile

pub mod client;
pub mod frame;
pub mod server;

pub use client::{Reply, TransportClient, TransportError};
pub use frame::{Frame, FrameError};
pub use server::{TransportConfig, TransportServer};
