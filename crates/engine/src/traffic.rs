//! Deterministic traffic generation for load tests and benchmarks.
//!
//! A [`LoadProfile`] is a compact description of a traffic mix: instance
//! shape, design family, how many distinct design keys circulate (the
//! design-cache working set), which decoders are requested, and the
//! simulated query-execution cost drawn from a [`LatencyModel`]. Job `i`
//! of a profile is a pure function of `(profile, i)` — the same profile
//! replayed against 1 worker and `L` workers must produce bit-identical
//! result fingerprints, which is exactly how the determinism suite and
//! `engine_load` validate the engine.
//!
//! [`poisson_arrivals`] turns a rate into cumulative arrival times for
//! open-loop replay (arrivals don't wait for completions — queue depth
//! and shed rate become the observables, per the serving literature).

use pooled_design::factory::DesignKind;
use pooled_lab::latency::LatencyModel;
use pooled_rng::SeedSequence;

use crate::job::{DecoderKind, DesignSpec, JobSpec};

/// A reproducible traffic mix.
#[derive(Clone, Debug)]
pub struct LoadProfile {
    /// Number of entries per instance.
    pub n: usize,
    /// Signal weight.
    pub k: usize,
    /// Queries per instance.
    pub m: usize,
    /// Design family for every job.
    pub design_kind: DesignKind,
    /// Design density in thousandths (`500` = the paper's `c = 1/2`).
    pub c_milli: u32,
    /// How many distinct design seeds circulate. `1` makes every job
    /// share one cached design (hot cache); a large value defeats the
    /// cache (cold traffic).
    pub distinct_designs: u64,
    /// Requested decoders, assigned round-robin over the job index.
    pub decoders: Vec<DecoderKind>,
    /// Simulated query-execution cost per job, sampled in **microseconds**
    /// from this model (`None` = zero cost, pure-CPU traffic).
    pub query_cost: Option<LatencyModel>,
    /// Master seed; every job substream derives from it.
    pub seed: u64,
}

impl LoadProfile {
    /// A sensible serving mix: the paper's design at `c = 1/2`, classic
    /// MN traffic, one hot design, 2 ms fixed query cost.
    pub fn default_mix(n: usize, k: usize, m: usize, seed: u64) -> Self {
        Self {
            n,
            k,
            m,
            design_kind: DesignKind::RandomRegular,
            c_milli: 500,
            distinct_designs: 1,
            decoders: vec![DecoderKind::Mn],
            query_cost: Some(LatencyModel::Fixed(2000.0)),
            seed,
        }
    }

    /// Job `i` of this profile (pure function; see module docs).
    ///
    /// Convenience wrapper over [`Self::prepare`] — callers deriving specs
    /// in a loop (open-loop replay, the transport client) should prepare
    /// once and reuse the [`PreparedProfile`] instead.
    ///
    /// # Panics
    /// Panics if the profile has no decoders or no distinct designs.
    pub fn spec(&self, i: u64) -> JobSpec {
        self.prepare().spec(i)
    }

    /// Hoist the per-profile derivation state (seed-tree root and
    /// validation) out of the per-job path. [`PreparedProfile::spec`] is
    /// bit-identical to [`Self::spec`]; it just skips rebuilding the
    /// [`SeedSequence`] root on every call — which the open-loop hot path
    /// used to do once per generated job.
    ///
    /// # Panics
    /// Panics if the profile has no decoders or no distinct designs.
    pub fn prepare(&self) -> PreparedProfile<'_> {
        assert!(!self.decoders.is_empty(), "profile needs at least one decoder");
        assert!(self.distinct_designs > 0, "profile needs at least one design");
        PreparedProfile { profile: self, root: SeedSequence::new(self.seed) }
    }

    /// The first `count` jobs of the profile.
    pub fn specs(&self, count: usize) -> Vec<JobSpec> {
        let prepared = self.prepare();
        (0..count as u64).map(|i| prepared.spec(i)).collect()
    }

    /// The distinct design keys this profile circulates, in first-use
    /// order (job `i` uses key `i % distinct_designs`). This is the
    /// profile's cache working set — exactly what a node prewarms from
    /// on restart ([`crate::cache::DesignCache::prewarm`]) and what the
    /// cluster membership shards across nodes.
    pub fn design_keys(&self) -> Vec<crate::cache::DesignKey> {
        let prepared = self.prepare();
        (0..self.distinct_designs).map(|i| prepared.spec(i).design_key()).collect()
    }
}

/// A [`LoadProfile`] with its derivation root hoisted (see
/// [`LoadProfile::prepare`]). Cheap to build, cheaper to query: job
/// generation touches only child-stream derivation, never the root.
#[derive(Clone, Copy, Debug)]
pub struct PreparedProfile<'a> {
    profile: &'a LoadProfile,
    root: SeedSequence,
}

impl PreparedProfile<'_> {
    /// Job `i` — bit-identical to [`LoadProfile::spec`] on the profile
    /// this was prepared from.
    pub fn spec(&self, i: u64) -> JobSpec {
        let p = self.profile;
        let design_seed = self.root.child("design", i % p.distinct_designs).seed();
        let query_cost_micros = match &p.query_cost {
            None => 0,
            Some(model) => {
                let mut rng = self.root.child("cost", i).rng();
                model.sample(&mut rng).round().clamp(0.0, u32::MAX as f64) as u32
            }
        };
        JobSpec {
            id: i,
            n: p.n,
            k: p.k,
            m: p.m,
            design: DesignSpec { kind: p.design_kind, c_milli: p.c_milli, seed: design_seed },
            decoder: p.decoders[(i % p.decoders.len() as u64) as usize],
            seed: self.root.child("job", i).seed(),
            query_cost_micros,
        }
    }
}

/// Cumulative arrival times (seconds) of a Poisson process at
/// `rate_per_sec`, for open-loop replay.
///
/// The cumulative clock uses compensated (Kahan) summation: a naive
/// `t += dt` loses the low bits of every tiny inter-arrival gap once `t`
/// grows large, so multi-million-arrival replays drifted measurably ahead
/// of the configured rate (each drop rounds in whichever direction the
/// current magnitude dictates, and the error compounds). Compensation
/// keeps the running sum within one ulp of the exact sum of gaps at any
/// horizon; the drawn gaps themselves are unchanged.
///
/// # Panics
/// Panics if the rate is not positive and finite.
pub fn poisson_arrivals(rate_per_sec: f64, count: usize, seeds: &SeedSequence) -> Vec<f64> {
    assert!(rate_per_sec > 0.0 && rate_per_sec.is_finite(), "need a positive arrival rate");
    let mut rng = seeds.child("arrivals", 0).rng();
    let mut t = 0.0f64;
    let mut compensation = 0.0f64;
    (0..count)
        .map(|_| {
            use pooled_rng::Rng64;
            let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
            let dt = -u.ln() / rate_per_sec;
            let y = dt - compensation;
            let next = t + y;
            compensation = (next - t) - y;
            t = next;
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> LoadProfile {
        LoadProfile {
            distinct_designs: 3,
            decoders: vec![DecoderKind::Mn, DecoderKind::GeneralMn],
            query_cost: Some(LatencyModel::Uniform { lo: 100.0, hi: 300.0 }),
            ..LoadProfile::default_mix(500, 6, 120, 99)
        }
    }

    #[test]
    fn specs_are_reproducible() {
        let p = profile();
        assert_eq!(p.specs(20), p.specs(20));
        // And prefix-stable: extending the batch never perturbs earlier jobs.
        assert_eq!(&p.specs(30)[..20], &p.specs(20)[..]);
    }

    #[test]
    fn design_seeds_cycle_over_the_working_set() {
        let p = profile();
        let specs = p.specs(9);
        assert_eq!(specs[0].design.seed, specs[3].design.seed);
        assert_ne!(specs[0].design.seed, specs[1].design.seed);
        let distinct: std::collections::HashSet<u64> =
            specs.iter().map(|s| s.design.seed).collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn design_keys_enumerate_the_working_set() {
        let p = profile();
        let keys = p.design_keys();
        assert_eq!(keys.len(), 3);
        // Job i resolves to key i % distinct_designs, so the export is
        // exactly the set every spec draws from.
        for (i, s) in p.specs(9).iter().enumerate() {
            assert_eq!(s.design_key(), keys[i % 3]);
        }
    }

    #[test]
    fn decoders_round_robin() {
        let p = profile();
        let specs = p.specs(4);
        assert_eq!(specs[0].decoder, DecoderKind::Mn);
        assert_eq!(specs[1].decoder, DecoderKind::GeneralMn);
        assert_eq!(specs[2].decoder, DecoderKind::Mn);
    }

    #[test]
    fn query_costs_follow_the_model() {
        let p = profile();
        for s in p.specs(50) {
            assert!((100..=300).contains(&s.query_cost_micros), "{}", s.query_cost_micros);
        }
        let none = LoadProfile { query_cost: None, ..profile() };
        assert!(none.specs(10).iter().all(|s| s.query_cost_micros == 0));
    }

    #[test]
    fn prepared_profile_is_bit_identical_to_per_call_derivation() {
        // Regression: `spec` used to rebuild the SeedSequence root (and
        // re-validate) per job on the open-loop hot path. The hoisted
        // PreparedProfile must change nothing about the derived stream.
        let p = profile();
        let prepared = p.prepare();
        for i in (0..200).chain([1_000_000, u64::MAX / 2, u64::MAX - 1]) {
            assert_eq!(prepared.spec(i), p.spec(i), "job {i} diverged");
        }
        // And `specs` (which routes through the prepared path) stays
        // consistent with element-wise derivation.
        let specs = p.specs(50);
        assert_eq!(specs, (0..50u64).map(|i| prepared.spec(i)).collect::<Vec<_>>());
    }

    #[test]
    fn poisson_clock_does_not_drift_over_a_long_horizon() {
        // Regression: naive `t += dt` accumulation drifts once t is large
        // relative to the gaps. Over 2M arrivals at 1e6/s the compensated
        // clock must land at count/rate up to sampling noise (the std-dev
        // of the sum of 2M Exp(1) gaps is sqrt(2M)/1e6 ≈ 1.4 ms), and the
        // mean gap over the *tail* half must match the rate as tightly as
        // over the head — drift showed up as a horizon-dependent rate.
        let seeds = SeedSequence::new(77);
        let rate = 1e6;
        let count = 2_000_000usize;
        let arrivals = poisson_arrivals(rate, count, &seeds);
        let expect = count as f64 / rate;
        let last = *arrivals.last().unwrap();
        assert!((last - expect).abs() < 0.01, "horizon {last}s vs expected {expect}s");
        let half = arrivals[count / 2];
        let head_rate = (count / 2) as f64 / half;
        let tail_rate = (count - count / 2) as f64 / (last - half);
        assert!(
            (head_rate / tail_rate - 1.0).abs() < 0.01,
            "rate drifted across the horizon: head {head_rate}/s vs tail {tail_rate}/s"
        );
        // The clock never runs backwards (ties are tolerated: a gap can
        // round to zero ulps at any horizon).
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn poisson_arrivals_are_increasing_at_roughly_the_rate() {
        let seeds = SeedSequence::new(4);
        let arrivals = poisson_arrivals(1000.0, 5000, &seeds);
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        let mean_gap = arrivals.last().unwrap() / 5000.0;
        assert!((mean_gap - 0.001).abs() < 0.0001, "mean gap {mean_gap}");
        // Reproducible.
        assert_eq!(arrivals, poisson_arrivals(1000.0, 5000, &seeds));
    }
}
