//! Job descriptions and results — the engine's wire types.
//!
//! A [`JobSpec`] is everything needed to reproduce one reconstruction
//! end-to-end: instance shape, design choice, decoder choice, and the
//! seeds all randomness derives from. Both [`JobSpec`] and [`JobResult`]
//! are `Copy` on purpose: they travel through the engine's preallocated
//! ring queues without touching the heap, which is what makes steady-state
//! serving allocation-free.
//!
//! Results carry compact **digests** of the decoded support and scores
//! (order-sensitive chains — every decoder emits its support in a
//! deterministic ranking order) instead of the vectors themselves. Two
//! runs of the same job are bit-identical exactly when their
//! [`JobResult::fingerprint`]s agree — the property the determinism
//! suite pins across worker counts.

use pooled_design::factory::DesignKind;
use pooled_rng::splitmix::mix64;

/// Which decoder a job runs (dispatched through the trait-object registry
/// in [`crate::registry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecoderKind {
    /// Algorithm 1 (classic MN, gather path over the CSR transpose).
    Mn,
    /// The Γ-general MN decoder (per-query centering, exact `i128` scores).
    GeneralMn,
    /// Threshold-MN on the one-bit median-threshold channel.
    ThresholdMn,
    /// Ψ-only ablation baseline (no degree centering).
    PsiOnly,
    /// Random-guess control baseline.
    RandomGuess,
    /// Orthogonal Matching Pursuit baseline (densifies; small jobs only).
    Omp,
    /// Deliberately panicking probe used by the worker panic-containment
    /// tests. Hidden on purpose: absent from [`Self::ALL`] (so it is
    /// never offered to real traffic, enumerated by sweeps, or accepted
    /// by [`Self::from_name`]) and carried on the wire under a reserved
    /// code.
    #[doc(hidden)]
    PanicProbe,
}

impl DecoderKind {
    /// Every decoder, in presentation order.
    pub const ALL: [DecoderKind; 6] = [
        DecoderKind::Mn,
        DecoderKind::GeneralMn,
        DecoderKind::ThresholdMn,
        DecoderKind::PsiOnly,
        DecoderKind::RandomGuess,
        DecoderKind::Omp,
    ];

    /// Stable identifier for CLI flags, manifests and telemetry rows.
    pub fn name(&self) -> &'static str {
        match self {
            DecoderKind::Mn => "mn",
            DecoderKind::GeneralMn => "mn_general",
            DecoderKind::ThresholdMn => "threshold_mn",
            DecoderKind::PsiOnly => "psi_only",
            DecoderKind::RandomGuess => "random_guess",
            DecoderKind::Omp => "omp",
            DecoderKind::PanicProbe => "panic_probe",
        }
    }

    /// Inverse of [`Self::name`] over [`Self::ALL`] (the hidden panic
    /// probe is deliberately not reachable by name).
    pub fn from_name(name: &str) -> Option<DecoderKind> {
        DecoderKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// Which pooling design a job decodes against. Jobs sharing a spec share
/// the sampled design through the engine's LRU design cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DesignSpec {
    /// Design family.
    pub kind: DesignKind,
    /// Density `c = Γ/n` in thousandths (integer so the spec can be a
    /// hash key; the paper's `c = 1/2` is `500`).
    pub c_milli: u32,
    /// Seed of the design's private randomness stream.
    pub seed: u64,
}

impl DesignSpec {
    /// The paper's design at density `c = 1/2`.
    pub fn random_regular(seed: u64) -> Self {
        Self { kind: DesignKind::RandomRegular, c_milli: 500, seed }
    }

    /// Density as a float.
    pub fn c(&self) -> f64 {
        self.c_milli as f64 / 1000.0
    }
}

/// One reconstruction request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen identifier, echoed in the result (unique per batch).
    pub id: u64,
    /// Number of entries.
    pub n: usize,
    /// Signal weight.
    pub k: usize,
    /// Number of queries.
    pub m: usize,
    /// Pooling design (cache key together with `n`, `m`).
    pub design: DesignSpec,
    /// Decoder to run.
    pub decoder: DecoderKind,
    /// Seed of the job's private randomness (signal draw).
    pub seed: u64,
    /// Simulated wall-clock cost of *executing* the pooled queries, in
    /// microseconds. The paper's premise is that queries dominate
    /// reconstruction time (wet-lab robots, GPU inference); the worker
    /// sleeps this long before decoding, so multi-worker shards overlap
    /// query latency exactly like parallel lab equipment would.
    pub query_cost_micros: u32,
}

impl JobSpec {
    /// Validate the spec's internal consistency.
    ///
    /// # Panics
    /// Panics on an infeasible spec (`n == 0`, `m == 0`, `k > n`, or a
    /// density outside `(0, 1]`); the engine rejects jobs at submission
    /// rather than poisoning a worker.
    pub fn validate(&self) {
        assert!(self.n > 0, "job {}: n must be positive", self.id);
        assert!(self.m > 0, "job {}: m must be positive", self.id);
        assert!(self.k <= self.n, "job {}: k={} exceeds n={}", self.id, self.k, self.n);
        assert!(
            self.design.c_milli >= 1 && self.design.c_milli <= 1000,
            "job {}: density c_milli={} outside [1,1000]",
            self.id,
            self.design.c_milli
        );
    }

    /// Non-panicking form of [`Self::validate`]'s checks. The transport
    /// server uses this to answer an infeasible remote spec with a
    /// `REJECT` frame instead of letting a panic unwind a reader thread.
    pub fn is_feasible(&self) -> bool {
        self.n > 0 && self.m > 0 && self.k <= self.n && (1..=1000).contains(&self.design.c_milli)
    }

    /// The design-cache key this job resolves to — also the cluster
    /// router's placement key: jobs sharing a design key land on the
    /// same node, so that node's cache stays hot for its key slice.
    pub fn design_key(&self) -> crate::cache::DesignKey {
        crate::cache::DesignKey::of(self)
    }

    /// Whether the trace-sampling knob `every` selects this job for span
    /// tracing: `0` never, `1` always, `k` when `id % k == 0`. A pure
    /// function of the job id — a sampled run records the *same* jobs
    /// regardless of worker count, topology, or timing, so sampled
    /// postmortems are comparable across configurations.
    pub fn trace_sampled(&self, every: u64) -> bool {
        match every {
            0 => false,
            k => self.id.is_multiple_of(k),
        }
    }
}

/// One completed reconstruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobResult {
    /// The spec's `id`.
    pub id: u64,
    /// The decoder that ran.
    pub decoder: DecoderKind,
    /// Whether the estimate equals the hidden signal exactly.
    pub exact: bool,
    /// `|supp(σ̃) ∩ supp(σ)|` — correctly recovered one-entries.
    pub hits: u32,
    /// Estimate weight (`min(k, n)` for every registry decoder).
    pub weight: u32,
    /// Order-sensitive digest of the selected support indices.
    pub support_digest: u64,
    /// Digest of the decoder's per-entry scores (0 for score-free
    /// baselines).
    pub score_digest: u64,
    /// Decode-stage time (µs), excluding the simulated query execution.
    pub decode_micros: u64,
    /// Time spent waiting in the submission queue (µs).
    pub queue_micros: u64,
    /// Sojourn time (µs): queue wait plus the worker's service time —
    /// the latency a tenant observes.
    pub total_micros: u64,
    /// Index of the worker shard that served the job.
    pub worker: u32,
}

/// Sentinel `support_digest` marking a result whose decoder panicked and
/// was contained (see [`JobResult::decode_poisoned`]). A real decode
/// cannot plausibly produce this exact digest with `weight == 0`.
pub const POISONED_SUPPORT_DIGEST: u64 = 0xFA11_ED00_DEC0_DE99;

impl JobResult {
    /// The REJECT-class result minted when `spec`'s decoder panicked:
    /// `exact = false`, zero hits/weight, and the poisoned sentinel
    /// digest. A pure function of the spec (no timings, no randomness),
    /// so containment preserves the determinism contract — every replay
    /// of a poisoned job fingerprints identically.
    pub fn decode_poisoned(spec: &JobSpec, worker: u32) -> JobResult {
        JobResult {
            id: spec.id,
            decoder: spec.decoder,
            exact: false,
            hits: 0,
            weight: 0,
            support_digest: POISONED_SUPPORT_DIGEST,
            score_digest: 0,
            decode_micros: 0,
            queue_micros: 0,
            total_micros: 0,
            worker,
        }
    }

    /// Whether this result marks a contained decoder panic rather than a
    /// completed decode.
    pub fn is_decode_poisoned(&self) -> bool {
        self.weight == 0 && self.support_digest == POISONED_SUPPORT_DIGEST
    }

    /// Digest of every *deterministic* field — everything except timings
    /// and worker placement. Two runs of the same spec must produce equal
    /// fingerprints regardless of worker count or scheduling.
    pub fn fingerprint(&self) -> u64 {
        let mut d = Digest::new();
        d.push(self.id);
        d.push(self.decoder as u64);
        d.push(self.exact as u64);
        d.push(self.hits as u64);
        d.push(self.weight as u64);
        d.push(self.support_digest);
        d.push(self.score_digest);
        d.finish()
    }
}

/// Incremental 64-bit digest (mix64 chaining) for supports, scores and
/// result fingerprints. Not cryptographic — collision resistance here only
/// needs to make accidental equality of different decodes implausible.
#[derive(Clone, Copy, Debug)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Fresh digest with a fixed initial state.
    pub fn new() -> Self {
        Digest(0x9E37_79B9_7F4A_7C15)
    }

    /// Fold in one word.
    pub fn push(&mut self, v: u64) {
        self.0 = mix64(self.0 ^ v).wrapping_add(0x2545_F491_4F6C_DD1D);
    }

    /// Fold in a signed wide score (hi/lo split).
    pub fn push_i128(&mut self, v: i128) {
        self.push(v as u64);
        self.push((v >> 64) as u64);
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        mix64(self.0)
    }
}

/// Digest a slice of support indices (order-sensitive; every registry
/// decoder emits its support in ranking order, which is deterministic).
pub fn digest_support(support: &[usize]) -> u64 {
    let mut d = Digest::new();
    for &i in support {
        d.push(i as u64);
    }
    d.finish()
}

/// Digest a slice of `i64` scores.
pub fn digest_scores_i64(scores: &[i64]) -> u64 {
    let mut d = Digest::new();
    for &s in scores {
        d.push(s as u64);
    }
    d.finish()
}

/// Digest a slice of `u64` words.
pub fn digest_u64s(words: &[u64]) -> u64 {
    let mut d = Digest::new();
    for &w in words {
        d.push(w);
    }
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_names_roundtrip() {
        for kind in DecoderKind::ALL {
            assert_eq!(DecoderKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(DecoderKind::from_name("nope"), None);
    }

    #[test]
    fn digests_distinguish_order_and_content() {
        assert_ne!(digest_support(&[1, 2, 3]), digest_support(&[3, 2, 1]));
        assert_ne!(digest_support(&[1, 2, 3]), digest_support(&[1, 2, 4]));
        assert_eq!(digest_support(&[1, 2, 3]), digest_support(&[1, 2, 3]));
        assert_ne!(digest_u64s(&[]), digest_u64s(&[0]));
    }

    #[test]
    fn fingerprint_ignores_timing_and_worker() {
        let a = JobResult {
            id: 7,
            decoder: DecoderKind::Mn,
            exact: true,
            hits: 5,
            weight: 5,
            support_digest: 11,
            score_digest: 22,
            decode_micros: 100,
            queue_micros: 40,
            total_micros: 200,
            worker: 0,
        };
        let b =
            JobResult { decode_micros: 999, queue_micros: 0, total_micros: 1234, worker: 3, ..a };
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = JobResult { hits: 4, ..a };
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    #[should_panic(expected = "exceeds n")]
    fn validate_rejects_oversized_k() {
        JobSpec {
            id: 0,
            n: 10,
            k: 11,
            m: 5,
            design: DesignSpec::random_regular(1),
            decoder: DecoderKind::Mn,
            seed: 1,
            query_cost_micros: 0,
        }
        .validate();
    }
}
