//! The engine's observability plane: lock-free metrics, per-job trace
//! spans, and a bounded flight recorder — all zero-allocation on the
//! serving hot path.
//!
//! The stack spans four tiers (decode kernels → sharded engine → TCP
//! transport → failover cluster router); attributing a speedup or a
//! stall honestly needs per-stage timing and per-node counters, not a
//! grab-bag of point-in-time structs. This module is that plane, in
//! four layers:
//!
//! * [`registry`] — a fixed-size, lock-free [`MetricsRegistry`] of
//!   named atomic counters ([`Metric`]): per-outcome job counts
//!   (completed / rejected / busy-shed / poisoned / failed-over) and
//!   transport byte/frame/checksum-reject counters. Incrementing is one
//!   relaxed atomic add; snapshots are torn-free per counter and never
//!   block a worker.
//! * [`trace`] — [`JobTrace`]: a fixed-size array of monotonic span
//!   timestamps (admit → dequeue → cache probe → decode start/end →
//!   route hop → wire rx/tx) that rides alongside a queued job when the
//!   sampling knob selects it. `Copy`, no heap, and invisible to the
//!   decode path — fingerprints are bit-identical at any sampling rate.
//! * [`recorder`] — the [`FlightRecorder`]: bounded per-shard ring
//!   buffers that absorb completed traces plus causal records from the
//!   cluster tier (failover, stale events, chaos injections, scrape
//!   timeouts), overwriting the oldest entry instead of allocating.
//!   Dumpable as JSON for postmortems.
//! * [`export`] — Prometheus-text and JSON exposition renderers over an
//!   [`EngineStats`] snapshot and a registry snapshot (used by
//!   `engine_load --metrics`).
//!
//! [`EngineStats`]: crate::engine::EngineStats

pub mod export;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use export::{render_json, render_prometheus};
pub use recorder::{CausalKind, CausalRecord, FlightRecorder};
pub use registry::{Metric, MetricsRegistry, MetricsSnapshot, METRIC_COUNT};
pub use trace::{JobTrace, Span, TRACE_SPANS};

use crate::job::JobSpec;

/// Telemetry knobs, deliberately separate from `EngineConfig` so every
/// existing construction site keeps compiling; engines built through
/// the plain constructors run with tracing off and only the always-on
/// atomic counters active.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Trace-sampling knob: `0` disables span tracing entirely, `1`
    /// traces every job, `k` traces jobs whose id is divisible by `k`.
    /// The decision is a pure function of the job id, so a sampled run
    /// records the *same* jobs regardless of worker count or topology.
    pub trace_sample_every: u64,
    /// Capacity of each per-shard trace ring and of the causal-record
    /// ring in the [`FlightRecorder`] (clamped to at least 1).
    pub recorder_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl TelemetryConfig {
    /// Tracing disabled (the default); counters still run.
    pub fn off() -> Self {
        Self { trace_sample_every: 0, recorder_capacity: 256 }
    }

    /// Trace every job.
    pub fn full() -> Self {
        Self { trace_sample_every: 1, recorder_capacity: 256 }
    }

    /// Trace one job in `every` (by id; `0` means off).
    pub fn sampled(every: u64) -> Self {
        Self { trace_sample_every: every, recorder_capacity: 256 }
    }

    /// Whether this configuration samples `spec` for span tracing.
    pub fn samples(&self, spec: &JobSpec) -> bool {
        spec.trace_sampled(self.trace_sample_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DecoderKind, DesignSpec};

    fn spec(id: u64) -> JobSpec {
        JobSpec {
            id,
            n: 100,
            k: 3,
            m: 40,
            design: DesignSpec::random_regular(7),
            decoder: DecoderKind::Mn,
            seed: 1,
            query_cost_micros: 0,
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_id() {
        let off = TelemetryConfig::off();
        let full = TelemetryConfig::full();
        let every4 = TelemetryConfig::sampled(4);
        for id in 0..32 {
            assert!(!off.samples(&spec(id)));
            assert!(full.samples(&spec(id)));
            assert_eq!(every4.samples(&spec(id)), id % 4 == 0);
        }
    }
}
