//! Exposition renderers: Prometheus text format and JSON over one
//! engine-stats snapshot plus an optional metrics-registry snapshot.
//!
//! Both renderers are cold paths (they allocate freely) fed by
//! `engine_load --metrics` and by anything that wants to scrape a
//! node. The metric names are a wire contract — the README's metric
//! table and the CI smoke greps pin them — so they live in exactly two
//! places: [`Metric::name`] for the registry counters and the string
//! literals here for the snapshot-derived series.

use pooled_lab::histogram::LatencyHistogram;
use pooled_stats::summary::Summary;

use super::registry::{Metric, MetricsSnapshot};
use crate::engine::EngineStats;

fn counter(out: &mut String, name: &str, value: u64) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push_str(" counter\n");
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn gauge(out: &mut String, name: &str, value: u64) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push_str(" gauge\n");
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn summary_family(out: &mut String, name: &str, s: &Summary) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push_str(" gauge\n");
    for (stat, v) in [
        ("mean", s.mean()),
        ("min", if s.count() == 0 { 0.0 } else { s.min() }),
        ("max", if s.count() == 0 { 0.0 } else { s.max() }),
    ] {
        out.push_str(name);
        out.push_str("{stat=\"");
        out.push_str(stat);
        out.push_str("\"} ");
        out.push_str(&format!("{v}"));
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&s.count().to_string());
    out.push('\n');
}

fn histogram_family(out: &mut String, name: &str, h: &LatencyHistogram) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push_str(" histogram\n");
    let mut cumulative = 0u64;
    for (i, &c) in h.bucket_counts().iter().enumerate() {
        if c == 0 {
            continue; // sparse exposition: only occupied buckets
        }
        cumulative = cumulative.saturating_add(c);
        out.push_str(name);
        out.push_str("_bucket{le=\"");
        out.push_str(&LatencyHistogram::bucket_upper_micros(i).to_string());
        out.push_str("\"} ");
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_bucket{le=\"+Inf\"} ");
    out.push_str(&h.count().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum ");
    out.push_str(&h.sum_micros().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&h.count().to_string());
    out.push('\n');
}

/// Render a Prometheus text-format exposition of `stats`, plus every
/// registry counter when `metrics` is provided.
///
/// With a registry snapshot the per-outcome job counters come from it
/// (the registry is their source of truth; the snapshot fields mirror
/// it). Without one — e.g. a merged cluster view, where no single
/// registry exists — the three engine-observable counters fall back to
/// the snapshot fields so the exposition stays complete.
pub fn render_prometheus(stats: &EngineStats, metrics: Option<&MetricsSnapshot>) -> String {
    let mut out = String::with_capacity(4096);
    match metrics {
        Some(snap) => {
            for m in Metric::ALL {
                if m.is_gauge() {
                    gauge(&mut out, m.name(), snap.get(m));
                } else {
                    counter(&mut out, m.name(), snap.get(m));
                }
            }
        }
        None => {
            counter(&mut out, Metric::JobsCompleted.name(), stats.jobs_completed);
            counter(&mut out, Metric::JobsPoisoned.name(), stats.jobs_poisoned);
            counter(&mut out, Metric::ExactRecoveries.name(), stats.exact_recoveries);
        }
    }
    counter(&mut out, "pooled_cache_hits_total", stats.cache_hits);
    counter(&mut out, "pooled_cache_misses_total", stats.cache_misses);
    gauge(&mut out, "pooled_cache_len", stats.cache_len as u64);
    gauge(&mut out, "pooled_queued_jobs", stats.queued_jobs as u64);
    gauge(&mut out, "pooled_pending_results", stats.pending_results as u64);
    gauge(&mut out, "pooled_workers", stats.workers as u64);
    summary_family(&mut out, "pooled_total_latency_micros", &stats.total_latency);
    summary_family(&mut out, "pooled_decode_latency_micros", &stats.decode_latency);
    histogram_family(&mut out, "pooled_job_latency_micros", &stats.histogram);
    out
}

fn json_field(out: &mut String, first: &mut bool, name: &str, value: String) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(name);
    out.push_str("\":");
    out.push_str(&value);
}

/// Render the same exposition as a flat JSON object (name → number),
/// with the latency summaries expanded to `_mean`/`_min`/`_max`/`_count`
/// fields and the histogram reduced to `_p50`/`_p95`/`_p99`/`_count`.
pub fn render_json(stats: &EngineStats, metrics: Option<&MetricsSnapshot>) -> String {
    let mut out = String::with_capacity(2048);
    out.push('{');
    let mut first = true;
    match metrics {
        Some(snap) => {
            for (name, value) in snap.iter() {
                json_field(&mut out, &mut first, name, value.to_string());
            }
        }
        None => {
            json_field(
                &mut out,
                &mut first,
                Metric::JobsCompleted.name(),
                stats.jobs_completed.to_string(),
            );
            json_field(
                &mut out,
                &mut first,
                Metric::JobsPoisoned.name(),
                stats.jobs_poisoned.to_string(),
            );
            json_field(
                &mut out,
                &mut first,
                Metric::ExactRecoveries.name(),
                stats.exact_recoveries.to_string(),
            );
        }
    }
    json_field(&mut out, &mut first, "pooled_cache_hits_total", stats.cache_hits.to_string());
    json_field(&mut out, &mut first, "pooled_cache_misses_total", stats.cache_misses.to_string());
    json_field(&mut out, &mut first, "pooled_cache_len", stats.cache_len.to_string());
    json_field(&mut out, &mut first, "pooled_queued_jobs", stats.queued_jobs.to_string());
    json_field(&mut out, &mut first, "pooled_pending_results", stats.pending_results.to_string());
    json_field(&mut out, &mut first, "pooled_workers", stats.workers.to_string());
    for (name, s) in [
        ("pooled_total_latency_micros", &stats.total_latency),
        ("pooled_decode_latency_micros", &stats.decode_latency),
    ] {
        json_field(&mut out, &mut first, &format!("{name}_mean"), format!("{}", s.mean()));
        let (min, max) = if s.count() == 0 { (0.0, 0.0) } else { (s.min(), s.max()) };
        json_field(&mut out, &mut first, &format!("{name}_min"), format!("{min}"));
        json_field(&mut out, &mut first, &format!("{name}_max"), format!("{max}"));
        json_field(&mut out, &mut first, &format!("{name}_count"), s.count().to_string());
    }
    let h = &stats.histogram;
    for (q, label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
        let v = if h.count() == 0 { 0 } else { h.quantile_micros(q) };
        json_field(
            &mut out,
            &mut first,
            &format!("pooled_job_latency_micros_{label}"),
            v.to_string(),
        );
    }
    json_field(&mut out, &mut first, "pooled_job_latency_micros_count", h.count().to_string());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::registry::MetricsRegistry;

    fn stats() -> EngineStats {
        let mut s = EngineStats::zero();
        s.jobs_completed = 10;
        s.exact_recoveries = 9;
        s.cache_hits = 8;
        s.cache_misses = 2;
        s.cache_len = 2;
        s.workers = 4;
        for i in 0..10u64 {
            s.total_latency.push(4_000.0 + i as f64);
            s.decode_latency.push(300.0 + i as f64);
            s.histogram.record_micros(4_000 + i);
        }
        s
    }

    #[test]
    fn prometheus_exposition_has_every_family_and_parses_line_wise() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::JobsCompleted, 10);
        reg.add(Metric::WireBytesTx, 880);
        reg.add(Metric::WalAppends, 7);
        reg.add(Metric::WalBytes, 336);
        reg.add(Metric::RecoveryRecordsReplayed, 5);
        let snap = reg.snapshot();
        let text = render_prometheus(&stats(), Some(&snap));
        for needle in [
            "pooled_jobs_completed_total 10",
            "pooled_wire_bytes_tx_total 880",
            "pooled_jobs_failed_over_total 0",
            "pooled_wal_appends_total 7",
            "pooled_wal_bytes_total 336",
            "pooled_wal_fsyncs_total 0",
            "pooled_wal_segments_compacted_total 0",
            "pooled_recovery_records_replayed_total 5",
            "pooled_recovery_torn_tail_total 0",
            "pooled_cache_hits_total 8",
            "pooled_workers 4",
            "pooled_total_latency_micros{stat=\"mean\"}",
            "pooled_job_latency_micros_bucket{le=\"+Inf\"} 10",
            "pooled_job_latency_micros_count 10",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Every line is a comment or `name[{labels}] value` with a
        // numeric value — the shape a Prometheus scraper requires.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in {line:?}");
        }
        // Histogram buckets are cumulative and end at the total count.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=")) {
            let v: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 10);
    }

    #[test]
    fn transport_metrics_expose_with_gauge_and_counter_types() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::TransportConnections, 12);
        reg.dec(Metric::TransportConnections);
        reg.add(Metric::ReactorWakeups, 41);
        reg.inc(Metric::ReactorReadBudgetExhausted);
        reg.inc(Metric::TransportIdleEvictions);
        let snap = reg.snapshot();
        let text = render_prometheus(&stats(), Some(&snap));
        for needle in [
            "# TYPE pooled_transport_connections gauge\npooled_transport_connections 11",
            "# TYPE pooled_reactor_wakeups_total counter\npooled_reactor_wakeups_total 41",
            "pooled_reactor_read_budget_exhausted_total 1",
            "pooled_transport_idle_evictions_total 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let json = render_json(&stats(), Some(&snap));
        assert!(json.contains("\"pooled_transport_connections\":11"), "{json}");
        assert!(json.contains("\"pooled_reactor_wakeups_total\":41"), "{json}");
        assert!(json.contains("\"pooled_reactor_read_budget_exhausted_total\":1"), "{json}");
        assert!(json.contains("\"pooled_transport_idle_evictions_total\":1"), "{json}");
    }

    #[test]
    fn backend_and_readiness_metrics_expose_in_both_formats() {
        let reg = MetricsRegistry::new();
        reg.set(Metric::TransportBackend, 1);
        reg.add(Metric::TransportTicks, 500);
        reg.add(Metric::TransportReadyFds, 750);
        reg.add(Metric::TransportWritevCalls, 320);
        reg.add(Metric::TransportPartialWrites, 6);
        let snap = reg.snapshot();
        let text = render_prometheus(&stats(), Some(&snap));
        for needle in [
            // The backend marker is a gauge (0=poll/1=epoll): no
            // `_total`, typed gauge.
            "# TYPE pooled_transport_backend gauge\npooled_transport_backend 1",
            "# TYPE pooled_transport_ticks_total counter\npooled_transport_ticks_total 500",
            "pooled_transport_ready_fds_total 750",
            "pooled_transport_writev_calls_total 320",
            "pooled_transport_partial_writes_total 6",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let json = render_json(&stats(), Some(&snap));
        for needle in [
            "\"pooled_transport_backend\":1",
            "\"pooled_transport_ticks_total\":500",
            "\"pooled_transport_ready_fds_total\":750",
            "\"pooled_transport_writev_calls_total\":320",
            "\"pooled_transport_partial_writes_total\":6",
        ] {
            assert!(json.contains(needle), "missing {needle:?} in:\n{json}");
        }
    }

    #[test]
    fn without_a_registry_the_engine_counters_fall_back_to_the_snapshot() {
        let text = render_prometheus(&stats(), None);
        assert!(text.contains("pooled_jobs_completed_total 10"));
        assert!(text.contains("pooled_exact_recoveries_total 9"));
        assert!(!text.contains("pooled_wire_bytes_tx_total"), "no registry, no wire counters");
    }

    #[test]
    fn json_exposition_carries_the_wal_counters() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::WalAppends, 3);
        reg.inc(Metric::RecoveryTornTail);
        let snap = reg.snapshot();
        let text = render_json(&stats(), Some(&snap));
        assert!(text.contains("\"pooled_wal_appends_total\":3"), "{text}");
        assert!(text.contains("\"pooled_recovery_torn_tail_total\":1"), "{text}");
        assert!(text.contains("\"pooled_wal_fsyncs_total\":0"), "{text}");
    }

    #[test]
    fn json_exposition_is_balanced_and_complete() {
        let text = render_json(&stats(), None);
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains("\"pooled_jobs_completed_total\":10"));
        assert!(text.contains("\"pooled_job_latency_micros_p95\":"));
        assert!(text.contains("\"pooled_total_latency_micros_count\":10"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn empty_stats_render_without_panicking() {
        let empty = EngineStats::zero();
        let text = render_prometheus(&empty, None);
        assert!(text.contains("pooled_job_latency_micros_count 0"));
        let json = render_json(&empty, None);
        assert!(json.contains("\"pooled_job_latency_micros_p50\":0"));
        // min/max render as 0, not ±Inf (which JSON cannot carry).
        assert!(!json.contains("inf"), "no infinities in JSON: {json}");
    }
}
