//! The lock-free metrics registry: a fixed enum-indexed array of named
//! atomic counters.
//!
//! Dynamic metric registries (string keys, hash maps, registration
//! locks) put allocation and contention exactly where the engine cannot
//! afford them — on the per-job hot path. The serving stack's metric
//! set is closed and known at compile time, so the registry here is an
//! enum-indexed `[AtomicU64; METRIC_COUNT]`: incrementing is one
//! relaxed atomic add with no lock, no branch on a key, and no heap;
//! names are `'static` strings resolved only at exposition time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of registered metrics (the length of [`Metric::ALL`]).
pub const METRIC_COUNT: usize = 30;

/// Every counter the serving stack exports, in exposition order.
///
/// The per-outcome job counters partition a submission's fates across
/// the tiers that observe them: the engine counts `JobsCompleted`,
/// `JobsPoisoned` (decode panics contained by a worker) and
/// `JobsBusyShed` (non-blocking submissions refused at a full queue);
/// the transport server counts `JobsRejected` (infeasible or oversized
/// specs); the cluster router counts `JobsFailedOver` (specs re-routed
/// off a dead node). Wire counters are incremented by whichever
/// endpoint owns the socket half.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Jobs completed and delivered to a result stream.
    JobsCompleted,
    /// Jobs refused as infeasible (terminal REJECT).
    JobsRejected,
    /// Non-blocking submissions shed at a full queue (BUSY-class).
    JobsBusyShed,
    /// Jobs whose decoder panicked and was contained to a poisoned
    /// result.
    JobsPoisoned,
    /// Specs reclaimed from a dead node and re-routed to a survivor.
    JobsFailedOver,
    /// Completed jobs that recovered the hidden signal exactly.
    ExactRecoveries,
    /// Job traces drained into the flight recorder.
    TracesRecorded,
    /// Ring-buffer overwrites: traces or causal records evicted before
    /// anyone dumped them.
    TracesDropped,
    /// Frame bytes written to a socket.
    WireBytesTx,
    /// Frame bytes read from a socket.
    WireBytesRx,
    /// Frames written to a socket.
    WireFramesTx,
    /// Frames read (and verified) from a socket.
    WireFramesRx,
    /// Frames dropped for a checksum mismatch (the connection dies with
    /// them — there is no resync point).
    WireChecksumRejects,
    /// STATS scrapes answered (server) or completed (client).
    StatsScrapes,
    /// STATS scrapes that timed out waiting for the far side.
    StatsScrapeTimeouts,
    /// Records appended to the write-ahead design log.
    WalAppends,
    /// Bytes appended to the write-ahead design log (headers, payloads
    /// and checksums included).
    WalBytes,
    /// `fsync` calls issued by the WAL writer.
    WalFsyncs,
    /// WAL compactions: a live-set-only segment written and every older
    /// segment deleted.
    WalSegmentsCompacted,
    /// WAL records successfully replayed during crash recovery.
    RecoveryRecordsReplayed,
    /// Recoveries that stopped at a torn or corrupt tail record (the
    /// valid prefix was kept; the tail was discarded).
    RecoveryTornTail,
    /// Live transport connections (a **gauge**: incremented at accept,
    /// decremented at close/eviction — it goes down).
    TransportConnections,
    /// Event-loop wakeups actually signaled through the self-pipe
    /// (coalesced wakes that piggybacked on one in flight don't count —
    /// this measures parks interrupted, not results delivered).
    ReactorWakeups,
    /// Readiness ticks on which a connection hit its per-tick read
    /// budget with socket bytes still pending (the firehose-containment
    /// path: the loop moved on and came back).
    ReactorReadBudgetExhausted,
    /// Connections evicted for exceeding the idle timeout without a
    /// byte of progress in either direction (Slowloris reclamation).
    TransportIdleEvictions,
    /// Readiness backend in force (a **gauge**: 0 = `poll(2)`,
    /// 1 = epoll; set once at bind). Cluster merges sum it like any
    /// gauge — the sum over N epoll nodes reads N, i.e. "how many
    /// members run the O(active) front".
    TransportBackend,
    /// Event-loop readiness ticks (one backend wait plus the phases it
    /// feeds). The denominator for `pooled_transport_ready_fds_total`.
    TransportTicks,
    /// Fd entries the readiness backend touched, summed over ticks:
    /// events delivered under epoll, the whole registered set scanned
    /// under poll. `ready_fds / ticks` is the per-tick front cost — the
    /// O(active) vs O(connections) gap the `--connections` bench pins.
    TransportReadyFds,
    /// Vectored `writev` syscalls issued draining outbound segment
    /// queues.
    TransportWritevCalls,
    /// `writev` calls the kernel cut short (socket buffer full before
    /// the gather completed); the remainder resumes next tick from the
    /// queue's head offset, copy-free.
    TransportPartialWrites,
}

impl Metric {
    /// All metrics, index-aligned with the registry's counter array.
    pub const ALL: [Metric; METRIC_COUNT] = [
        Metric::JobsCompleted,
        Metric::JobsRejected,
        Metric::JobsBusyShed,
        Metric::JobsPoisoned,
        Metric::JobsFailedOver,
        Metric::ExactRecoveries,
        Metric::TracesRecorded,
        Metric::TracesDropped,
        Metric::WireBytesTx,
        Metric::WireBytesRx,
        Metric::WireFramesTx,
        Metric::WireFramesRx,
        Metric::WireChecksumRejects,
        Metric::StatsScrapes,
        Metric::StatsScrapeTimeouts,
        Metric::WalAppends,
        Metric::WalBytes,
        Metric::WalFsyncs,
        Metric::WalSegmentsCompacted,
        Metric::RecoveryRecordsReplayed,
        Metric::RecoveryTornTail,
        Metric::TransportConnections,
        Metric::ReactorWakeups,
        Metric::ReactorReadBudgetExhausted,
        Metric::TransportIdleEvictions,
        Metric::TransportBackend,
        Metric::TransportTicks,
        Metric::TransportReadyFds,
        Metric::TransportWritevCalls,
        Metric::TransportPartialWrites,
    ];

    /// The metric's exposition name (Prometheus conventions: `_total`
    /// suffix on monotonic counters, unit in the name).
    pub fn name(self) -> &'static str {
        match self {
            Metric::JobsCompleted => "pooled_jobs_completed_total",
            Metric::JobsRejected => "pooled_jobs_rejected_total",
            Metric::JobsBusyShed => "pooled_jobs_busy_shed_total",
            Metric::JobsPoisoned => "pooled_jobs_poisoned_total",
            Metric::JobsFailedOver => "pooled_jobs_failed_over_total",
            Metric::ExactRecoveries => "pooled_exact_recoveries_total",
            Metric::TracesRecorded => "pooled_traces_recorded_total",
            Metric::TracesDropped => "pooled_traces_dropped_total",
            Metric::WireBytesTx => "pooled_wire_bytes_tx_total",
            Metric::WireBytesRx => "pooled_wire_bytes_rx_total",
            Metric::WireFramesTx => "pooled_wire_frames_tx_total",
            Metric::WireFramesRx => "pooled_wire_frames_rx_total",
            Metric::WireChecksumRejects => "pooled_wire_checksum_rejects_total",
            Metric::StatsScrapes => "pooled_stats_scrapes_total",
            Metric::StatsScrapeTimeouts => "pooled_stats_scrape_timeouts_total",
            Metric::WalAppends => "pooled_wal_appends_total",
            Metric::WalBytes => "pooled_wal_bytes_total",
            Metric::WalFsyncs => "pooled_wal_fsyncs_total",
            Metric::WalSegmentsCompacted => "pooled_wal_segments_compacted_total",
            Metric::RecoveryRecordsReplayed => "pooled_recovery_records_replayed_total",
            Metric::RecoveryTornTail => "pooled_recovery_torn_tail_total",
            Metric::TransportConnections => "pooled_transport_connections",
            Metric::ReactorWakeups => "pooled_reactor_wakeups_total",
            Metric::ReactorReadBudgetExhausted => "pooled_reactor_read_budget_exhausted_total",
            Metric::TransportIdleEvictions => "pooled_transport_idle_evictions_total",
            Metric::TransportBackend => "pooled_transport_backend",
            Metric::TransportTicks => "pooled_transport_ticks_total",
            Metric::TransportReadyFds => "pooled_transport_ready_fds_total",
            Metric::TransportWritevCalls => "pooled_transport_writev_calls_total",
            Metric::TransportPartialWrites => "pooled_transport_partial_writes_total",
        }
    }

    /// Whether the metric is a gauge (its value can go down) rather
    /// than a monotonic counter. Gauges carry no `_total` suffix and
    /// are exposed with `# TYPE … gauge`; cluster-level merges still
    /// sum them (the sum of per-node live connections is the cluster's
    /// live connections).
    pub fn is_gauge(self) -> bool {
        matches!(self, Metric::TransportConnections | Metric::TransportBackend)
    }
}

/// A fixed-size set of lock-free counters, shared by `Arc` across the
/// workers, queues, and socket threads of one serving tier.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: [AtomicU64; METRIC_COUNT],
}

impl MetricsRegistry {
    /// All counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one to `metric`. Relaxed ordering: counters are statistics,
    /// not synchronization.
    pub fn inc(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Add `n` to `metric` (bulk recording, e.g. bytes per frame).
    pub fn add(&self, metric: Metric, n: u64) {
        self.counters[metric as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract one from a gauge, saturating at zero (a close racing a
    /// snapshot must never wrap a gauge to 2⁶⁴−1).
    pub fn dec(&self, metric: Metric) {
        debug_assert!(metric.is_gauge(), "{metric:?} is monotonic — dec would corrupt it");
        let _ = self.counters[metric as usize].fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| v.checked_sub(1),
        );
    }

    /// Overwrite a gauge with `v` (e.g. the backend-in-force marker,
    /// set once at bind). Counters are monotonic — a `set` on one would
    /// silently rewind history, hence the debug assert.
    pub fn set(&self, metric: Metric, v: u64) {
        debug_assert!(metric.is_gauge(), "{metric:?} is monotonic — set would corrupt it");
        self.counters[metric as usize].store(v, Ordering::Relaxed);
    }

    /// Current value of `metric`.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].load(Ordering::Relaxed)
    }

    /// Copy every counter out (each read is individually torn-free;
    /// the set is as consistent as relaxed counters can be).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values = [0u64; METRIC_COUNT];
        for (v, c) in values.iter_mut().zip(&self.counters) {
            *v = c.load(Ordering::Relaxed);
        }
        MetricsSnapshot { values }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: [u64; METRIC_COUNT],
}

impl MetricsSnapshot {
    /// Value of `metric` at snapshot time.
    pub fn get(&self, metric: Metric) -> u64 {
        self.values[metric as usize]
    }

    /// `(name, value)` pairs in exposition order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Metric::ALL.iter().map(move |&m| (m.name(), self.values[m as usize]))
    }

    /// Fold another snapshot in, saturating (cluster-wide sums).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a = a.saturating_add(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_align_with_indices_and_are_unique() {
        for (i, &m) in Metric::ALL.iter().enumerate() {
            assert_eq!(m as usize, i, "{:?} out of order", m);
        }
        let mut names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRIC_COUNT, "duplicate metric name");
        for &m in Metric::ALL.iter() {
            let name = m.name();
            assert!(name.starts_with("pooled_"), "{name} missing namespace");
            assert_eq!(
                name.ends_with("_total"),
                !m.is_gauge(),
                "{name}: counters carry _total, gauges must not"
            );
        }
    }

    #[test]
    fn gauges_go_down_and_saturate_at_zero() {
        let reg = MetricsRegistry::new();
        reg.inc(Metric::TransportConnections);
        reg.inc(Metric::TransportConnections);
        reg.dec(Metric::TransportConnections);
        assert_eq!(reg.get(Metric::TransportConnections), 1);
        reg.dec(Metric::TransportConnections);
        reg.dec(Metric::TransportConnections); // one dec too many
        assert_eq!(reg.get(Metric::TransportConnections), 0, "gauge must not wrap");
    }

    #[test]
    fn set_overwrites_a_gauge() {
        let reg = MetricsRegistry::new();
        reg.set(Metric::TransportBackend, 1);
        assert_eq!(reg.get(Metric::TransportBackend), 1);
        reg.set(Metric::TransportBackend, 0);
        assert_eq!(reg.get(Metric::TransportBackend), 0);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.inc(Metric::JobsCompleted);
        reg.add(Metric::JobsCompleted, 4);
        reg.add(Metric::WireBytesTx, 1024);
        assert_eq!(reg.get(Metric::JobsCompleted), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.get(Metric::JobsCompleted), 5);
        assert_eq!(snap.get(Metric::WireBytesTx), 1024);
        assert_eq!(snap.get(Metric::JobsPoisoned), 0);
        assert_eq!(snap.iter().count(), METRIC_COUNT);
    }

    #[test]
    fn concurrent_increments_never_lose_counts() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        reg.inc(Metric::JobsCompleted);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.get(Metric::JobsCompleted), 40_000);
    }

    #[test]
    fn snapshot_merge_saturates() {
        let reg = MetricsRegistry::new();
        reg.add(Metric::JobsCompleted, u64::MAX - 1);
        let mut a = reg.snapshot();
        let b = reg.snapshot();
        a.merge(&b);
        assert_eq!(a.get(Metric::JobsCompleted), u64::MAX);
    }
}
