//! The flight recorder: bounded rings of recent traces and causal
//! events, kept in memory for postmortems.
//!
//! Every ring is preallocated at construction and **overwrites its
//! oldest entry** when full — recording is an index write under a
//! short uncontended lock (each worker shard drains into its own
//! ring), never an allocation, so the steady-state allocation-free
//! guarantee of the serving path extends to full tracing
//! (`tests/alloc_free.rs`). Alongside the per-shard [`JobTrace`] rings,
//! one causal ring absorbs the cluster tier's "why did that happen"
//! records: failovers, stale events from dead nodes, chaos injections,
//! and stats-scrape timeouts. [`FlightRecorder::dump_json`] renders
//! the whole recorder as JSON (a cold path that allocates freely).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use super::trace::{JobTrace, Span};

/// What kind of causal event a [`CausalRecord`] explains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CausalKind {
    /// Placeholder for a never-written ring slot (not recorded).
    #[default]
    None,
    /// A node was declared dead and its jobs reclaimed.
    Failover,
    /// A node was drained and removed on purpose.
    NodeRemoved,
    /// An event arrived from a node already failed over (absorbed,
    /// not double-counted).
    StaleEvent,
    /// The chaos injector severed a node.
    ChaosKill,
    /// The chaos injector swallowed a submission.
    ChaosDrop,
    /// The chaos injector delayed an event.
    ChaosDelay,
    /// The chaos injector duplicated an event.
    ChaosDuplicate,
    /// A STATS scrape of a remote node timed out (the node's stats are
    /// marked unavailable, not silently zero-merged).
    StatsUnavailable,
    /// A RESULT frame left the server socket (the wire-tx counterpart
    /// of a trace already drained to the recorder).
    WireTx,
}

impl CausalKind {
    /// The kind's name in dumps.
    pub fn name(self) -> &'static str {
        match self {
            CausalKind::None => "none",
            CausalKind::Failover => "failover",
            CausalKind::NodeRemoved => "node_removed",
            CausalKind::StaleEvent => "stale_event",
            CausalKind::ChaosKill => "chaos_kill",
            CausalKind::ChaosDrop => "chaos_drop",
            CausalKind::ChaosDelay => "chaos_delay",
            CausalKind::ChaosDuplicate => "chaos_duplicate",
            CausalKind::StatsUnavailable => "stats_unavailable",
            CausalKind::WireTx => "wire_tx",
        }
    }
}

/// One causal event: what happened, to which node, about which job,
/// when.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CausalRecord {
    /// Microseconds since the recorder epoch.
    pub at_micros: u64,
    /// What happened.
    pub kind: CausalKind,
    /// Node id the event concerns (0 when not node-scoped).
    pub node: u64,
    /// Job id the event concerns (0 when not job-scoped).
    pub job: u64,
}

/// A fixed-capacity overwrite-oldest ring.
#[derive(Debug)]
struct Ring<T> {
    buf: Vec<T>,
    next: usize,
    len: usize,
}

impl<T: Copy + Default> Ring<T> {
    fn new(capacity: usize) -> Self {
        Self { buf: vec![T::default(); capacity.max(1)], next: 0, len: 0 }
    }

    /// Store `v`, returning `true` if an old entry was overwritten.
    fn push(&mut self, v: T) -> bool {
        let overwrote = self.len == self.buf.len();
        self.buf[self.next] = v;
        self.next = (self.next + 1) % self.buf.len();
        if !overwrote {
            self.len += 1;
        }
        overwrote
    }

    /// Entries oldest → newest (cold path; allocates).
    fn in_order(&self) -> Vec<T> {
        let cap = self.buf.len();
        let start = if self.len == cap { self.next } else { 0 };
        (0..self.len).map(|i| self.buf[(start + i) % cap]).collect()
    }
}

/// Bounded in-memory recorder of recent traces and causal events (see
/// the module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    shards: Vec<Mutex<Ring<JobTrace>>>,
    causal: Mutex<Ring<CausalRecord>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with `shards` trace rings (one per worker shard) of
    /// `capacity` entries each, plus a causal ring of the same
    /// capacity. Both clamp to at least one shard / one entry.
    pub fn new(shards: usize, capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            shards: (0..shards.max(1)).map(|_| Mutex::new(Ring::new(capacity))).collect(),
            causal: Mutex::new(Ring::new(capacity)),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The instant all span timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds elapsed since the epoch — the clock every span
    /// stamp and causal record uses.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Number of trace rings.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Drain one completed trace into shard `shard`'s ring (modular, so
    /// any index is safe). Unsampled traces are ignored. Returns whether
    /// an older trace was evicted to make room.
    pub fn record_trace(&self, shard: usize, trace: &JobTrace) -> bool {
        if !trace.sampled {
            return false;
        }
        let ring = &self.shards[shard % self.shards.len()];
        let overwrote = ring.lock().expect("trace ring poisoned").push(*trace);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if overwrote {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        overwrote
    }

    /// Record a causal event at the current clock.
    pub fn record_causal(&self, kind: CausalKind, node: u64, job: u64) {
        let rec = CausalRecord { at_micros: self.now_micros(), kind, node, job };
        let overwrote = self.causal.lock().expect("causal ring poisoned").push(rec);
        if overwrote {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Traces ever recorded (including ones since overwritten).
    pub fn traces_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Entries evicted by ring overwrites (traces and causal records).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All retained traces, per shard, oldest → newest (cold path).
    pub fn traces(&self) -> Vec<Vec<JobTrace>> {
        self.shards.iter().map(|s| s.lock().expect("trace ring poisoned").in_order()).collect()
    }

    /// All retained causal records, oldest → newest (cold path).
    pub fn causal_records(&self) -> Vec<CausalRecord> {
        self.causal.lock().expect("causal ring poisoned").in_order()
    }

    /// Render the recorder as a JSON document for postmortems:
    /// `{"dropped":…,"shards":[{"shard":0,"traces":[{"id":…,"worker":…,
    /// "spans":{"admit":…}}]}],"causal":[{"at_micros":…,"kind":"…",
    /// "node":…,"job":…}]}`. Span slots that were never stamped are
    /// omitted. Cold path; allocates freely.
    pub fn dump_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"dropped\":");
        out.push_str(&self.dropped().to_string());
        out.push_str(",\"shards\":[");
        for (i, traces) in self.traces().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"shard\":");
            out.push_str(&i.to_string());
            out.push_str(",\"traces\":[");
            for (j, t) in traces.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"id\":");
                out.push_str(&t.id.to_string());
                out.push_str(",\"worker\":");
                out.push_str(&t.worker.to_string());
                out.push_str(",\"spans\":{");
                let mut first = true;
                for &span in &Span::ALL {
                    if let Some(at) = t.span_micros(span) {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push('"');
                        out.push_str(span.name());
                        out.push_str("\":");
                        out.push_str(&at.to_string());
                    }
                }
                out.push_str("}}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"causal\":[");
        for (i, rec) in self.causal_records().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"at_micros\":");
            out.push_str(&rec.at_micros.to_string());
            out.push_str(",\"kind\":\"");
            out.push_str(rec.kind.name());
            out.push_str("\",\"node\":");
            out.push_str(&rec.node.to_string());
            out.push_str(",\"job\":");
            out.push_str(&rec.job.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, admit: u64) -> JobTrace {
        let mut t = JobTrace::sampled_for(id);
        t.stamp(Span::Admit, admit);
        t
    }

    #[test]
    fn rings_retain_the_newest_entries_in_order() {
        let rec = FlightRecorder::new(2, 3);
        for id in 0..5 {
            rec.record_trace(0, &trace(id, id * 10));
        }
        rec.record_trace(1, &trace(99, 1));
        let shards = rec.traces();
        let ids: Vec<u64> = shards[0].iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest overwritten, order kept");
        assert_eq!(shards[1].len(), 1);
        assert_eq!(rec.traces_recorded(), 6);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn unsampled_traces_are_ignored() {
        let rec = FlightRecorder::new(1, 4);
        rec.record_trace(0, &JobTrace::empty());
        assert_eq!(rec.traces_recorded(), 0);
        assert!(rec.traces()[0].is_empty());
    }

    #[test]
    fn causal_records_carry_kind_node_job() {
        let rec = FlightRecorder::new(1, 4);
        rec.record_causal(CausalKind::Failover, 7, 0);
        rec.record_causal(CausalKind::StaleEvent, 7, 31);
        let recs = rec.causal_records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, CausalKind::Failover);
        assert_eq!(recs[0].node, 7);
        assert_eq!(recs[1].job, 31);
        assert!(recs[1].at_micros >= recs[0].at_micros, "clock is monotone");
    }

    #[test]
    fn dump_json_is_well_formed_and_omits_unset_spans() {
        let rec = FlightRecorder::new(1, 4);
        let mut t = trace(5, 100);
        t.stamp(Span::DecodeStart, 150);
        rec.record_trace(0, &t);
        rec.record_causal(CausalKind::ChaosKill, 2, 0);
        let json = rec.dump_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"id\":5"));
        assert!(json.contains("\"admit\":100"));
        assert!(json.contains("\"decode_start\":150"));
        assert!(!json.contains("wire_tx"), "unstamped spans are omitted");
        assert!(json.contains("\"kind\":\"chaos_kill\""));
        // Balanced braces/brackets — a cheap well-formedness check that
        // needs no JSON parser in the dependency tree.
        let (mut braces, mut brackets) = (0i64, 0i64);
        for c in json.chars() {
            match c {
                '{' => braces += 1,
                '}' => braces -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
            assert!(braces >= 0 && brackets >= 0);
        }
        assert_eq!((braces, brackets), (0, 0));
    }

    #[test]
    fn zero_capacity_clamps_instead_of_panicking() {
        let rec = FlightRecorder::new(0, 0);
        rec.record_trace(3, &trace(1, 1));
        rec.record_causal(CausalKind::Failover, 1, 0);
        assert_eq!(rec.traces()[0].len(), 1);
        assert_eq!(rec.causal_records().len(), 1);
    }
}
