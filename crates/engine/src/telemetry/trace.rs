//! Per-job trace spans: a fixed-size timeline of where one job spent
//! its life.
//!
//! A [`JobTrace`] is `Copy` and rides alongside the queued job through
//! the engine's bounded queues — no allocation, no pointer chasing, no
//! effect on the decode path (timestamps never feed a seed or a
//! kernel), so result fingerprints are bit-identical whether tracing is
//! off, sampled, or recording every job. Timestamps are microseconds
//! since the owning flight recorder's epoch, stamped from a monotonic
//! clock.

/// Number of span slots in a [`JobTrace`] (the length of [`Span::ALL`]).
pub const TRACE_SPANS: usize = 8;

/// Sentinel for a span slot that was never stamped.
const UNSET: u64 = u64::MAX;

/// The stages of a job's life a trace can stamp, in causal order.
///
/// In-process serving stamps `Admit` through `RouteHop`; the wire spans
/// are stamped only on paths that cross a socket (`WireRx` by the
/// transport server at frame ingress, `WireTx` as a causal record when
/// the result frame leaves — the trace itself has already been drained
/// to the recorder by then).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Span {
    /// Submission accepted into the job queue.
    Admit,
    /// A worker popped the job off the queue.
    Dequeue,
    /// Design-cache probe resolved (hit or single-flight sample).
    CacheProbe,
    /// Decode kernel entered.
    DecodeStart,
    /// Decode kernel returned.
    DecodeEnd,
    /// Result handed to its delivery route (the fan-in hop toward the
    /// tenant).
    RouteHop,
    /// SUBMIT frame arrived at the transport server (wire paths only).
    WireRx,
    /// RESULT frame written back to the socket (wire paths only; see
    /// the type-level note on stamping).
    WireTx,
}

impl Span {
    /// All spans, index-aligned with the trace's slot array.
    pub const ALL: [Span; TRACE_SPANS] = [
        Span::Admit,
        Span::Dequeue,
        Span::CacheProbe,
        Span::DecodeStart,
        Span::DecodeEnd,
        Span::RouteHop,
        Span::WireRx,
        Span::WireTx,
    ];

    /// The span's name in dumps and exposition.
    pub fn name(self) -> &'static str {
        match self {
            Span::Admit => "admit",
            Span::Dequeue => "dequeue",
            Span::CacheProbe => "cache_probe",
            Span::DecodeStart => "decode_start",
            Span::DecodeEnd => "decode_end",
            Span::RouteHop => "route_hop",
            Span::WireRx => "wire_rx",
            Span::WireTx => "wire_tx",
        }
    }
}

/// A fixed-size per-job span timeline (see the module docs for the
/// determinism contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobTrace {
    /// The traced job's id.
    pub id: u64,
    /// Worker shard that served the job (stamped at completion).
    pub worker: u32,
    /// Whether the sampling knob selected this job; unsampled traces
    /// ride the queue as inert padding and are never recorded.
    pub sampled: bool,
    spans: [u64; TRACE_SPANS],
}

impl Default for JobTrace {
    fn default() -> Self {
        Self::empty()
    }
}

impl JobTrace {
    /// An inert, unsampled trace (what unsampled jobs carry).
    pub fn empty() -> Self {
        Self { id: 0, worker: 0, sampled: false, spans: [UNSET; TRACE_SPANS] }
    }

    /// A live trace for job `id`, ready to stamp.
    pub fn sampled_for(id: u64) -> Self {
        Self { id, sampled: true, ..Self::empty() }
    }

    /// Record `span` at `micros` since the recorder epoch. Last stamp
    /// wins (a failed-over job re-admits, overwriting its first admit).
    pub fn stamp(&mut self, span: Span, micros: u64) {
        // u64::MAX is reserved as "unset"; a stamp that collides with it
        // (292 000 years past the epoch) clamps down one microsecond.
        self.spans[span as usize] = micros.min(UNSET - 1);
    }

    /// The stamped time of `span`, or `None` if it never happened.
    pub fn span_micros(&self, span: Span) -> Option<u64> {
        let v = self.spans[span as usize];
        (v != UNSET).then_some(v)
    }

    /// Elapsed microseconds from `from` to `to`, if both were stamped
    /// in that order.
    pub fn between_micros(&self, from: Span, to: Span) -> Option<u64> {
        let (a, b) = (self.span_micros(from)?, self.span_micros(to)?);
        b.checked_sub(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_align_with_indices_and_have_unique_names() {
        for (i, &s) in Span::ALL.iter().enumerate() {
            assert_eq!(s as usize, i);
        }
        let mut names: Vec<_> = Span::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TRACE_SPANS);
    }

    #[test]
    fn stamping_and_deltas() {
        let mut t = JobTrace::sampled_for(42);
        assert!(t.sampled);
        assert_eq!(t.span_micros(Span::Admit), None);
        t.stamp(Span::Admit, 100);
        t.stamp(Span::Dequeue, 250);
        t.stamp(Span::DecodeStart, 300);
        t.stamp(Span::DecodeEnd, 900);
        assert_eq!(t.span_micros(Span::Admit), Some(100));
        assert_eq!(t.between_micros(Span::Admit, Span::Dequeue), Some(150));
        assert_eq!(t.between_micros(Span::DecodeStart, Span::DecodeEnd), Some(600));
        assert_eq!(t.between_micros(Span::Admit, Span::RouteHop), None, "unstamped");
        // Out-of-order stamps surface as None, not a wrapped huge delta.
        t.stamp(Span::RouteHop, 50);
        assert_eq!(t.between_micros(Span::Admit, Span::RouteHop), None);
    }

    #[test]
    fn the_unset_sentinel_cannot_be_stamped() {
        let mut t = JobTrace::sampled_for(1);
        t.stamp(Span::Admit, u64::MAX);
        assert_eq!(t.span_micros(Span::Admit), Some(u64::MAX - 1));
    }
}
