//! Disk-spilled design snapshots: the CSR structure of a sampled design
//! serialized next to the WAL, so recovery can reload warm designs
//! instead of resampling them.
//!
//! Resampling is always a correct fallback — designs are pure functions
//! of their [`DesignKey`] — so a snapshot is purely an accelerator, and
//! the safety bar is asymmetric: a *missing or corrupt* snapshot costs
//! one cold resample, but a *wrong* snapshot would silently change
//! every decode routed through it. The format therefore carries a
//! version header and a whole-file checksum, and the loader re-derives
//! every structural invariant (offset monotonicity, entry bounds, row
//! ordering) before handing the design back. Anything suspicious is
//! rejected as [`SnapshotError`] and the caller resamples.
//!
//! One file per design, named `design-<16-hex key digest>.snap`:
//!
//! ```text
//! offset        size        field
//! 0             1           magic    (0xD7)
//! 1             1           version  (1)
//! 2             1           design kind code (index into DesignKind::ALL)
//! 3             1           reserved (0)
//! 4             4           c_milli, u32 LE (seed provenance: density)
//! 8             8           n, u64 LE
//! 16            8           m, u64 LE
//! 24            8           seed, u64 LE (seed provenance)
//! 32            8           gamma, u64 LE
//! 40            8           nnz, u64 LE
//! 48            8(m+1)      q_offsets, u64 LE each
//! …             4·nnz       entries, u32 LE each
//! …             4·nnz       mults, u32 LE each
//! end-8         8           checksum, u64 LE over all preceding bytes
//! ```
//!
//! Writes go to a `.tmp` sibling and are renamed into place, so a crash
//! mid-spill leaves at worst a stale temp file, never a half-written
//! `.snap` under the real name.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pooled_design::{
    AnyDesign, BernoulliDesign, CsrDesign, DesignKind, EntryRegularDesign, NoReplaceDesign,
    PoolingDesign,
};

use crate::cache::DesignKey;
use crate::job::Digest;
use crate::transport::frame::checksum;

/// First byte of every snapshot file.
pub const SNAP_MAGIC: u8 = 0xD7;
/// Snapshot format version this build writes and accepts.
pub const SNAP_VERSION: u8 = 1;

const FIXED_HEADER_LEN: usize = 48;
const CHECKSUM_LEN: usize = 8;

/// Why a snapshot was rejected (the caller resamples from the key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// File shorter than its fixed header, or shorter/longer than the
    /// size its own dimensions imply.
    BadSize,
    /// First byte is not [`SNAP_MAGIC`].
    BadMagic(u8),
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown design-kind code.
    BadKind(u8),
    /// Stored checksum does not match the file bytes.
    BadChecksum,
    /// A structural invariant failed: non-monotone offsets, an
    /// out-of-range entry, an unsorted row, or a zero multiplicity.
    BadStructure,
    /// The stored key fields do not match the key the caller asked for.
    KeyMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadSize => write!(f, "snapshot size contradicts its dimensions"),
            SnapshotError::BadMagic(b) => write!(f, "bad snapshot magic 0x{b:02X}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadKind(k) => write!(f, "unknown design kind code {k}"),
            SnapshotError::BadChecksum => write!(f, "snapshot checksum mismatch"),
            SnapshotError::BadStructure => write!(f, "snapshot violates CSR invariants"),
            SnapshotError::KeyMismatch => write!(f, "snapshot key fields disagree with file name"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn kind_code(kind: DesignKind) -> u8 {
    DesignKind::ALL.iter().position(|&k| k == kind).expect("design kind in ALL") as u8
}

/// Snapshot file name for `key` (a digest keeps the name short and
/// filesystem-safe regardless of the key's numeric ranges).
pub fn snapshot_file_name(key: &DesignKey) -> String {
    let mut d = Digest::new();
    d.push(key.n as u64);
    d.push(key.m as u64);
    d.push(key.seed);
    d.push(key.c_milli as u64);
    d.push(kind_code(key.kind) as u64);
    format!("design-{:016x}.snap", d.finish())
}

fn snapshot_path(dir: &Path, key: &DesignKey) -> PathBuf {
    dir.join(snapshot_file_name(key))
}

/// Serialize `design` under `key`'s name in `dir` (write-temp-rename).
pub fn spill_design(dir: &Path, key: &DesignKey, design: &AnyDesign) -> io::Result<()> {
    let csr = design.csr();
    let (n, m, gamma, nnz) = (csr.n(), csr.m(), csr.gamma(), csr.nnz());
    let mut buf = Vec::with_capacity(FIXED_HEADER_LEN + 8 * (m + 1) + 8 * nnz + CHECKSUM_LEN);
    buf.push(SNAP_MAGIC);
    buf.push(SNAP_VERSION);
    buf.push(kind_code(key.kind));
    buf.push(0); // reserved
    buf.extend_from_slice(&key.c_milli.to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    buf.extend_from_slice(&(m as u64).to_le_bytes());
    buf.extend_from_slice(&key.seed.to_le_bytes());
    buf.extend_from_slice(&(gamma as u64).to_le_bytes());
    buf.extend_from_slice(&(nnz as u64).to_le_bytes());
    let mut offset = 0u64;
    let mut rows = Vec::with_capacity(m);
    for q in 0..m {
        let (entries, mults) = csr.query_row(q);
        rows.push((entries, mults));
        buf.extend_from_slice(&offset.to_le_bytes());
        offset += entries.len() as u64;
    }
    buf.extend_from_slice(&offset.to_le_bytes());
    for &(entries, _) in &rows {
        for &e in entries {
            buf.extend_from_slice(&e.to_le_bytes());
        }
    }
    for &(_, mults) in &rows {
        for &c in mults {
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }
    let ck = checksum(&buf);
    buf.extend_from_slice(&ck.to_le_bytes());
    let path = snapshot_path(dir, key);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, &path)
}

/// Delete `key`'s snapshot if present (called on eviction; a missing
/// file is fine — the design may never have been spilled).
pub fn remove_design(dir: &Path, key: &DesignKey) -> io::Result<()> {
    match fs::remove_file(snapshot_path(dir, key)) {
        Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
        _ => Ok(()),
    }
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn get_usize(bytes: &[u8], at: usize) -> Result<usize, SnapshotError> {
    usize::try_from(get_u64(bytes, at)).map_err(|_| SnapshotError::BadSize)
}

/// Parse snapshot `bytes` back into the design for `key`, verifying the
/// checksum, the stored key fields, and every CSR invariant. The
/// expected total size is computed from the header *before* any payload
/// allocation, so a corrupt dimension field cannot trigger a huge
/// allocation — the file's own length bounds everything.
pub fn decode_design(key: &DesignKey, bytes: &[u8]) -> Result<AnyDesign, SnapshotError> {
    if bytes.len() < FIXED_HEADER_LEN + CHECKSUM_LEN {
        return Err(SnapshotError::BadSize);
    }
    if bytes[0] != SNAP_MAGIC {
        return Err(SnapshotError::BadMagic(bytes[0]));
    }
    if bytes[1] != SNAP_VERSION {
        return Err(SnapshotError::BadVersion(bytes[1]));
    }
    let kind =
        DesignKind::ALL.get(bytes[2] as usize).copied().ok_or(SnapshotError::BadKind(bytes[2]))?;
    let c_milli = get_u32(bytes, 4);
    let n = get_usize(bytes, 8)?;
    let m = get_usize(bytes, 16)?;
    let seed = get_u64(bytes, 24);
    let gamma = get_usize(bytes, 32)?;
    let nnz = get_usize(bytes, 40)?;
    let expected = FIXED_HEADER_LEN
        .checked_add(m.checked_add(1).and_then(|r| r.checked_mul(8)).ok_or(SnapshotError::BadSize)?)
        .and_then(|t| t.checked_add(nnz.checked_mul(8)?))
        .and_then(|t| t.checked_add(CHECKSUM_LEN))
        .ok_or(SnapshotError::BadSize)?;
    if bytes.len() != expected {
        return Err(SnapshotError::BadSize);
    }
    let body = &bytes[..expected - CHECKSUM_LEN];
    if checksum(body) != get_u64(bytes, expected - CHECKSUM_LEN) {
        return Err(SnapshotError::BadChecksum);
    }
    if kind != key.kind || c_milli != key.c_milli || n != key.n || m != key.m || seed != key.seed {
        return Err(SnapshotError::KeyMismatch);
    }
    if n == 0 {
        return Err(SnapshotError::BadStructure);
    }
    let offsets_at = FIXED_HEADER_LEN;
    let entries_at = offsets_at + 8 * (m + 1);
    let mults_at = entries_at + 4 * nnz;
    if get_u64(bytes, offsets_at) != 0 || get_u64(bytes, offsets_at + 8 * m) != nnz as u64 {
        return Err(SnapshotError::BadStructure);
    }
    let mut rows = Vec::with_capacity(m);
    let mut prev_end = 0usize;
    for q in 0..m {
        let end = get_usize(bytes, offsets_at + 8 * (q + 1))?;
        if end < prev_end || end > nnz {
            return Err(SnapshotError::BadStructure);
        }
        let mut row = Vec::with_capacity(end - prev_end);
        let mut prev_entry = None;
        for i in prev_end..end {
            let e = get_u32(bytes, entries_at + 4 * i);
            let c = get_u32(bytes, mults_at + 4 * i);
            if e as usize >= n || c == 0 || prev_entry.is_some_and(|p| e <= p) {
                return Err(SnapshotError::BadStructure);
            }
            prev_entry = Some(e);
            row.push((e, c));
        }
        prev_end = end;
        rows.push(row);
    }
    let csr = CsrDesign::from_sorted_rle_rows(n, gamma, rows);
    let c = c_milli as f64 / 1000.0;
    Ok(match kind {
        DesignKind::RandomRegular => AnyDesign::RandomRegular(csr),
        DesignKind::NoReplace => AnyDesign::NoReplace(NoReplaceDesign::from_csr(csr)),
        DesignKind::Bernoulli => AnyDesign::Bernoulli(BernoulliDesign::from_csr(csr, c)),
        DesignKind::EntryRegular => AnyDesign::EntryRegular(EntryRegularDesign::from_csr(
            csr,
            EntryRegularDesign::matching_delta(m, c),
        )),
    })
}

/// Load `key`'s snapshot from `dir`. `Ok(None)` when no file exists.
pub fn load_design(dir: &Path, key: &DesignKey) -> Result<Option<AnyDesign>, SnapshotError> {
    let bytes = match fs::read(snapshot_path(dir, key)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(_) => return Err(SnapshotError::BadSize),
    };
    decode_design(key, &bytes).map(Some)
}

/// Load every available snapshot for `keys`, skipping missing or
/// rejected files (those keys resample later). Returns the loaded
/// designs plus how many snapshots were rejected as corrupt.
pub fn load_all(dir: &Path, keys: &[DesignKey]) -> (Vec<(DesignKey, Arc<AnyDesign>)>, u64) {
    let mut loaded = Vec::new();
    let mut rejected = 0u64;
    for key in keys {
        match load_design(dir, key) {
            Ok(Some(design)) => loaded.push((*key, Arc::new(design))),
            Ok(None) => {}
            Err(_) => rejected += 1,
        }
    }
    (loaded, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::testutil::scratch_dir;

    fn key(kind: DesignKind, seed: u64) -> DesignKey {
        DesignKey { n: 96, m: 32, kind, c_milli: 500, seed }
    }

    #[test]
    fn every_design_kind_round_trips_bit_identically() {
        let dir = scratch_dir("snap-roundtrip");
        for (i, &kind) in DesignKind::ALL.iter().enumerate() {
            let key = key(kind, 41 + i as u64);
            let design = key.sample();
            spill_design(&dir, &key, &design).unwrap();
            let loaded = load_design(&dir, &key).unwrap().expect("snapshot present");
            assert_eq!(loaded.kind(), kind);
            let (a, b) = (design.csr(), loaded.csr());
            assert_eq!(a.n(), b.n());
            assert_eq!(a.m(), b.m());
            assert_eq!(a.gamma(), b.gamma());
            assert_eq!(a.nnz(), b.nnz());
            for q in 0..a.m() {
                assert_eq!(a.query_row(q), b.query_row(q), "{kind:?} row {q}");
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_missing_snapshot_is_none_not_an_error() {
        let dir = scratch_dir("snap-missing");
        assert!(load_design(&dir, &key(DesignKind::RandomRegular, 5)).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_anywhere_is_rejected_never_a_wrong_design() {
        let dir = scratch_dir("snap-corrupt");
        let key = key(DesignKind::NoReplace, 11);
        spill_design(&dir, &key, &key.sample()).unwrap();
        let path = snapshot_path(&dir, &key);
        let clean = fs::read(&path).unwrap();
        // Flip one bit at a spread of offsets covering header, offsets,
        // entries, mults and the checksum itself.
        for at in (0..clean.len()).step_by(37.max(clean.len() / 64)) {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x10;
            fs::write(&path, &bytes).unwrap();
            assert!(load_design(&dir, &key).is_err(), "bit flip at byte {at} was not detected");
        }
        // Truncation is also caught.
        fs::write(&path, &clean[..clean.len() - 3]).unwrap();
        assert!(load_design(&dir, &key).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_snapshot_under_the_wrong_key_is_a_key_mismatch() {
        let dir = scratch_dir("snap-wrong-key");
        let a = key(DesignKind::Bernoulli, 1);
        let mut b = a;
        b.seed = 2;
        spill_design(&dir, &a, &a.sample()).unwrap();
        let bytes = fs::read(snapshot_path(&dir, &a)).unwrap();
        match decode_design(&b, &bytes) {
            Err(SnapshotError::KeyMismatch) => {}
            other => panic!("expected KeyMismatch, got {:?}", other.map(|d| d.kind())),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_all_skips_corrupt_files_and_counts_them() {
        let dir = scratch_dir("snap-load-all");
        let keys: Vec<_> = (0..3).map(|s| key(DesignKind::EntryRegular, s)).collect();
        for k in &keys {
            spill_design(&dir, k, &k.sample()).unwrap();
        }
        // Corrupt the middle snapshot.
        let path = snapshot_path(&dir, &keys[1]);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let (loaded, rejected) = load_all(&dir, &keys);
        assert_eq!(loaded.len(), 2);
        assert_eq!(rejected, 1);
        assert!(loaded.iter().all(|(k, _)| *k != keys[1]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eviction_removal_tolerates_a_missing_file() {
        let dir = scratch_dir("snap-remove");
        let k = key(DesignKind::RandomRegular, 77);
        remove_design(&dir, &k).unwrap(); // nothing there yet
        spill_design(&dir, &k, &k.sample()).unwrap();
        remove_design(&dir, &k).unwrap();
        assert!(load_design(&dir, &k).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
