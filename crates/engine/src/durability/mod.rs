//! The durable tier: crash recovery for the design cache and the
//! engine's cumulative telemetry.
//!
//! An engine's expensive state is its warm design cache — every resident
//! design took a full sampling pass to build — plus the counters and
//! latency histograms operators trend across restarts. A process crash
//! loses both: the replacement node serves its first requests cold, and
//! the telemetry plane forgets everything it learned. This module makes
//! both survivable with three cooperating pieces:
//!
//! * **[`wal`]** — a write-ahead design log. Every cache admission and
//!   eviction appends a checksummed record; replay reconstructs the
//!   exact live key set in admission order. Segments rotate by size and
//!   a compactor rewrites the live set into one fresh segment.
//! * **[`snapshot`]** — disk-spilled designs. The CSR structure of each
//!   admitted design is serialized beside the log, so recovery reloads
//!   warm designs instead of resampling them. Snapshots are an
//!   accelerator only: a rejected snapshot falls back to resampling
//!   from the key, which is bit-identical by construction.
//! * **[`fault`]** — deterministic storage-fault injection (crash
//!   points, torn writes, bit flips) so the crash-consistency invariant
//!   is pinned by tests, not asserted in prose.
//!
//! The invariant the tests enforce: **recovery yields a correct prefix
//! of the log or a clean error — never a wrong design.** Designs are
//! pure functions of their keys, so a recovered node's decode
//! fingerprints are bit-identical to a node that never crashed.

pub mod fault;
pub mod snapshot;
pub mod wal;

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use pooled_design::AnyDesign;

use crate::cache::DesignKey;
use crate::engine::EngineStats;
use crate::telemetry::{Metric, MetricsRegistry};

use self::wal::{replay_dir, WalError, WalRecord, WalWriter};

/// Where and how an engine persists its durable state.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Directory holding WAL segments and design snapshots.
    pub dir: PathBuf,
    /// Rotate the active WAL segment once it exceeds this many bytes.
    pub segment_max_bytes: u64,
    /// Force every append to disk (`fsync` per record). Off by default:
    /// the kernel's page cache already survives process crashes, which
    /// is the failure mode this tier defends; power-loss durability
    /// costs an fsync per admission and is opt-in.
    pub fsync: bool,
    /// Spill each admitted design's CSR beside the log. On by default;
    /// turning it off trades recovery speed (resampling instead of
    /// loading) for zero snapshot disk usage.
    pub spill_designs: bool,
}

impl DurabilityConfig {
    /// Defaults: 1 MiB segments, no per-record fsync, snapshots on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), segment_max_bytes: 1 << 20, fsync: false, spill_designs: true }
    }
}

/// What the design cache tells the durable tier. Hooks are called
/// outside the cache's map lock but inside the admission path, so
/// implementations must be cheap or explicitly accept the latency.
pub trait DesignJournal: Send + Sync {
    /// `key`'s design entered the cache.
    fn admitted(&self, key: &DesignKey, design: &AnyDesign);
    /// `key`'s design was evicted.
    fn evicted(&self, key: &DesignKey);
}

/// Everything recovered from a durability directory.
pub struct Recovery {
    /// Live keys at the replayed prefix, in admission order.
    pub keys: Vec<DesignKey>,
    /// Designs reloaded from snapshots (a subset of `keys`; the rest
    /// must be resampled).
    pub designs: Vec<(DesignKey, Arc<AnyDesign>)>,
    /// The newest persisted stats checkpoint, if any.
    pub stats: Option<EngineStats>,
    /// WAL records successfully replayed.
    pub records_replayed: u64,
    /// Whether replay stopped at a torn tail (crash mid-append).
    pub torn_tail: bool,
    /// Snapshots loaded and verified.
    pub snapshots_loaded: u64,
    /// Snapshots rejected as corrupt (their keys resample instead).
    pub snapshots_rejected: u64,
    /// WAL segments visited.
    pub segments: u64,
}

impl Recovery {
    /// The persisted stats checkpoint shaped for use as a restart
    /// baseline: cumulative counters survive, but point-in-time gauges
    /// (cache residency, queue depths, worker count) are zeroed because
    /// the restarted engine reports its own live values for those.
    pub fn stats_baseline(&self) -> EngineStats {
        let mut s = self.stats.unwrap_or_else(EngineStats::zero);
        s.cache_len = 0;
        s.queued_jobs = 0;
        s.pending_results = 0;
        s.workers = 0;
        s
    }
}

/// Replay `config.dir`: WAL prefix first, then whatever snapshots cover
/// the recovered keys. Counters land in `metrics` so the recovery is
/// visible in the node's own exposition.
pub fn recover(config: &DurabilityConfig, metrics: &MetricsRegistry) -> Result<Recovery, WalError> {
    let replay = replay_dir(&config.dir)?;
    metrics.add(Metric::RecoveryRecordsReplayed, replay.records_replayed);
    if replay.torn_tail {
        metrics.inc(Metric::RecoveryTornTail);
    }
    let (designs, snapshots_rejected) = if config.spill_designs {
        snapshot::load_all(&config.dir, &replay.keys)
    } else {
        (Vec::new(), 0)
    };
    Ok(Recovery {
        snapshots_loaded: designs.len() as u64,
        snapshots_rejected,
        designs,
        keys: replay.keys,
        stats: replay.stats,
        records_replayed: replay.records_replayed,
        torn_tail: replay.torn_tail,
        segments: replay.segments,
    })
}

/// The live journal an engine attaches to its design cache: admissions
/// spill a snapshot and append an `ADMIT`; evictions append an `EVICT`
/// and delete the snapshot.
///
/// Journal I/O errors are swallowed (after damaging nothing): a full or
/// failing disk must degrade durability, not take down serving. The
/// worst outcome of a lost record is a cold resample after the next
/// crash — the WAL's prefix rule already treats missing tail records as
/// a torn write.
pub struct WalJournal {
    writer: Mutex<WalWriter>,
    dir: PathBuf,
    spill_designs: bool,
}

impl WalJournal {
    /// Open the WAL in `config.dir` for appending.
    pub fn open(config: &DurabilityConfig, metrics: Arc<MetricsRegistry>) -> io::Result<Self> {
        let writer = WalWriter::open(&config.dir, config.segment_max_bytes, config.fsync, metrics)?;
        Ok(Self {
            writer: Mutex::new(writer),
            dir: config.dir.clone(),
            spill_designs: config.spill_designs,
        })
    }

    /// The directory this journal persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Compact the log down to `live` (admission order) plus a stats
    /// checkpoint. Called after recovery prewarm and at clean shutdown.
    pub fn checkpoint(&self, live: &[DesignKey], stats: &EngineStats) -> io::Result<()> {
        let mut writer = self.writer.lock().expect("WAL writer poisoned");
        writer.compact(live, Some(stats))
    }
}

impl DesignJournal for WalJournal {
    fn admitted(&self, key: &DesignKey, design: &AnyDesign) {
        if self.spill_designs {
            let _ = snapshot::spill_design(&self.dir, key, design);
        }
        let mut writer = self.writer.lock().expect("WAL writer poisoned");
        let _ = writer.append(&WalRecord::Admit(*key));
    }

    fn evicted(&self, key: &DesignKey) {
        {
            let mut writer = self.writer.lock().expect("WAL writer poisoned");
            let _ = writer.append(&WalRecord::Evict(*key));
        }
        if self.spill_designs {
            let _ = snapshot::remove_design(&self.dir, key);
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A fresh scratch directory under the OS temp dir, unique per
    /// process and call (parallel test threads never collide).
    pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("pooled-durability-{}-{tag}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::scratch_dir;
    use super::*;
    use pooled_design::DesignKind;

    fn key(seed: u64) -> DesignKey {
        DesignKey { n: 80, m: 24, kind: DesignKind::RandomRegular, c_milli: 500, seed }
    }

    #[test]
    fn journal_then_recover_round_trips_keys_designs_and_stats() {
        let dir = scratch_dir("mod-roundtrip");
        let config = DurabilityConfig::new(&dir);
        let metrics = Arc::new(MetricsRegistry::new());
        let journal = WalJournal::open(&config, Arc::clone(&metrics)).unwrap();
        let keys: Vec<_> = (0..3).map(key).collect();
        for k in &keys {
            journal.admitted(k, &k.sample());
        }
        journal.evicted(&keys[0]);
        let mut stats = EngineStats::zero();
        stats.jobs_completed = 17;
        stats.cache_len = 2; // gauge: must be zeroed in the baseline
        journal.checkpoint(&keys[1..], &stats).unwrap();
        drop(journal);

        let metrics2 = MetricsRegistry::new();
        let rec = recover(&config, &metrics2).unwrap();
        assert_eq!(rec.keys, &keys[1..]);
        assert_eq!(rec.snapshots_loaded, 2);
        assert_eq!(rec.snapshots_rejected, 0);
        assert!(!rec.torn_tail);
        let baseline = rec.stats_baseline();
        assert_eq!(baseline.jobs_completed, 17);
        assert_eq!(baseline.cache_len, 0);
        assert_eq!(metrics2.get(Metric::RecoveryRecordsReplayed), rec.records_replayed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_without_snapshots_still_yields_the_key_set() {
        let dir = scratch_dir("mod-no-spill");
        let mut config = DurabilityConfig::new(&dir);
        config.spill_designs = false;
        let metrics = Arc::new(MetricsRegistry::new());
        let journal = WalJournal::open(&config, Arc::clone(&metrics)).unwrap();
        journal.admitted(&key(9), &key(9).sample());
        drop(journal);
        let rec = recover(&config, &metrics).unwrap();
        assert_eq!(rec.keys, vec![key(9)]);
        assert_eq!(rec.snapshots_loaded, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_empty_directory_recovers_to_the_empty_state() {
        let dir = scratch_dir("mod-empty");
        let metrics = MetricsRegistry::new();
        let rec = recover(&DurabilityConfig::new(dir.join("nothing")), &metrics).unwrap();
        assert!(rec.keys.is_empty());
        assert!(rec.stats.is_none());
        assert_eq!(metrics.get(Metric::RecoveryTornTail), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
