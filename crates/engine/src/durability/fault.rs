//! Deterministic storage-fault injection for crash-consistency tests.
//!
//! The network chaos layer (`cluster::chaos`) rolls its faults from a
//! seed via `mix64` so every failure a test provokes is replayable from
//! one integer. This module extends the same idiom to the durable tier:
//! a [`StorageFault`] is a deterministic function of a seed and a file
//! length, and [`inject`] applies it to bytes already on disk —
//! simulating a crash mid-append (truncated tail), a torn sector
//! (partial write), or media corruption (a flipped bit).
//!
//! Tests drive the sweep: for a range of seeds, copy a healthy WAL
//! directory, inject one fault, recover, and pin that the recovered
//! state is a correct prefix of the log or a clean error — never a
//! wrong design set.

use std::fs;
use std::io;
use std::path::Path;

use pooled_rng::splitmix::mix64;

/// One injectable storage fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// The process died after `n` bytes of the file reached disk:
    /// everything past byte `n` is discarded.
    CrashAfterBytes(u64),
    /// A torn write at the tail: the last `n` bytes are discarded.
    TruncateTail(u64),
    /// Media corruption: flip `bit` of the byte at `offset`.
    BitFlip {
        /// Byte offset of the corrupted byte.
        offset: u64,
        /// Bit index within that byte (0–7).
        bit: u8,
    },
}

impl StorageFault {
    /// Derive the fault for `seed` against a file of `len` bytes. Same
    /// seed, same length → same fault, so a failing sweep case replays
    /// from its seed alone.
    pub fn roll(seed: u64, len: u64) -> Self {
        let span = len.max(1);
        let point = mix64(seed ^ mix64(1)) % span;
        match mix64(seed) % 3 {
            0 => StorageFault::CrashAfterBytes(point),
            1 => StorageFault::TruncateTail(span - point),
            _ => StorageFault::BitFlip { offset: point, bit: (mix64(seed ^ mix64(2)) % 8) as u8 },
        }
    }

    /// Apply the fault to `bytes`, in place.
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        match *self {
            StorageFault::CrashAfterBytes(n) => bytes.truncate(n as usize),
            StorageFault::TruncateTail(n) => {
                let keep = bytes.len().saturating_sub(n as usize);
                bytes.truncate(keep);
            }
            StorageFault::BitFlip { offset, bit } => {
                if let Some(b) = bytes.get_mut(offset as usize) {
                    *b ^= 1 << (bit & 7);
                }
            }
        }
    }
}

/// Read `path`, apply `fault`, write the damaged bytes back.
pub fn inject(path: &Path, fault: &StorageFault) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    fault.apply(&mut bytes);
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::testutil::scratch_dir;

    #[test]
    fn rolls_are_deterministic_and_cover_every_fault_kind() {
        let mut kinds = [false; 3];
        for seed in 0..64 {
            let a = StorageFault::roll(seed, 1000);
            assert_eq!(a, StorageFault::roll(seed, 1000), "seed {seed} not deterministic");
            match a {
                StorageFault::CrashAfterBytes(n) => {
                    assert!(n < 1000);
                    kinds[0] = true;
                }
                StorageFault::TruncateTail(n) => {
                    assert!((1..=1000).contains(&n));
                    kinds[1] = true;
                }
                StorageFault::BitFlip { offset, bit } => {
                    assert!(offset < 1000 && bit < 8);
                    kinds[2] = true;
                }
            }
        }
        assert!(kinds.iter().all(|&k| k), "64 seeds must hit all three fault kinds");
    }

    #[test]
    fn injection_damages_exactly_as_described() {
        let dir = scratch_dir("fault-inject");
        let path = dir.join("victim");
        fs::write(&path, [0u8; 100]).unwrap();
        inject(&path, &StorageFault::CrashAfterBytes(40)).unwrap();
        assert_eq!(fs::read(&path).unwrap().len(), 40);
        inject(&path, &StorageFault::TruncateTail(10)).unwrap();
        assert_eq!(fs::read(&path).unwrap().len(), 30);
        inject(&path, &StorageFault::BitFlip { offset: 7, bit: 3 }).unwrap();
        let bytes = fs::read(&path).unwrap();
        assert_eq!(bytes[7], 1 << 3);
        assert!(bytes.iter().enumerate().all(|(i, &b)| i == 7 || b == 0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_bit_flip_past_the_end_is_a_no_op() {
        let mut bytes = vec![0xAAu8; 4];
        StorageFault::BitFlip { offset: 10, bit: 0 }.apply(&mut bytes);
        assert_eq!(bytes, vec![0xAA; 4]);
    }
}
