//! The write-ahead design log: append-only, length-prefixed,
//! checksummed records of design-cache admissions and evictions.
//!
//! Every record reuses the transport frame idiom (`header ‖ payload ‖
//! checksum`, all fields explicit little-endian bytes, never
//! `unsafe`-transmuted) with a distinct magic byte so a WAL segment can
//! never be confused with a wire stream:
//!
//! ```text
//! offset  size  field
//! 0       1     magic      (0xD6)
//! 1       1     version    (1; any other value is rejected)
//! 2       1     record type (1=ADMIT 2=EVICT 3=STATS)
//! 3       1     reserved   (0)
//! 4       4     payload length, u32 LE (fixed per record type)
//! 8       len   payload
//! 8+len   8     checksum, u64 LE over header ‖ payload
//! ```
//!
//! `ADMIT` / `EVICT` carry a [`DesignKey`] (32 bytes, the PREWARM frame
//! layout: `n:u64, m:u64, seed:u64, c_milli:u32, kind:u8, pad:[u8;3]`).
//! `STATS` carries a full [`EngineStats`] snapshot (the STATS frame
//! payload minus its correlation token) — a checkpoint of the engine's
//! cumulative telemetry, written by the compactor so counters and
//! latency histograms survive a restart.
//!
//! The log is a sequence of segment files `wal-<seq>.log`. Appends go
//! to the highest segment; once it exceeds the rotation threshold a new
//! segment opens. The compactor ([`WalWriter::compact`]) writes a fresh
//! segment holding only a `STATS` checkpoint plus one `ADMIT` per live
//! key, syncs it, and then deletes every older segment — crash-safe in
//! that order: a crash mid-compaction leaves either the old segments
//! (new one torn, replay prefix-stops on it) or both (replay of the old
//! records followed by the compacted live set converges to the same key
//! set, because `ADMIT` is idempotent and `EVICT` of an absent key is a
//! no-op).
//!
//! **Replay is prefix-only.** [`replay_dir`] applies records in segment
//! order and stops at the first torn or corrupt record: in the final
//! segment that is the expected shape of a crash mid-append (the valid
//! prefix is kept, [`WalReplay::torn_tail`] is set); in any earlier
//! segment it means lost history *between* surviving records, so replay
//! refuses with [`WalError::CorruptSegment`] rather than reconstruct a
//! key set no process ever held. Either way the outcome is a correct
//! prefix of the log or a clean error — never a silently wrong key set,
//! because every record is covered by its checksum.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pooled_lab::histogram::{LatencyHistogram, LATENCY_BUCKETS};
use pooled_stats::summary::Summary;

use crate::cache::DesignKey;
use crate::engine::EngineStats;
use crate::telemetry::{Metric, MetricsRegistry};
use crate::transport::frame::checksum;

use pooled_design::factory::DesignKind;

/// First byte of every WAL record.
pub const WAL_MAGIC: u8 = 0xD6;
/// WAL format version this build writes and accepts.
pub const WAL_VERSION: u8 = 1;
/// Fixed record header size (magic, version, type, reserved, length).
pub const RECORD_HEADER_LEN: usize = 8;
/// Trailing checksum size.
pub const RECORD_CHECKSUM_LEN: usize = 8;
/// `ADMIT` / `EVICT` payload size (a [`DesignKey`]).
pub const KEY_PAYLOAD_LEN: usize = 32;
/// `STATS` payload size: 9 scalar words, two 5-word latency summaries,
/// 3 histogram scalars and all [`LATENCY_BUCKETS`] bucket counters.
pub const STATS_PAYLOAD_LEN: usize = (9 + 10 + 3 + LATENCY_BUCKETS) * 8;

const REC_ADMIT: u8 = 1;
const REC_EVICT: u8 = 2;
const REC_STATS: u8 = 3;

/// One write-ahead log record.
///
/// `Stats` dwarfs the key variants (it carries the full latency
/// histogram), but records are transient encode/decode carriers — never
/// stored in bulk — so the size skew costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WalRecord {
    /// A design entered the cache (sampled on a miss, prewarmed, or
    /// rewritten by the compactor as part of the live set).
    Admit(DesignKey),
    /// A design left the cache (LRU eviction).
    Evict(DesignKey),
    /// A checkpoint of the engine's cumulative telemetry.
    Stats(EngineStats),
}

/// Why one record failed to decode (prefix replay stops here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecordError {
    /// Fewer bytes than the record claims — a torn write.
    Truncated,
    /// First byte is not [`WAL_MAGIC`].
    BadMagic(u8),
    /// Unsupported format version.
    BadVersion(u8),
    /// Unknown record type.
    BadType(u8),
    /// The length field disagrees with the record type's fixed size.
    BadLength(u32),
    /// Stored checksum does not match the record bytes.
    BadChecksum,
    /// A payload field holds an unrepresentable value (bad enum code or
    /// an integer that does not fit `usize`).
    BadValue,
}

impl std::fmt::Display for WalRecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalRecordError::Truncated => write!(f, "torn record (truncated)"),
            WalRecordError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02X}"),
            WalRecordError::BadVersion(v) => write!(f, "unsupported WAL version {v}"),
            WalRecordError::BadType(t) => write!(f, "unknown record type {t}"),
            WalRecordError::BadLength(l) => write!(f, "length field {l} contradicts record type"),
            WalRecordError::BadChecksum => write!(f, "checksum mismatch"),
            WalRecordError::BadValue => write!(f, "unrepresentable payload value"),
        }
    }
}

impl std::error::Error for WalRecordError {}

/// Why a whole-log replay failed.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure reading or listing segments.
    Io(io::Error),
    /// A corrupt record strictly before the log's tail: records after it
    /// survived, so the prefix rule cannot name a consistent state.
    /// Recovery refuses cleanly instead of guessing.
    CorruptSegment {
        /// Sequence number of the segment holding the corrupt record.
        segment: u64,
        /// Byte offset of the corrupt record within that segment.
        offset: usize,
        /// What failed to decode there.
        cause: WalRecordError,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::CorruptSegment { segment, offset, cause } => {
                write!(f, "corrupt WAL segment {segment} at byte {offset}: {cause}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn get_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

fn get_usize(bytes: &[u8], at: usize) -> Result<usize, WalRecordError> {
    usize::try_from(get_u64(bytes, at)).map_err(|_| WalRecordError::BadValue)
}

fn kind_code(kind: DesignKind) -> u8 {
    DesignKind::ALL.iter().position(|&k| k == kind).expect("design kind in ALL") as u8
}

fn kind_from_code(code: u8) -> Result<DesignKind, WalRecordError> {
    DesignKind::ALL.get(code as usize).copied().ok_or(WalRecordError::BadValue)
}

fn put_key(buf: &mut Vec<u8>, key: &DesignKey) {
    put_u64(buf, key.n as u64);
    put_u64(buf, key.m as u64);
    put_u64(buf, key.seed);
    put_u32(buf, key.c_milli);
    buf.push(kind_code(key.kind));
    buf.extend_from_slice(&[0u8; 3]); // pad
}

fn get_key(bytes: &[u8], at: usize) -> Result<DesignKey, WalRecordError> {
    Ok(DesignKey {
        n: get_usize(bytes, at)?,
        m: get_usize(bytes, at + 8)?,
        seed: get_u64(bytes, at + 16),
        c_milli: get_u32(bytes, at + 24),
        kind: kind_from_code(bytes[at + 28])?,
    })
}

fn put_summary(buf: &mut Vec<u8>, s: &Summary) {
    let (count, mean, m2, min, max) = s.raw_parts();
    put_u64(buf, count);
    put_u64(buf, mean.to_bits());
    put_u64(buf, m2.to_bits());
    put_u64(buf, min.to_bits());
    put_u64(buf, max.to_bits());
}

fn get_summary(bytes: &[u8], at: usize) -> Summary {
    Summary::from_raw_parts(
        get_u64(bytes, at),
        f64::from_bits(get_u64(bytes, at + 8)),
        f64::from_bits(get_u64(bytes, at + 16)),
        f64::from_bits(get_u64(bytes, at + 24)),
        f64::from_bits(get_u64(bytes, at + 32)),
    )
}

fn put_stats(buf: &mut Vec<u8>, s: &EngineStats) {
    put_u64(buf, s.jobs_completed);
    put_u64(buf, s.jobs_poisoned);
    put_u64(buf, s.exact_recoveries);
    put_u64(buf, s.cache_hits);
    put_u64(buf, s.cache_misses);
    put_u64(buf, s.cache_len as u64);
    put_u64(buf, s.queued_jobs as u64);
    put_u64(buf, s.pending_results as u64);
    put_u64(buf, s.workers as u64);
    put_summary(buf, &s.total_latency);
    put_summary(buf, &s.decode_latency);
    put_u64(buf, s.histogram.count());
    put_u64(buf, s.histogram.sum_micros());
    put_u64(buf, s.histogram.max_micros());
    for &b in s.histogram.bucket_counts() {
        put_u64(buf, b);
    }
}

fn get_stats(bytes: &[u8], at: usize) -> Result<EngineStats, WalRecordError> {
    let mut buckets = [0u64; LATENCY_BUCKETS];
    for (i, b) in buckets.iter_mut().enumerate() {
        *b = get_u64(bytes, at + (22 + i) * 8);
    }
    Ok(EngineStats {
        jobs_completed: get_u64(bytes, at),
        jobs_poisoned: get_u64(bytes, at + 8),
        exact_recoveries: get_u64(bytes, at + 16),
        cache_hits: get_u64(bytes, at + 24),
        cache_misses: get_u64(bytes, at + 32),
        cache_len: get_usize(bytes, at + 40)?,
        queued_jobs: get_usize(bytes, at + 48)?,
        pending_results: get_usize(bytes, at + 56)?,
        workers: get_usize(bytes, at + 64)?,
        total_latency: get_summary(bytes, at + 72),
        decode_latency: get_summary(bytes, at + 112),
        histogram: LatencyHistogram::from_raw_parts(
            buckets,
            get_u64(bytes, at + 152),
            get_u64(bytes, at + 160),
            get_u64(bytes, at + 168),
        ),
    })
}

/// Serialize `record` into `buf` (cleared first; reuse across appends).
pub fn encode_record(record: &WalRecord, buf: &mut Vec<u8>) {
    buf.clear();
    let (rec_type, payload_len) = match record {
        WalRecord::Admit(_) => (REC_ADMIT, KEY_PAYLOAD_LEN),
        WalRecord::Evict(_) => (REC_EVICT, KEY_PAYLOAD_LEN),
        WalRecord::Stats(_) => (REC_STATS, STATS_PAYLOAD_LEN),
    };
    buf.push(WAL_MAGIC);
    buf.push(WAL_VERSION);
    buf.push(rec_type);
    buf.push(0); // reserved
    put_u32(buf, payload_len as u32);
    match record {
        WalRecord::Admit(key) | WalRecord::Evict(key) => put_key(buf, key),
        WalRecord::Stats(stats) => put_stats(buf, stats),
    }
    debug_assert_eq!(buf.len(), RECORD_HEADER_LEN + payload_len);
    let ck = checksum(buf);
    put_u64(buf, ck);
}

/// Parse one record from the front of `bytes`; returns the record and
/// how many bytes it consumed. Magic, version, type, length and
/// checksum are all verified before any payload byte is interpreted —
/// the same order as the wire decoder, so corruption can neither
/// trigger a huge allocation nor desynchronize replay silently.
pub fn decode_record(bytes: &[u8]) -> Result<(WalRecord, usize), WalRecordError> {
    if bytes.len() < RECORD_HEADER_LEN {
        return Err(WalRecordError::Truncated);
    }
    if bytes[0] != WAL_MAGIC {
        return Err(WalRecordError::BadMagic(bytes[0]));
    }
    if bytes[1] != WAL_VERSION {
        return Err(WalRecordError::BadVersion(bytes[1]));
    }
    let rec_type = bytes[2];
    let expected = match rec_type {
        REC_ADMIT | REC_EVICT => KEY_PAYLOAD_LEN,
        REC_STATS => STATS_PAYLOAD_LEN,
        other => return Err(WalRecordError::BadType(other)),
    };
    let claimed = get_u32(bytes, 4);
    if claimed as usize != expected {
        return Err(WalRecordError::BadLength(claimed));
    }
    let total = RECORD_HEADER_LEN + expected + RECORD_CHECKSUM_LEN;
    if bytes.len() < total {
        return Err(WalRecordError::Truncated);
    }
    let body = &bytes[..RECORD_HEADER_LEN + expected];
    if checksum(body) != get_u64(bytes, RECORD_HEADER_LEN + expected) {
        return Err(WalRecordError::BadChecksum);
    }
    let record = match rec_type {
        REC_ADMIT => WalRecord::Admit(get_key(bytes, RECORD_HEADER_LEN)?),
        REC_EVICT => WalRecord::Evict(get_key(bytes, RECORD_HEADER_LEN)?),
        _ => WalRecord::Stats(get_stats(bytes, RECORD_HEADER_LEN)?),
    };
    Ok((record, total))
}

fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:08}.log")
}

/// Every WAL segment in `dir` as `(sequence, path)`, ascending by
/// sequence. Files not matching `wal-<seq>.log` are ignored (design
/// snapshots share the directory).
pub fn segment_paths(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((seq, entry.path()));
    }
    segments.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(segments)
}

/// Outcome of replaying a WAL directory.
#[derive(Clone, Debug)]
pub struct WalReplay {
    /// The live key set after applying every replayed record, in
    /// admission order (oldest first) — feed it to a cache prewarm and
    /// the LRU recency order matches the pre-crash cache.
    pub keys: Vec<DesignKey>,
    /// The newest replayed `STATS` checkpoint, if any.
    pub stats: Option<EngineStats>,
    /// Records successfully applied.
    pub records_replayed: u64,
    /// Whether replay stopped at a torn/corrupt record in the final
    /// segment (the crash-mid-append shape; the valid prefix was kept).
    pub torn_tail: bool,
    /// Segments visited.
    pub segments: u64,
}

/// Replay every segment in `dir` under the prefix rule (module docs).
/// A missing or empty directory replays to the empty state.
pub fn replay_dir(dir: &Path) -> Result<WalReplay, WalError> {
    let segments = match segment_paths(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let mut keys: Vec<DesignKey> = Vec::new();
    let mut stats = None;
    let mut records_replayed = 0u64;
    let mut torn_tail = false;
    let last = segments.len().saturating_sub(1);
    for (i, (seq, path)) in segments.iter().enumerate() {
        let bytes = fs::read(path)?;
        let mut at = 0usize;
        while at < bytes.len() {
            match decode_record(&bytes[at..]) {
                Ok((record, consumed)) => {
                    apply(&mut keys, &mut stats, &record);
                    records_replayed += 1;
                    at += consumed;
                }
                Err(cause) => {
                    if i == last {
                        torn_tail = true;
                        break;
                    }
                    return Err(WalError::CorruptSegment { segment: *seq, offset: at, cause });
                }
            }
        }
    }
    Ok(WalReplay { keys, stats, records_replayed, torn_tail, segments: segments.len() as u64 })
}

fn apply(keys: &mut Vec<DesignKey>, stats: &mut Option<EngineStats>, record: &WalRecord) {
    match record {
        WalRecord::Admit(key) => {
            keys.retain(|k| k != key);
            keys.push(*key);
        }
        WalRecord::Evict(key) => keys.retain(|k| k != key),
        WalRecord::Stats(s) => *stats = Some(*s),
    }
}

/// The appender: owns the highest segment, rotates past the size
/// threshold, and compacts on request. Counts every append, byte and
/// fsync into the engine's [`MetricsRegistry`].
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    seq: u64,
    segment_bytes: u64,
    segment_max_bytes: u64,
    fsync: bool,
    metrics: Arc<MetricsRegistry>,
    buf: Vec<u8>,
}

impl WalWriter {
    /// Open `dir` for appending: the next segment after the highest
    /// existing one (existing segments are never appended to — their
    /// tail may be torn, and replay handles that; new records must not
    /// land after a torn record).
    pub fn open(
        dir: &Path,
        segment_max_bytes: u64,
        fsync: bool,
        metrics: Arc<MetricsRegistry>,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        let next_seq = segment_paths(dir)?.last().map_or(0, |&(seq, _)| seq + 1);
        let file = File::create(dir.join(segment_file_name(next_seq)))?;
        Ok(Self {
            dir: dir.to_path_buf(),
            file,
            seq: next_seq,
            segment_bytes: 0,
            segment_max_bytes: segment_max_bytes.max(1),
            fsync,
            metrics,
            buf: Vec::with_capacity(RECORD_HEADER_LEN + STATS_PAYLOAD_LEN + RECORD_CHECKSUM_LEN),
        })
    }

    /// Sequence number of the segment currently being appended to.
    pub fn current_segment(&self) -> u64 {
        self.seq
    }

    /// Append one record, rotating first if the current segment is past
    /// the size threshold.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        let mut buf = std::mem::take(&mut self.buf);
        encode_record(record, &mut buf);
        if self.segment_bytes > 0 && self.segment_bytes + buf.len() as u64 > self.segment_max_bytes
        {
            self.rotate()?;
        }
        let outcome = self.file.write_all(&buf);
        let len = buf.len() as u64;
        self.buf = buf;
        outcome?;
        self.segment_bytes += len;
        self.metrics.inc(Metric::WalAppends);
        self.metrics.add(Metric::WalBytes, len);
        if self.fsync {
            self.sync()?;
        }
        Ok(())
    }

    /// Force the current segment to disk (counted as one fsync).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.metrics.inc(Metric::WalFsyncs);
        Ok(())
    }

    /// Finish the current segment and open the next one.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.metrics.inc(Metric::WalFsyncs);
        self.seq += 1;
        self.file = File::create(self.dir.join(segment_file_name(self.seq)))?;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Compact: write a fresh segment holding `stats` (when given) plus
    /// one `ADMIT` per live key, sync it, then delete every older
    /// segment. After this the log's replayable state is exactly
    /// `(live, stats)` — the segment/compaction lifecycle in the module
    /// docs.
    pub fn compact(&mut self, live: &[DesignKey], stats: Option<&EngineStats>) -> io::Result<()> {
        self.rotate()?;
        if let Some(stats) = stats {
            self.append(&WalRecord::Stats(*stats))?;
        }
        for key in live {
            self.append(&WalRecord::Admit(*key))?;
        }
        // Durability point: the new segment must be on disk before any
        // old segment disappears, or a crash here could lose both.
        self.sync()?;
        for (seq, path) in segment_paths(&self.dir)? {
            if seq < self.seq {
                fs::remove_file(path)?;
            }
        }
        self.metrics.inc(Metric::WalSegmentsCompacted);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::testutil::scratch_dir;

    fn key(seed: u64) -> DesignKey {
        DesignKey { n: 120, m: 40, kind: DesignKind::RandomRegular, c_milli: 500, seed }
    }

    fn registry() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    #[test]
    fn records_round_trip() {
        let mut buf = Vec::new();
        for record in [
            WalRecord::Admit(key(7)),
            WalRecord::Evict(key(9)),
            WalRecord::Stats(EngineStats::zero()),
        ] {
            encode_record(&record, &mut buf);
            let (decoded, consumed) = decode_record(&buf).expect("valid record");
            assert_eq!(decoded, record);
            assert_eq!(consumed, buf.len());
        }
    }

    #[test]
    fn append_and_replay_recover_the_live_set_in_admission_order() {
        let dir = scratch_dir("wal-replay");
        let metrics = registry();
        let mut w = WalWriter::open(&dir, 1 << 20, false, Arc::clone(&metrics)).unwrap();
        for s in 0..4 {
            w.append(&WalRecord::Admit(key(s))).unwrap();
        }
        w.append(&WalRecord::Evict(key(1))).unwrap();
        w.append(&WalRecord::Admit(key(0))).unwrap(); // refresh: moves to back
        drop(w);
        let replay = replay_dir(&dir).unwrap();
        assert_eq!(replay.records_replayed, 6);
        assert!(!replay.torn_tail);
        assert_eq!(replay.keys, vec![key(2), key(3), key(0)]);
        assert_eq!(metrics.get(Metric::WalAppends), 6);
        assert!(metrics.get(Metric::WalBytes) > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = scratch_dir("wal-rotate");
        // Threshold of one record: every append after the first rotates.
        let record_len = RECORD_HEADER_LEN + KEY_PAYLOAD_LEN + RECORD_CHECKSUM_LEN;
        let mut w = WalWriter::open(&dir, record_len as u64, false, registry()).unwrap();
        for s in 0..5 {
            w.append(&WalRecord::Admit(key(s))).unwrap();
        }
        drop(w);
        assert!(segment_paths(&dir).unwrap().len() >= 5);
        let replay = replay_dir(&dir).unwrap();
        assert_eq!(replay.keys.len(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_rewrites_the_live_set_only_and_deletes_old_segments() {
        let dir = scratch_dir("wal-compact");
        let metrics = registry();
        let mut w = WalWriter::open(&dir, 1 << 20, false, Arc::clone(&metrics)).unwrap();
        for s in 0..8 {
            w.append(&WalRecord::Admit(key(s))).unwrap();
            if s % 2 == 0 {
                w.append(&WalRecord::Evict(key(s))).unwrap();
            }
        }
        let live = vec![key(1), key(3), key(5), key(7)];
        let mut stats = EngineStats::zero();
        stats.jobs_completed = 99;
        w.compact(&live, Some(&stats)).unwrap();
        drop(w);
        let segments = segment_paths(&dir).unwrap();
        assert_eq!(segments.len(), 1, "older segments must be deleted");
        let replay = replay_dir(&dir).unwrap();
        assert_eq!(replay.keys, live);
        assert_eq!(replay.stats.unwrap().jobs_completed, 99);
        assert_eq!(replay.records_replayed, 1 + 4);
        assert_eq!(metrics.get(Metric::WalSegmentsCompacted), 1);
        assert!(metrics.get(Metric::WalFsyncs) >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_tail_keeps_the_valid_prefix() {
        let dir = scratch_dir("wal-torn");
        let mut w = WalWriter::open(&dir, 1 << 20, false, registry()).unwrap();
        for s in 0..3 {
            w.append(&WalRecord::Admit(key(s))).unwrap();
        }
        drop(w);
        let (_, path) = segment_paths(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 5); // tear the last record
        fs::write(&path, bytes).unwrap();
        let replay = replay_dir(&dir).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.keys, vec![key(0), key(1)]);
        assert_eq!(replay.records_replayed, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_before_the_final_segment_is_a_clean_error() {
        let dir = scratch_dir("wal-corrupt-mid");
        let record_len = (RECORD_HEADER_LEN + KEY_PAYLOAD_LEN + RECORD_CHECKSUM_LEN) as u64;
        let mut w = WalWriter::open(&dir, record_len, false, registry()).unwrap();
        for s in 0..4 {
            w.append(&WalRecord::Admit(key(s))).unwrap();
        }
        drop(w);
        let segments = segment_paths(&dir).unwrap();
        assert!(segments.len() >= 3);
        // Flip a bit in the *first* segment: surviving later segments
        // make the prefix rule unsatisfiable, so replay must refuse.
        let (_, first) = &segments[0];
        let mut bytes = fs::read(first).unwrap();
        bytes[10] ^= 0x40;
        fs::write(first, bytes).unwrap();
        match replay_dir(&dir) {
            Err(WalError::CorruptSegment { cause, .. }) => {
                assert_eq!(cause, WalRecordError::BadChecksum);
            }
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_empty_or_missing_dir_replays_to_the_empty_state() {
        let dir = scratch_dir("wal-missing");
        let replay = replay_dir(&dir.join("never-created")).unwrap();
        assert!(replay.keys.is_empty());
        assert_eq!(replay.records_replayed, 0);
        assert!(!replay.torn_tail);
        let _ = fs::remove_dir_all(&dir);
    }
}
