#![warn(missing_docs)]

//! `pooled_engine` — a sharded, batched reconstruction **service engine**.
//!
//! The paper's premise is that queries dominate reconstruction time, so a
//! production system must organize decoding around *throughput*: many
//! reconstruction jobs in flight, worker shards that overlap the slow
//! query-execution stage, and no per-job setup cost on the hot path. This
//! crate is that serving layer over the workspace's decode kernels:
//!
//! * [`job`] — `Copy` wire types: [`job::JobSpec`] in,
//!   [`job::JobResult`] out, with compact result digests so bit-exact
//!   determinism is checkable across worker counts.
//! * [`queue`] — bounded MPMC queues; a full submission queue *blocks the
//!   submitter* (backpressure) instead of growing memory.
//! * [`cache`] — the LRU design cache: repeated traffic never regenerates
//!   pooling designs, bounded by the same policy as the thread-pool memo.
//! * [`registry`] — every decoder (classic MN, Γ-general MN,
//!   threshold-MN, and the baseline family) behind one trait object.
//! * [`worker`] — per-shard scratch reuse; the MN paths serve jobs with
//!   **zero heap allocations** after warm-up (`tests/alloc_free.rs`).
//! * [`engine`] — the shards themselves: graceful shutdown, per-job
//!   latency/throughput telemetry ([`pooled_stats::summary::Summary`] +
//!   [`pooled_lab::histogram::LatencyHistogram`]).
//! * [`telemetry`] — the observability plane: a lock-free
//!   [`telemetry::MetricsRegistry`] of named counters, per-job
//!   [`telemetry::JobTrace`] span timelines under a sampling knob, the
//!   bounded [`telemetry::FlightRecorder`] (trace + causal rings,
//!   JSON-dumpable), and Prometheus/JSON exposition renderers — all
//!   zero-allocation on the serving hot path and fingerprint-invisible
//!   at any sampling rate.
//! * [`traffic`] — deterministic load profiles and Poisson arrivals for
//!   the `engine_load` generator and the throughput benches.
//! * [`transport`] — the TCP front: length-prefixed checksummed frames,
//!   a readiness-driven event-loop server multiplexing every connection
//!   over a few `poll(2)` threads (backpressure = explicit `BUSY`
//!   frames), and a pipelined client whose results are bit-identical to
//!   in-process submission.
//! * [`cluster`] — the multi-node tier: the [`cluster::NodeHandle`]
//!   abstraction over "a place jobs run" (in-process engine or remote
//!   engine over the frame protocol), rendezvous-hashed
//!   `DesignKey → node` placement with top-2 warm-standby assignment,
//!   and a router with per-node in-flight windows, BUSY-aware retry, a
//!   draining rebalance step (add/remove), health-checked failover
//!   that re-routes a dead node's jobs to prewarmed survivors, and a
//!   deterministic fault-injection wrapper ([`cluster::ChaosNode`])
//!   for testing all of it.
//! * [`durability`] — the durable tier: a checksummed write-ahead
//!   design log with segment rotation and compaction, disk-spilled
//!   design snapshots, crash recovery
//!   ([`engine::Engine::start_durable`] replays the WAL prefix and
//!   reaches full warmth *before* accepting traffic), persisted
//!   engine stats/histograms, and deterministic storage-fault
//!   injection ([`durability::fault::StorageFault`]) pinning the
//!   invariant: a correct prefix of the log or a clean error — never
//!   a wrong design.
//!
//! ```
//! use pooled_engine::engine::{Engine, EngineConfig};
//! use pooled_engine::traffic::LoadProfile;
//!
//! let profile = LoadProfile { query_cost: None, ..LoadProfile::default_mix(400, 5, 200, 7) };
//! let engine = Engine::start(EngineConfig::with_workers(2));
//! let mut results = Vec::new();
//! engine.run_batch(&profile.specs(16), &mut results);
//! assert_eq!(results.len(), 16);
//! let stats = engine.shutdown();
//! assert_eq!(stats.jobs_completed, 16);
//! ```

pub mod cache;
pub mod cluster;
pub mod durability;
pub mod engine;
pub mod job;
pub mod queue;
pub mod registry;
pub mod telemetry;
pub mod traffic;
pub mod transport;
pub mod worker;

pub use cache::{DesignCache, DesignKey};
pub use cluster::{FailoverConfig, LocalNode, Membership, NodeHandle, RemoteNode, Router};
pub use durability::{DesignJournal, DurabilityConfig, Recovery, WalJournal};
pub use engine::{Engine, EngineConfig, EngineStats, ResultRoute, RouteWaker};
pub use job::{DecoderKind, DesignSpec, JobResult, JobSpec};
pub use queue::BoundedQueue;
pub use registry::{decoder, DecodeScratch, EngineDecoder};
pub use telemetry::{
    render_json, render_prometheus, FlightRecorder, JobTrace, Metric, MetricsRegistry,
    MetricsSnapshot, TelemetryConfig,
};
pub use traffic::{poisson_arrivals, LoadProfile, PreparedProfile};
pub use transport::{TransportClient, TransportConfig, TransportServer};
