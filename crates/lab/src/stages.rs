//! Multi-round (partially adaptive) designs and the queries-vs-makespan
//! trade-off of the paper's open-problems section.
//!
//! A *stage plan* splits the query budget into rounds; queries within a
//! round run on the `L` available units, and a round can only start after
//! the previous one finished (its design may depend on earlier results).
//! Three canonical plans:
//!
//! * **fully parallel** — one round of `m_para ≈ 2·m_seq` queries
//!   (Theorem 2: parallel designs pay a factor 2 in queries);
//! * **fully sequential** — `m_seq` rounds of one query each (Bshouty's
//!   regime: information-optimal query count, maximal wall time);
//! * **batched** — `r` rounds of `m_r` queries; interpolates between them.

use pooled_rng::SeedSequence;

use crate::latency::LatencyModel;
use crate::scheduler::schedule;

/// Makespan of a staged plan on `units` parallel units.
///
/// `stage_sizes[r]` is the number of queries in round `r`; rounds are
/// serialized, queries inside a round are scheduled greedily.
///
/// # Panics
/// Panics if `units == 0`.
pub fn stage_plan_makespan(
    stage_sizes: &[usize],
    units: usize,
    latency: &LatencyModel,
    seeds: &SeedSequence,
) -> f64 {
    assert!(units > 0, "need at least one processing unit");
    let mut total = 0.0;
    for (r, &size) in stage_sizes.iter().enumerate() {
        let durations = latency.sample_many(size, &seeds.child("stage", r as u64));
        total += schedule(&durations, units).makespan;
    }
    total
}

/// One point on the queries-vs-makespan Pareto curve.
#[derive(Clone, Copy, Debug)]
pub struct TradeoffPoint {
    /// Number of rounds in the plan.
    pub rounds: usize,
    /// Total queries spent.
    pub queries: usize,
    /// Simulated wall-clock makespan.
    pub makespan: f64,
}

/// Build the canonical trade-off curve between the fully parallel design
/// (`m_para` queries, 1 round) and the sequential design (`m_seq` queries,
/// `m_seq` rounds), interpolating the query cost linearly in the number of
/// rounds on a log grid.
///
/// The interpolation reflects the theory: with `r` adaptive rounds the
/// required query count falls from `2·m_seq` (r = 1, Theorem 2) toward
/// `m_seq` (fully adaptive, Bshouty) — we model the intermediate regime as
/// `m(r) = m_seq·(1 + 1/r)`, the standard multi-stage bound shape.
pub fn tradeoff_curve(
    m_seq: usize,
    units: usize,
    latency: &LatencyModel,
    seeds: &SeedSequence,
) -> Vec<TradeoffPoint> {
    assert!(m_seq > 0, "sequential query count must be positive");
    let mut points = Vec::new();
    let mut r = 1usize;
    while r <= m_seq {
        let queries = (m_seq as f64 * (1.0 + 1.0 / r as f64)).ceil() as usize;
        // Spread queries as evenly as possible over the rounds.
        let base = queries / r;
        let extra = queries % r;
        let sizes: Vec<usize> = (0..r).map(|i| base + usize::from(i < extra)).collect();
        let makespan = stage_plan_makespan(&sizes, units, latency, &seeds.child("plan", r as u64));
        points.push(TradeoffPoint { rounds: r, queries, makespan });
        r *= 2;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_round_equals_plain_schedule() {
        let seeds = SeedSequence::new(1);
        let lat = LatencyModel::Fixed(1.0);
        // 10 queries, 4 units, fixed latency 1 ⇒ ⌈10/4⌉ = 3 time units.
        let ms = stage_plan_makespan(&[10], 4, &lat, &seeds);
        assert_eq!(ms, 3.0);
    }

    #[test]
    fn rounds_serialize() {
        let seeds = SeedSequence::new(2);
        let lat = LatencyModel::Fixed(2.0);
        // Two rounds of 4 queries on 4 units: 2 + 2.
        let ms = stage_plan_makespan(&[4, 4], 4, &lat, &seeds);
        assert_eq!(ms, 4.0);
        // Same queries in one round: also 4 (2 waves)… but with 8 units: 2.
        assert_eq!(stage_plan_makespan(&[8], 8, &lat, &seeds), 2.0);
    }

    #[test]
    fn tradeoff_curve_shape() {
        let seeds = SeedSequence::new(3);
        let lat = LatencyModel::Fixed(1.0);
        let m_seq = 64;
        let units = 1024; // unit-rich: round count dominates makespan
        let curve = tradeoff_curve(m_seq, units, &lat, &seeds);
        // More rounds ⇒ fewer queries but longer makespan.
        for w in curve.windows(2) {
            assert!(w[1].queries <= w[0].queries, "queries should fall");
            assert!(w[1].makespan >= w[0].makespan, "makespan should rise");
        }
        // End points: 1 round costs 2·m_seq queries; last point ≈ m_seq.
        assert_eq!(curve[0].rounds, 1);
        assert_eq!(curve[0].queries, 2 * m_seq);
        let last = curve.last().unwrap();
        assert!(last.queries <= m_seq + m_seq / 16 + 1);
    }

    #[test]
    fn unit_starved_plans_balance() {
        // With L=1 the makespan equals total queries (fixed latency 1).
        let seeds = SeedSequence::new(4);
        let lat = LatencyModel::Fixed(1.0);
        let curve = tradeoff_curve(16, 1, &lat, &seeds);
        for p in &curve {
            assert!((p.makespan - p.queries as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let lat = LatencyModel::Uniform { lo: 0.5, hi: 1.5 };
        let a = stage_plan_makespan(&[20, 20], 4, &lat, &SeedSequence::new(5));
        let b = stage_plan_makespan(&[20, 20], 4, &lat, &SeedSequence::new(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn empty_mseq_rejected() {
        let _ = tradeoff_curve(0, 1, &LatencyModel::Fixed(1.0), &SeedSequence::new(6));
    }
}
