//! Where did the latency go? Queue wait vs service vs wire.
//!
//! In-process telemetry sees two components of a job's sojourn: time in
//! the submission queue (`queue_micros`) and the worker's service time
//! (the rest of `total_micros`). A remote tenant observes a *third*
//! component the engine cannot see — socket wait: serialization, kernel
//! buffers, the wire, and time a finished result spends behind the
//! connection's writer. [`LatencySplit`] holds one histogram per
//! component so a transport replay can answer "is the tail in the queue
//! or on the socket?" — the question that decides whether to add worker
//! shards or connections.

use crate::histogram::LatencyHistogram;

/// Three-way latency breakdown: queue wait, service, wire/socket wait.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySplit {
    /// Time waiting in the engine's submission queue.
    pub queue: LatencyHistogram,
    /// Worker service time (query execution + decode).
    pub service: LatencyHistogram,
    /// Everything the engine cannot see: framing, kernel buffers, the
    /// wire, and the wait behind the connection's writer thread.
    pub wire: LatencyHistogram,
}

impl LatencySplit {
    /// An empty split.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one job from its engine-reported timings plus the
    /// client-observed sojourn (submit → result arrival), all in
    /// microseconds. `service` is `total - queue`; `wire` is
    /// `observed - total`. Both clamp at zero: the engine's clock and
    /// the client's clock are different `Instant`s, so a fast result can
    /// arrive "before" the server finished by a few microseconds.
    pub fn record_observed(&mut self, queue_micros: u64, total_micros: u64, observed_micros: u64) {
        self.queue.record_micros(queue_micros);
        self.service.record_micros(total_micros.saturating_sub(queue_micros));
        self.wire.record_micros(observed_micros.saturating_sub(total_micros));
    }

    /// Number of jobs recorded.
    pub fn count(&self) -> u64 {
        self.queue.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_partition_the_observed_sojourn() {
        let mut s = LatencySplit::new();
        // queue 100, service 900 (total 1000), wire 250 (observed 1250).
        s.record_observed(100, 1_000, 1_250);
        assert_eq!(s.count(), 1);
        assert_eq!(s.queue.max_micros(), 100);
        assert_eq!(s.service.max_micros(), 900);
        assert_eq!(s.wire.max_micros(), 250);
    }

    #[test]
    fn clock_skew_clamps_to_zero_instead_of_underflowing() {
        let mut s = LatencySplit::new();
        // Observed sojourn smaller than the server's total (two different
        // monotonic clocks): wire clamps to 0, nothing wraps.
        s.record_observed(50, 1_000, 990);
        assert_eq!(s.wire.max_micros(), 0);
        // Total smaller than queue (can't happen from a sane engine, but
        // the type must not wrap on hostile inputs either).
        s.record_observed(2_000, 1_000, 3_000);
        assert_eq!(s.service.max_micros(), 950, "the wrapped record clamps to 0");
        assert_eq!(s.count(), 2);
    }
}
