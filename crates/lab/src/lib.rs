#![warn(missing_docs)]

//! Discrete-event simulation of query execution in a laboratory.
//!
//! The paper's motivation (§I) is that *performing queries dominates
//! reconstruction time*: queries are wet-lab measurements (liquid-handling
//! robots, PCR runs) or GPU inference batches, so the design executes all of
//! them in parallel. Its open-problems section (§VI) asks about *partially
//! parallelizable* designs with `L` processing units. This crate provides
//! the machinery to study both questions quantitatively:
//!
//! * [`latency`] — per-query duration models (fixed, uniform, log-normal).
//! * [`histogram`] — allocation-free log₂-bucketed latency histograms for
//!   serving telemetry (the reconstruction engine records one per job).
//! * [`split`] — queue-wait vs service vs socket-wait breakdown for
//!   remote tenants (the TCP transport's replay telemetry).
//! * [`event`] — a tiny deterministic discrete-event queue.
//! * [`scheduler`] — greedy list scheduling of `m` queries on `L` units,
//!   with makespan and utilization accounting.
//! * [`stages`] — multi-round plans: compare the fully-parallel design
//!   (2× the queries of a sequential design, 1 round) against sequential
//!   and `L`-batched alternatives end to end.

pub mod event;
pub mod histogram;
pub mod latency;
pub mod scheduler;
pub mod split;
pub mod stages;

pub use histogram::LatencyHistogram;
pub use latency::LatencyModel;
pub use scheduler::{schedule, ScheduleReport};
pub use split::LatencySplit;
pub use stages::{stage_plan_makespan, TradeoffPoint};
