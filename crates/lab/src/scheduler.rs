//! Greedy list scheduling of queries on `L` parallel processing units.
//!
//! Queries are non-preemptive jobs with known durations; we assign each, in
//! submission order, to the unit that frees up first (the classic Graham
//! list schedule, a 2-approximation of optimal makespan). The event queue
//! drives the simulation so the same engine can later host adaptive stages.

use crate::event::EventQueue;

/// Outcome of scheduling one batch of queries.
#[derive(Clone, Debug)]
pub struct ScheduleReport {
    /// Total wall-clock time until the last query finishes.
    pub makespan: f64,
    /// Per-unit busy time.
    pub busy: Vec<f64>,
    /// Start time of each query, in submission order.
    pub starts: Vec<f64>,
}

impl ScheduleReport {
    /// Mean unit utilization in `[0, 1]` (busy time / makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        self.busy.iter().sum::<f64>() / (self.makespan * self.busy.len() as f64)
    }
}

/// Schedule `durations` on `units` parallel units, FIFO.
///
/// # Panics
/// Panics if `units == 0` or any duration is non-positive/NaN.
pub fn schedule(durations: &[f64], units: usize) -> ScheduleReport {
    assert!(units > 0, "need at least one processing unit");
    for (q, &d) in durations.iter().enumerate() {
        assert!(d > 0.0 && d.is_finite(), "query {q} has invalid duration {d}");
    }
    // Event queue holds unit-free events: (time, unit id).
    let mut free = EventQueue::new();
    for u in 0..units {
        free.push(0.0, u);
    }
    let mut busy = vec![0.0; units];
    let mut starts = Vec::with_capacity(durations.len());
    let mut makespan = 0.0f64;
    for &d in durations {
        let (t, unit) = free.pop().expect("unit pool never empties");
        starts.push(t);
        let finish = t + d;
        busy[unit] += d;
        makespan = makespan.max(finish);
        free.push(finish, unit);
    }
    ScheduleReport { makespan, busy, starts }
}

/// Classic lower bound on any schedule: `max(Σd/L, max d)`.
pub fn makespan_lower_bound(durations: &[f64], units: usize) -> f64 {
    let total: f64 = durations.iter().sum();
    let longest = durations.iter().cloned().fold(0.0, f64::max);
    (total / units as f64).max(longest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_is_sequential_sum() {
        let d = [1.0, 2.0, 3.0];
        let r = schedule(&d, 1);
        assert_eq!(r.makespan, 6.0);
        assert_eq!(r.starts, vec![0.0, 1.0, 3.0]);
        assert!((r.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enough_units_is_fully_parallel() {
        let d = [1.0, 5.0, 2.0];
        let r = schedule(&d, 3);
        assert_eq!(r.makespan, 5.0);
        assert!(r.starts.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn two_units_interleave() {
        // Jobs 3,3,3 on 2 units: makespan 6 (3+3 on one unit).
        let r = schedule(&[3.0, 3.0, 3.0], 2);
        assert_eq!(r.makespan, 6.0);
    }

    #[test]
    fn graham_bound_holds() {
        // List schedule ≤ 2·LB, and ≥ LB.
        let durations: Vec<f64> = (0..200).map(|i| 0.5 + ((i * 37) % 11) as f64).collect();
        for units in [1usize, 2, 4, 7, 16] {
            let r = schedule(&durations, units);
            let lb = makespan_lower_bound(&durations, units);
            assert!(r.makespan >= lb - 1e-9, "units={units}");
            assert!(r.makespan <= 2.0 * lb + 1e-9, "units={units}");
        }
    }

    #[test]
    fn busy_times_sum_to_total_work() {
        let durations = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = schedule(&durations, 3);
        let total: f64 = r.busy.iter().sum();
        assert!((total - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_job_list() {
        let r = schedule(&[], 4);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_units_rejected() {
        let _ = schedule(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        let _ = schedule(&[1.0, -2.0], 2);
    }
}
