//! Fixed-footprint latency histograms for serving telemetry.
//!
//! The reconstruction engine records one latency observation per job on
//! its hot path, so the recorder must be allocation-free and O(1): a
//! power-of-two bucketing over microseconds (bucket `i` covers
//! `[2^i, 2^{i+1})` µs, bucket 0 covers `[0, 2)` µs) in a fixed 64-slot
//! array. Quantiles come back as the upper edge of the covering bucket —
//! at most 2× off, which is the right fidelity for p50/p95/p99 dashboards
//! and costs nothing to maintain. Exact moments live in
//! `pooled_stats::summary::Summary`; this type complements it with tail
//! shape.

/// Number of power-of-two buckets; covers the whole `u64` microsecond range.
pub const LATENCY_BUCKETS: usize = 64;

/// An allocation-free log₂-bucketed histogram of microsecond latencies.
#[derive(Clone, Copy, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; LATENCY_BUCKETS], count: 0, sum_micros: 0, max_micros: 0 }
    }

    /// Record one observation in microseconds. O(1), no allocation.
    pub fn record_micros(&mut self, micros: u64) {
        self.buckets[bucket_of(micros)] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Record one observation in seconds (duration models and
    /// `Instant::elapsed` both speak seconds).
    pub fn record_secs(&mut self, secs: f64) {
        assert!(secs >= 0.0 && secs.is_finite(), "latency must be a finite non-negative time");
        self.record_micros((secs * 1e6).round() as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Largest recorded observation in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Upper edge of the bucket containing the `q`-quantile (conservative:
    /// the true quantile is at most this, within the bucket's 2× width).
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q ∉ [0, 1]`.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        assert!(self.count > 0, "quantile of an empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max_micros);
            }
        }
        self.max_micros
    }

    /// Fold another histogram into this one (parallel-reduction support:
    /// per-worker histograms merge into the engine-wide view).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// Bucket index of a microsecond value: `floor(log2(max(v, 1)))`.
fn bucket_of(micros: u64) -> usize {
    (63 - micros.max(1).leading_zeros()) as usize
}

/// Exclusive upper edge of bucket `i`, saturating at `u64::MAX`.
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn quantiles_bound_the_truth_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 200, 300, 400, 1000, 2000, 4000, 50_000] {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 8);
        // p50 falls in the bucket of 300–400 ([256, 512)); upper edge 511.
        let p50 = h.quantile_micros(0.5);
        assert!((400..=511).contains(&p50), "p50={p50}");
        // The max is exact.
        assert_eq!(h.quantile_micros(1.0), 50_000);
        assert_eq!(h.max_micros(), 50_000);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record_micros(v);
        }
        assert_eq!(h.mean_micros(), 20.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<u64> = (0..500).map(|i| (i * 37) % 10_000).collect();
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record_micros(v);
            if i < 200 {
                left.record_micros(v)
            } else {
                right.record_micros(v)
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.mean_micros(), whole.mean_micros());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile_micros(q), whole.quantile_micros(q));
        }
    }

    #[test]
    fn record_secs_converts_to_micros() {
        let mut h = LatencyHistogram::new();
        h.record_secs(0.002); // 2 ms
        assert_eq!(h.max_micros(), 2000);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let _ = LatencyHistogram::new().quantile_micros(0.5);
    }
}
