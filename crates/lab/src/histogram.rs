//! Fixed-footprint latency histograms for serving telemetry.
//!
//! The reconstruction engine records one latency observation per job on
//! its hot path, so the recorder must be allocation-free and O(1). The
//! original layout was one bucket per power of two, which made quantiles
//! up to 2× off — and, worse, collapsed them entirely under realistic
//! serving load: an open-loop replay whose sojourn times all landed
//! between 32 ms and 64 ms reported p50 = p95 = p99, because a single
//! octave held every observation.
//!
//! The layout here keeps the log₂ octaves but splits each one into
//! [`SUB_BUCKETS`] linear sub-buckets (HDR-histogram style): values below
//! [`SUB_BUCKETS`] are recorded exactly, and every larger bucket spans at
//! most `1/SUB_BUCKETS` (6.25%) of its value — so quantiles over any
//! realistic spread of sojourn times are distinct and within ~6% of the
//! truth, while the whole histogram stays a fixed array of
//! [`LATENCY_BUCKETS`] counters with O(1) bit-twiddling per record.
//! Exact moments live in `pooled_stats::summary::Summary`; this type
//! complements it with tail shape.

/// Linear sub-buckets per log₂ octave (16 ⇒ ≤ 6.25% relative bucket
/// width everywhere).
pub const SUB_BUCKETS: usize = 16;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Total bucket count; covers the whole `u64` microsecond range at
/// `1/SUB_BUCKETS` resolution.
pub const LATENCY_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// An allocation-free log₂-octave × linear-sub-bucket histogram of
/// microsecond latencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; LATENCY_BUCKETS], count: 0, sum_micros: 0, max_micros: 0 }
    }

    /// Record one observation in microseconds. O(1), no allocation.
    pub fn record_micros(&mut self, micros: u64) {
        self.record_micros_n(micros, 1);
    }

    /// Record `n` identical observations in O(1) (pre-binned sources,
    /// weighted recording, and the saturation regression tests). All
    /// counters saturate at `u64::MAX` instead of wrapping.
    pub fn record_micros_n(&mut self, micros: u64, n: u64) {
        if n == 0 {
            return;
        }
        let b = &mut self.buckets[bucket_of(micros)];
        *b = b.saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum_micros = self.sum_micros.saturating_add(micros.saturating_mul(n));
        self.max_micros = self.max_micros.max(micros);
    }

    /// Record one observation in seconds (duration models and
    /// `Instant::elapsed` both speak seconds).
    pub fn record_secs(&mut self, secs: f64) {
        assert!(secs >= 0.0 && secs.is_finite(), "latency must be a finite non-negative time");
        self.record_micros((secs * 1e6).round() as u64);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Largest recorded observation in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Upper edge of the bucket containing the `q`-quantile (conservative:
    /// the true quantile is at most this, within the bucket's ≤ 6.25%
    /// relative width).
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q ∉ [0, 1]`.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        assert!(self.count > 0, "quantile of an empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max_micros);
            }
        }
        self.max_micros
    }

    /// Sum of all recorded observations in microseconds (saturating).
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    /// The raw bucket counters, index-aligned with the fixed
    /// log₂-octave × sub-bucket layout — for wire encodings and
    /// Prometheus-style exposition that must transport the histogram
    /// losslessly.
    pub fn bucket_counts(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Inclusive upper edge in microseconds of bucket `i` (saturating at
    /// `u64::MAX`) — pairs with [`Self::bucket_counts`] so an exporter
    /// can render cumulative `le` buckets without knowing the layout.
    ///
    /// # Panics
    /// Panics if `i >= LATENCY_BUCKETS`.
    pub fn bucket_upper_micros(i: usize) -> u64 {
        assert!(i < LATENCY_BUCKETS, "bucket index {i} out of range");
        bucket_upper(i)
    }

    /// Rebuild a histogram from raw parts (wire decode); the exact
    /// inverse of reading [`Self::bucket_counts`], [`Self::count`],
    /// [`Self::sum_micros`] and [`Self::max_micros`].
    pub fn from_raw_parts(
        buckets: [u64; LATENCY_BUCKETS],
        count: u64,
        sum_micros: u64,
        max_micros: u64,
    ) -> Self {
        Self { buckets, count, sum_micros, max_micros }
    }

    /// Fold another histogram into this one (parallel-reduction support:
    /// per-worker histograms merge into the engine-wide view).
    ///
    /// Every accumulator saturates at `u64::MAX`. `sum_micros` always did,
    /// but `count` and the bucket counters used to wrap (panic in debug),
    /// so merging long-lived per-worker histograms near the top of the
    /// range could report fewer observations than either input — quantile
    /// ranks computed from a wrapped `count` were garbage.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

/// Bucket index of a microsecond value: values below [`SUB_BUCKETS`] map
/// to themselves (exact); above, the octave picks the bucket group and
/// the top [`SUB_BITS`] mantissa bits below the leading one pick the
/// linear sub-bucket within it.
fn bucket_of(micros: u64) -> usize {
    if micros < SUB_BUCKETS as u64 {
        return micros as usize;
    }
    let octave = 63 - micros.leading_zeros(); // ≥ SUB_BITS here
    let group = (octave - SUB_BITS + 1) as usize;
    let sub = ((micros >> (octave - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    group * SUB_BUCKETS + sub
}

/// Largest value mapping to bucket `i` (inclusive upper edge), saturating
/// at `u64::MAX`.
fn bucket_upper(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let group = (i / SUB_BUCKETS) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    let shift = group - 1;
    if shift + SUB_BITS >= 64 {
        return u64::MAX;
    }
    let base = (SUB_BUCKETS as u64 + sub) << shift;
    base + ((1u64 << shift) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn buckets_partition_the_range() {
        // Bucket indices are monotone in the value and every bucket's
        // upper edge maps back into the bucket.
        let probes: Vec<u64> = (0..2000u64)
            .map(|i| i * 37 + 1)
            .chain((0..63u32).map(|s| 1u64 << s))
            .chain((0..63u32).map(|s| (1u64 << s) + (1u64 << s.saturating_sub(1))))
            .chain([u64::MAX, u64::MAX - 1])
            .collect();
        for &v in &probes {
            let b = bucket_of(v);
            assert!(v <= bucket_upper(b), "v={v} above its bucket edge");
            assert_eq!(bucket_of(bucket_upper(b)), b, "edge of bucket {b} escapes");
            if v > 0 {
                assert!(bucket_of(v - 1) <= b, "bucketing not monotone at {v}");
            }
        }
    }

    #[test]
    fn relative_resolution_is_bounded() {
        // Every bucket above the exact range spans < 1/SUB_BUCKETS of its
        // value: quantiles can never be more than ~6.25% conservative.
        for &v in &[100u64, 999, 52_956, 1_000_000, 123_456_789] {
            let upper = bucket_upper(bucket_of(v));
            let width = (upper - v) as f64 / v as f64;
            assert!(width < 1.0 / SUB_BUCKETS as f64, "v={v} upper={upper}");
        }
    }

    #[test]
    fn open_loop_regression_distinct_quantiles() {
        // Regression for the BENCH_ENGINE.json artifact: 255 sojourn
        // times spread over one octave (32–64 ms) must NOT collapse to
        // p50 = p95 = p99 — the old one-bucket-per-octave layout reported
        // 52 956 µs for all three.
        let mut h = LatencyHistogram::new();
        for i in 0..255u64 {
            h.record_micros(33_000 + i * 100); // 33.0 ms … 58.4 ms
        }
        let (p50, p95, p99) =
            (h.quantile_micros(0.50), h.quantile_micros(0.95), h.quantile_micros(0.99));
        assert!(p50 < p95 && p95 < p99, "quantiles collapsed: {p50}/{p95}/{p99}");
        // And each is within the documented 6.25% of the exact rank stat.
        for (q, got) in [(0.50f64, p50), (0.95, p95), (0.99, p99)] {
            let exact = 33_000 + ((q * 255.0).ceil() as u64 - 1) * 100;
            assert!(got >= exact, "q={q}: {got} below exact {exact}");
            assert!(
                (got - exact) as f64 / exact as f64 <= 1.0 / SUB_BUCKETS as f64,
                "q={q}: {got} vs exact {exact}"
            );
        }
    }

    #[test]
    fn quantiles_bound_the_truth_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for v in [100u64, 200, 300, 400, 1000, 2000, 4000, 50_000] {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 8);
        // p50 falls in 400's bucket; the edge is within 6.25% above it.
        let p50 = h.quantile_micros(0.5);
        assert!((400..=425).contains(&p50), "p50={p50}");
        // The max is exact.
        assert_eq!(h.quantile_micros(1.0), 50_000);
        assert_eq!(h.max_micros(), 50_000);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record_micros(v);
        }
        assert_eq!(h.mean_micros(), 20.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<u64> = (0..500).map(|i| (i * 37) % 10_000).collect();
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record_micros(v);
            if i < 200 {
                left.record_micros(v)
            } else {
                right.record_micros(v)
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.mean_micros(), whole.mean_micros());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile_micros(q), whole.quantile_micros(q));
        }
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        // Regression: `merge` saturated `sum_micros` but wrapped `count`
        // and the bucket counters. Two histograms whose counts sum past
        // u64::MAX must clamp to u64::MAX, not wrap to a tiny value that
        // poisons quantile ranks.
        let mut a = LatencyHistogram::new();
        a.record_micros_n(100, u64::MAX - 3);
        let mut b = LatencyHistogram::new();
        b.record_micros_n(100, 10);
        b.record_micros_n(5_000, 2);
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX, "count must saturate, not wrap");
        // The shared bucket also saturates (it held u64::MAX - 3 and
        // receives 10 more); quantiles stay well-defined and monotone.
        let p50 = a.quantile_micros(0.5);
        assert!((100..=106).contains(&p50), "p50={p50} escaped 100's bucket");
        assert_eq!(a.max_micros(), 5_000);
        // Merging *again* keeps everything pinned at the ceiling.
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert!(a.mean_micros().is_finite());
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = LatencyHistogram::new();
        bulk.record_micros_n(777, 5);
        bulk.record_micros_n(33, 0); // no-op: records nothing, not even max
        let mut each = LatencyHistogram::new();
        for _ in 0..5 {
            each.record_micros(777);
        }
        assert_eq!(bulk.count(), each.count());
        assert_eq!(bulk.mean_micros(), each.mean_micros());
        assert_eq!(bulk.max_micros(), each.max_micros());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(bulk.quantile_micros(q), each.quantile_micros(q));
        }
    }

    #[test]
    fn record_secs_converts_to_micros() {
        let mut h = LatencyHistogram::new();
        h.record_secs(0.002); // 2 ms
        assert_eq!(h.max_micros(), 2000);
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record_micros(0);
        h.record_micros(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_micros(1.0), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        let _ = LatencyHistogram::new().quantile_micros(0.5);
    }

    #[test]
    fn raw_parts_round_trip_preserves_quantiles() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 700, 52_956, 1_000_000, u64::MAX] {
            h.record_micros(v);
        }
        let back = LatencyHistogram::from_raw_parts(
            *h.bucket_counts(),
            h.count(),
            h.sum_micros(),
            h.max_micros(),
        );
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum_micros(), h.sum_micros());
        assert_eq!(back.max_micros(), h.max_micros());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(back.quantile_micros(q), h.quantile_micros(q));
        }
        // The exposed bucket edges agree with the internal layout, so an
        // exporter can label cumulative buckets without re-deriving it.
        for i in [0usize, SUB_BUCKETS, 200, LATENCY_BUCKETS - 1] {
            assert_eq!(LatencyHistogram::bucket_upper_micros(i), bucket_upper(i));
        }
    }
}
