//! Per-query latency models.
//!
//! Defaults reflect the paper's motivating setting: a PCR cycle or robot
//! pipetting pass takes essentially constant time, while neural-network
//! pool evaluation has a heavy right tail (log-normal).

use pooled_rng::{Rng64, SeedSequence};

/// Distribution of a single query's execution time (time units arbitrary).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every query takes exactly this long (PCR plates, robot passes).
    Fixed(f64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-normal with the given log-space parameters (GPU inference tails).
    LogNormal {
        /// Mean of `ln T`.
        mu: f64,
        /// Std-dev of `ln T`.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Sample one query duration. Always strictly positive.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencyModel::Fixed(t) => {
                assert!(t > 0.0, "fixed latency must be positive");
                t
            }
            LatencyModel::Uniform { lo, hi } => {
                assert!(0.0 < lo && lo <= hi, "need 0 < lo ≤ hi");
                lo + (hi - lo) * rng.next_f64()
            }
            LatencyModel::LogNormal { mu, sigma } => {
                assert!(sigma >= 0.0, "sigma must be non-negative");
                (mu + sigma * standard_normal(rng)).exp()
            }
        }
    }

    /// Sample durations for `m` queries from per-query substreams.
    pub fn sample_many(&self, m: usize, seeds: &SeedSequence) -> Vec<f64> {
        (0..m)
            .map(|q| {
                let mut rng = seeds.child("latency", q as u64).rng();
                self.sample(&mut rng)
            })
            .collect()
    }

    /// Expected duration of one query.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform { lo, hi } => 0.5 * (lo + hi),
            LatencyModel::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
        }
    }
}

/// Box–Muller standard normal.
fn standard_normal<R: Rng64 + ?Sized>(rng: &mut R) -> f64 {
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE); // (0,1]
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let mut rng = SeedSequence::new(1).rng();
        let m = LatencyModel::Fixed(2.5);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 2.5);
        }
        assert_eq!(m.mean(), 2.5);
    }

    #[test]
    fn uniform_respects_bounds_and_mean() {
        let mut rng = SeedSequence::new(2).rng();
        let m = LatencyModel::Uniform { lo: 1.0, hi: 3.0 };
        let samples: Vec<f64> = (0..20_000).map(|_| m.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&t| (1.0..=3.0).contains(&t)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let mut rng = SeedSequence::new(3).rng();
        let m = LatencyModel::LogNormal { mu: 0.0, sigma: 0.5 };
        let samples: Vec<f64> = (0..100_000).map(|_| m.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - m.mean()).abs() / m.mean() < 0.02, "mean={mean} want={}", m.mean());
        assert!(samples.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn sample_many_is_deterministic_per_query() {
        let seeds = SeedSequence::new(4);
        let m = LatencyModel::Uniform { lo: 0.5, hi: 1.5 };
        let a = m.sample_many(50, &seeds);
        let b = m.sample_many(50, &seeds);
        assert_eq!(a, b);
        // Prefixes agree: adding queries never perturbs earlier draws.
        let c = m.sample_many(60, &seeds);
        assert_eq!(&c[..50], &a[..]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fixed_latency_rejected() {
        let mut rng = SeedSequence::new(5).rng();
        let _ = LatencyModel::Fixed(0.0).sample(&mut rng);
    }
}
