//! A minimal deterministic discrete-event queue.
//!
//! Events carry an `f64` timestamp and a payload; ties are broken by
//! insertion sequence so simulations are reproducible. NaN timestamps are
//! rejected at insertion (they would poison the ordering).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Time value that is totally ordered (NaN is banned at construction).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Time(f64);

impl Time {
    /// Wrap a timestamp.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "event time must not be NaN");
        Self(t)
    }

    /// The raw timestamp.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NaN excluded by constructor")
    }
}

/// Priority queue of timed events, earliest first, FIFO within a timestamp.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(Time, u64, usize)>>,
    payloads: Vec<Option<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), payloads: Vec::new(), seq: 0 }
    }

    /// Schedule `payload` at time `t`.
    pub fn push(&mut self, t: f64, payload: T) {
        let slot = self.payloads.len();
        self.payloads.push(Some(payload));
        self.heap.push(Reverse((Time::new(t), self.seq, slot)));
        self.seq += 1;
    }

    /// Pop the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let Reverse((t, _, slot)) = self.heap.pop()?;
        let payload = self.payloads[slot].take().expect("payload taken twice");
        Some((t.value(), payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(1.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(5.0, "late");
        q.push(1.0, "early");
        assert_eq!(q.pop(), Some((1.0, "early")));
        q.push(2.0, "mid");
        assert_eq!(q.pop(), Some((2.0, "mid")));
        assert_eq!(q.pop(), Some((5.0, "late")));
    }

    #[test]
    fn len_tracks_content() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, 0);
        q.push(1.0, 1);
        assert_eq!(q.len(), 2);
        let _ = q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }
}
