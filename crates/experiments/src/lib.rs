#![warn(missing_docs)]

//! Shared infrastructure for the reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or table of the
//! paper (see DESIGN.md's per-experiment index). They share:
//!
//! * [`scale`] — the `default` (laptop-minutes) vs `full` (paper-scale)
//!   parameter profiles;
//! * [`output`] — a common `results/` output directory with CSV + gnuplot
//!   + manifest per experiment;
//! * the θ grid of the evaluation section: `{0.1, 0.2, 0.3, 0.4}`.

use std::path::{Path, PathBuf};

use pooled_io::{Args, Manifest};

/// The θ values every figure of the paper sweeps.
pub const PAPER_THETAS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

/// Default master seed (the paper's publication year + algorithm initials).
pub const DEFAULT_SEED: u64 = 1905;

/// Scale profile selected by `--full`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale defaults: minutes, reproduces the *shape*.
    Default,
    /// Paper-scale grid (n up to 10⁶, 100 trials): hours.
    Full,
}

impl Scale {
    /// Read the scale from parsed arguments.
    pub fn from_args(args: &Args) -> Self {
        if args.flag("full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// Identifier for manifests.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }
}

/// Resolve (and create) the output directory: `--out DIR` or `./results`.
///
/// # Panics
/// Panics when the directory cannot be created.
pub fn output_dir(args: &Args) -> PathBuf {
    let dir = PathBuf::from(args.get_str("out", "results"));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create output dir {dir:?}: {e}"));
    dir
}

/// Write the standard artifact triple: CSV, manifest, and (optionally) a
/// gnuplot script rendered by the caller.
///
/// # Panics
/// Panics on I/O failure — experiment runs should fail loudly.
pub fn write_artifacts(
    dir: &Path,
    experiment: &str,
    header: &[&str],
    rows: &[Vec<String>],
    manifest: &Manifest,
    gnuplot: Option<&pooled_io::GnuplotScript>,
) -> PathBuf {
    let csv_path = dir.join(format!("{experiment}.csv"));
    pooled_io::write_csv(&csv_path, header, rows)
        .unwrap_or_else(|e| panic!("writing {csv_path:?}: {e}"));
    manifest
        .write_to(dir.join(format!("{experiment}.manifest.json")))
        .unwrap_or_else(|e| panic!("writing manifest: {e}"));
    if let Some(gp) = gnuplot {
        gp.write_to(dir.join(format!("{experiment}.gp")))
            .unwrap_or_else(|e| panic!("writing gnuplot script: {e}"));
    }
    csv_path
}

/// Log-spaced `n` grid from `lo` to `hi` with `per_decade` points per
/// decade (deduplicated, ascending).
pub fn log_grid(lo: usize, hi: usize, per_decade: usize) -> Vec<usize> {
    assert!(lo >= 1 && hi >= lo && per_decade >= 1, "bad log grid spec");
    let mut out = Vec::new();
    let ratio = 10f64.powf(1.0 / per_decade as f64);
    let mut x = lo as f64;
    while x <= hi as f64 * 1.0001 {
        out.push(x.round() as usize);
        x *= ratio;
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_grid_covers_decades() {
        let g = log_grid(100, 100_000, 2);
        assert_eq!(g.first(), Some(&100));
        assert!(*g.last().unwrap() >= 100_000);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        // 2 per decade over 3 decades ⇒ 7 points.
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn scale_parsing() {
        let full = Args::parse(vec!["--full".to_string()]);
        let def = Args::parse(Vec::<String>::new());
        assert_eq!(Scale::from_args(&full), Scale::Full);
        assert_eq!(Scale::from_args(&def), Scale::Default);
        assert_eq!(Scale::Full.name(), "full");
    }

    #[test]
    fn paper_thetas_match_evaluation_section() {
        assert_eq!(PAPER_THETAS, [0.1, 0.2, 0.3, 0.4]);
    }
}
