//! THM2: empirical check of the information-theoretic threshold on small
//! instances.
//!
//! For a small `n` (exhaustive search is `C(n,k)` candidates) we count, per
//! trial, the number of weight-`k` vectors consistent with the query
//! results — `Z_k(G, y)` in the paper — and report the uniqueness frequency
//! across an `m`-sweep, next to the first-moment prediction (Lemma 8/9).
//!
//! A second panel (`--bnb`) repeats the check at `n = 200, k = 6` — where
//! `C(n,k) ≈ 8·10¹⁰` rules out enumeration — using the branch-and-bound
//! counter with MN-guided ordering (`pooled-core::bnb`). Trials whose node
//! budget is exhausted (deep sub-threshold, astronomically many solutions)
//! are reported separately rather than silently dropped.

use pooled_core::bnb::branch_and_bound;
use pooled_core::exhaustive::exhaustive_search;
use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_experiments::{output_dir, write_artifacts, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{render_table, Args, GnuplotScript, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::run_trials;
use pooled_theory::moments::{first_moment_threshold, predicts_unique};
use pooled_theory::thresholds::m_information_theoretic;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let n = args.get_usize("n", 24);
    let k = args.get_usize("k", 3);
    let trials = args.get_usize("trials", 40);

    let m_star = first_moment_threshold(n, k);
    let m_it = m_information_theoretic(n, k);
    let m_grid: Vec<usize> =
        (1..=12).map(|i| ((m_star * i as f64 / 6.0).round() as usize).max(1)).collect();
    let master = SeedSequence::new(seed);

    let header = ["m", "unique_rate", "mean_consistent", "first_moment_predicts_unique"];
    let mut rows = Vec::new();
    for &m in &m_grid {
        let counts = run_trials(&master.child("m", m as u64), trials, |_, seeds| {
            let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
            let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
            let y = execute_queries(&design, &sigma);
            exhaustive_search(&design, &y, k).consistent_count
        });
        let unique = counts.iter().filter(|&&c| c == 1).count();
        let mean_z: f64 = counts.iter().map(|&c| c as f64).sum::<f64>() / trials as f64;
        rows.push(vec![
            m.to_string(),
            fmt_f64(unique as f64 / trials as f64),
            fmt_f64(mean_z),
            predicts_unique(n, k, m as f64).to_string(),
        ]);
    }
    println!("Theorem 2 check at n={n}, k={k} (asymptotic m_IT = {m_it:.1}, exact first-moment threshold = {m_star:.1}):");
    println!("{}", render_table(&header, &rows));

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "it_threshold",
        seed,
        "default",
        serde_json::json!({"n": n, "k": k, "trials": trials, "m_grid": m_grid,
                           "m_it_asymptotic": m_it, "m_first_moment": m_star}),
    );
    let gp = GnuplotScript::new(
        "Theorem 2 — uniqueness of the consistent vector",
        "number of tests m",
        "P[Z_k = 1]",
    )
    .vertical_line(m_star, "first-moment threshold")
    .series("it_threshold.csv", "1:2", "empirical uniqueness", "linespoints");
    let csv = write_artifacts(&dir, "it_threshold", &header, &rows, &manifest, Some(&gp));
    println!("it_threshold: wrote {}", csv.display());

    if args.flag("bnb") {
        bnb_panel(&dir, seed, args.get_usize("bnb-trials", 15));
    }
}

/// Large-n uniqueness panel via branch-and-bound (n = 200, k = 6).
fn bnb_panel(dir: &std::path::Path, seed: u64, trials: usize) {
    let (n, k) = (200usize, 6usize);
    let m_star = first_moment_threshold(n, k);
    let m_grid: Vec<usize> =
        (2..=10).map(|i| ((m_star * i as f64 / 4.0).round() as usize).max(1)).collect();
    let master = SeedSequence::new(seed ^ 0xB4B);
    let header = ["m", "unique_rate", "mean_consistent", "exhausted_rate", "mean_nodes"];
    let mut rows = Vec::new();
    for &m in &m_grid {
        let outcomes = run_trials(&master.child("m", m as u64), trials, |_, seeds| {
            let design = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
            let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
            let y = execute_queries(&design, &sigma);
            let mn = MnDecoder::new(k).decode(&design, &y);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(mn.scores[i]), i));
            branch_and_bound(&design, &y, k, Some(&order), 20_000_000)
                .map(|o| (o.consistent_count, o.nodes_visited))
        });
        let settled: Vec<&(u64, u64)> = outcomes.iter().flatten().collect();
        let unique = settled.iter().filter(|o| o.0 == 1).count();
        let mean_z = settled.iter().map(|o| o.0 as f64).sum::<f64>() / settled.len().max(1) as f64;
        let mean_nodes =
            settled.iter().map(|o| o.1 as f64).sum::<f64>() / settled.len().max(1) as f64;
        let exhausted = trials - settled.len();
        rows.push(vec![
            m.to_string(),
            fmt_f64(unique as f64 / settled.len().max(1) as f64),
            fmt_f64(mean_z),
            fmt_f64(exhausted as f64 / trials as f64),
            fmt_f64(mean_nodes),
        ]);
        eprintln!(
            "it_threshold/bnb: m={m} unique {unique}/{} (exhausted {exhausted})",
            settled.len()
        );
    }
    println!(
        "Theorem 2 at n={n}, k={k} via branch-and-bound \
         (first-moment threshold = {m_star:.1}):"
    );
    println!("{}", render_table(&header, &rows));
    let manifest = Manifest::new(
        "it_threshold_bnb",
        seed,
        "default",
        serde_json::json!({"n": n, "k": k, "trials": trials, "m_grid": m_grid,
                           "m_first_moment": m_star, "node_budget": 20_000_000u64}),
    );
    let csv = pooled_experiments::write_artifacts(
        dir,
        "it_threshold_bnb",
        &header,
        &rows,
        &manifest,
        None,
    );
    println!("it_threshold: wrote {}", csv.display());
}
