//! BASE: decoder comparison across the related-work landscape (§I-B).
//!
//! Runs MN against OMP, Basis Pursuit, AMP, the Ψ-only ablation and the
//! random-guess floor on the same additive instances, plus the peeling
//! decoder and COMP/DD on their own channels, sweeping `m` in units of
//! `k·ln(n/k)` — the natural axis on which the paper quotes all constants.

use pooled_baselines::amp::AmpDecoder;
use pooled_baselines::basis_pursuit::BasisPursuitDecoder;
use pooled_baselines::binary_gt::{comp, dd, execute_or, gt_design_for};
use pooled_baselines::control::{PsiOnlyDecoder, RandomGuessDecoder};
use pooled_baselines::omp::OmpDecoder;
use pooled_baselines::peeling::{peel, sparse_design_for};
use pooled_baselines::AdditiveDecoder;
use pooled_core::metrics::overlap_fraction;
use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_experiments::{output_dir, write_artifacts, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{render_table, Args, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::run_trials;
use pooled_theory::thresholds::k_of;

struct CellStats {
    success: f64,
    overlap: f64,
}

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let n = args.get_usize("n", 200);
    let theta = args.get_f64("theta", 0.3);
    let trials = args.get_usize("trials", 20);
    let k = k_of(n, theta);
    let unit = k as f64 * (n as f64 / k as f64).ln(); // k·ln(n/k)
    let factors = [1.0f64, 1.5, 2.0, 3.0, 4.0, 6.0];
    let master = SeedSequence::new(seed);

    let additive: Vec<(&'static str, Box<dyn AdditiveDecoder + Sync>)> = vec![
        ("mn", Box::new(MnAdapter)),
        ("psi-only", Box::new(PsiOnlyDecoder::new())),
        ("omp", Box::new(OmpDecoder::new())),
        ("basis-pursuit", Box::new(BasisPursuitDecoder::new())),
        ("amp", Box::new(AmpDecoder::new())),
    ];

    let header = ["decoder", "m", "m_over_klnnk", "success_rate", "mean_overlap"];
    let mut rows = Vec::new();
    for &f in &factors {
        let m = (f * unit).round() as usize;
        // Additive-channel decoders share instances.
        for (name, decoder) in &additive {
            let node = master.child(name, (f * 100.0) as u64);
            let stats = run_additive(&node, n, k, m, trials, decoder.as_ref());
            rows.push(row(name, m, f, &stats));
        }
        // Random-guess floor.
        {
            let node = master.child("random", (f * 100.0) as u64);
            let outs = run_trials(&node, trials, |_, seeds| {
                let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
                let est = RandomGuessDecoder::new(seeds.child("dec", 0)).reconstruct(
                    &CsrDesign::sample(n, 1, 1, &seeds),
                    &[0],
                    k,
                );
                summarize(&sigma, &est)
            });
            rows.push(row("random-guess", m, f, &aggregate(&outs)));
        }
        // Peeling on its sparse design.
        {
            let node = master.child("peeling", (f * 100.0) as u64);
            let outs = run_trials(&node, trials, |_, seeds| {
                let d = sparse_design_for(n, m, k, 1.0, &seeds.child("design", 0));
                let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
                let y = execute_queries(&d, &sigma);
                summarize(&sigma, &peel(&d, &y).to_signal())
            });
            rows.push(row("peeling", m, f, &aggregate(&outs)));
        }
        // COMP / DD on the OR channel.
        for gt_name in ["comp", "dd"] {
            let node = master.child(gt_name, (f * 100.0) as u64);
            let outs = run_trials(&node, trials, |_, seeds| {
                let d = gt_design_for(n, m, k, &seeds.child("design", 0));
                let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
                let or = execute_or(&d, &sigma);
                let est = if gt_name == "comp" { comp(&d, &or) } else { dd(&d, &or) };
                summarize(&sigma, &est)
            });
            rows.push(row(gt_name, m, f, &aggregate(&outs)));
        }
    }

    println!("Decoder comparison at n={n}, θ={theta} (k={k}, k·ln(n/k)={unit:.1}):");
    println!("{}", render_table(&header, &rows));
    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "baselines_table",
        seed,
        "default",
        serde_json::json!({"n": n, "theta": theta, "k": k, "trials": trials,
                           "factors": factors}),
    );
    let csv = write_artifacts(&dir, "baselines_table", &header, &rows, &manifest, None);
    println!("baselines_table: wrote {}", csv.display());
}

/// MN behind the common trait (decode_csr path).
struct MnAdapter;

impl AdditiveDecoder for MnAdapter {
    fn name(&self) -> &'static str {
        "mn"
    }

    fn reconstruct(&self, design: &CsrDesign, y: &[u64], k: usize) -> Signal {
        MnDecoder::new(k).decode_csr(design, y).estimate
    }
}

fn run_additive(
    node: &SeedSequence,
    n: usize,
    k: usize,
    m: usize,
    trials: usize,
    decoder: &(dyn AdditiveDecoder + Sync),
) -> CellStats {
    let outs = run_trials(node, trials, |_, seeds| {
        let d = CsrDesign::sample(n, m, n / 2, &seeds.child("design", 0));
        let sigma = Signal::random(n, k, &mut seeds.child("signal", 0).rng());
        let y = execute_queries(&d, &sigma);
        summarize(&sigma, &decoder.reconstruct(&d, &y, k))
    });
    aggregate(&outs)
}

fn summarize(sigma: &Signal, est: &Signal) -> (bool, f64) {
    (sigma == est, overlap_fraction(sigma, est))
}

fn aggregate(outs: &[(bool, f64)]) -> CellStats {
    let t = outs.len() as f64;
    CellStats {
        success: outs.iter().filter(|(e, _)| *e).count() as f64 / t,
        overlap: outs.iter().map(|(_, o)| o).sum::<f64>() / t,
    }
}

fn row(name: &str, m: usize, f: f64, s: &CellStats) -> Vec<String> {
    vec![name.to_string(), m.to_string(), fmt_f64(f), fmt_f64(s.success), fmt_f64(s.overlap)]
}
