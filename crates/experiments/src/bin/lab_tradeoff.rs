//! LAB: the queries-vs-wall-time trade-off of partially parallel designs
//! (§I motivation + §VI open problem).
//!
//! Simulates the lab: fully parallel designs pay 2× the queries of a
//! sequential scheme (Theorem 2 vs Bshouty) but finish in one round. With
//! `L` processing units and a latency model, the Pareto curve between
//! rounds, query budget and makespan becomes concrete.

use pooled_experiments::{output_dir, write_artifacts, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{render_table, Args, GnuplotScript, Manifest};
use pooled_lab::stages::tradeoff_curve;
use pooled_lab::LatencyModel;
use pooled_rng::SeedSequence;
use pooled_theory::thresholds::{k_of, m_counting_bound};

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let n = args.get_usize("n", 10_000);
    let theta = args.get_f64("theta", 0.3);
    let units_list: Vec<usize> =
        vec![args.get_usize("units", 0)].into_iter().filter(|&u| u > 0).collect();
    let units_list = if units_list.is_empty() { vec![16usize, 64, 256, 1024] } else { units_list };
    let k = k_of(n, theta);
    let m_seq = m_counting_bound(n, k).ceil() as usize;
    let latency = LatencyModel::LogNormal { mu: 0.0, sigma: 0.25 };
    let master = SeedSequence::new(seed);

    let header = ["units", "rounds", "queries", "makespan"];
    let mut rows = Vec::new();
    for &units in &units_list {
        let curve = tradeoff_curve(m_seq, units, &latency, &master.child("units", units as u64));
        for p in &curve {
            rows.push(vec![
                units.to_string(),
                p.rounds.to_string(),
                p.queries.to_string(),
                fmt_f64(p.makespan),
            ]);
        }
    }
    println!("Lab trade-off at n={n}, θ={theta} (k={k}, m_seq={m_seq}), log-normal query latency:");
    println!("{}", render_table(&header, &rows));

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "lab_tradeoff",
        seed,
        "default",
        serde_json::json!({"n": n, "theta": theta, "m_seq": m_seq, "units": units_list,
                           "latency": "lognormal(0, 0.25)"}),
    );
    let gp = GnuplotScript::new(
        "Partially parallel designs — queries vs makespan",
        "makespan (query-time units)",
        "total queries",
    )
    .logscale("x")
    .series("lab_tradeoff.csv", "4:3", "Pareto points", "points pt 7");
    let csv = write_artifacts(&dir, "lab_tradeoff", &header, &rows, &manifest, Some(&gp));
    println!("lab_tradeoff: wrote {}", csv.display());
}
