//! EXT-ADPT: the §VI rounds/queries/makespan trade-off, tabulated.
//!
//! Four strategies are run on the same signals: the paper's one-round
//! design (at `1.1×` the finite-size Theorem 1 budget), the two-round
//! hybrid (`0.7×` screening + `12k` verification singles), counting
//! Dorfman at its optimal group size (2 rounds), and quantitative
//! bisection (`log₂ n` rounds). For each strategy the table reports mean
//! queries, rounds, exact-recovery rate, and the makespan on `L` units at
//! unit batch latency — the quantity a laboratory actually minimizes.

use pooled_adaptive::{
    counting_dorfman, optimal_group_size, quantitative_bisect, two_round_hybrid, CountOracle,
    HybridConfig, StrategyReport,
};
use pooled_core::Signal;
use pooled_experiments::{output_dir, write_artifacts, Scale, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::{mn_trial, run_trials};
use pooled_theory::thresholds::{k_of, m_mn_finite};

const UNITS: [usize; 6] = [1, 4, 16, 64, 256, 1024];

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", if scale == Scale::Full { 100 } else { 20 });
    let n = args.get_usize("n", if scale == Scale::Full { 10_000 } else { 1000 });
    let theta = args.get_f64("theta", 0.3);
    let k = k_of(n, theta);
    let m_full = m_mn_finite(n, theta);
    let m_one_round = (1.1 * m_full).ceil() as usize;
    let hybrid_cfg = HybridConfig { m1: (0.7 * m_full).round() as usize, candidate_mult: 12 };
    let g_star = optimal_group_size(n, k);
    let master = SeedSequence::new(seed);

    // Per-trial reports for each strategy (parallel over trials).
    let all: Vec<[StrategyReport; 4]> = run_trials(&master, trials, |_, s| {
        let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
        // One-round MN (non-adaptive, the paper).
        let mn = mn_trial(n, k, m_one_round, &s.child("mn", 0));
        let parallel = StrategyReport::new("one_round_mn", vec![m_one_round], mn.exact);
        // Two-round hybrid.
        let mut oracle = CountOracle::new(&sigma);
        let h = two_round_hybrid(&mut oracle, k, &hybrid_cfg, &s.child("hybrid", 0));
        let hybrid = StrategyReport::new("hybrid_2round", h.per_round.clone(), h.estimate == sigma);
        // Counting Dorfman.
        let mut oracle = CountOracle::new(&sigma);
        let d = counting_dorfman(&mut oracle, g_star);
        let dorfman =
            StrategyReport::new("dorfman_2round", d.per_round.clone(), d.estimate == sigma);
        // Quantitative bisection.
        let mut oracle = CountOracle::new(&sigma);
        let b = quantitative_bisect(&mut oracle);
        let bisect = StrategyReport::new("bisect_logn", b.per_round.clone(), b.estimate == sigma);
        [parallel, hybrid, dorfman, bisect]
    });

    let mut rows = Vec::new();
    for idx in 0..4 {
        let name = all[0][idx].name.clone();
        let mean_q: f64 = all.iter().map(|r| r[idx].queries as f64).sum::<f64>() / trials as f64;
        let mean_rounds: f64 =
            all.iter().map(|r| r[idx].rounds as f64).sum::<f64>() / trials as f64;
        let exact_rate: f64 = all.iter().filter(|r| r[idx].exact).count() as f64 / trials as f64;
        for &units in &UNITS {
            let mean_makespan: f64 =
                all.iter().map(|r| r[idx].makespan(units, 1.0)).sum::<f64>() / trials as f64;
            rows.push(vec![
                name.clone(),
                units.to_string(),
                fmt_f64(mean_q),
                fmt_f64(mean_rounds),
                fmt_f64(exact_rate),
                fmt_f64(mean_makespan),
            ]);
        }
        eprintln!(
            "adaptive_tradeoff: {name}: {mean_q:.0} queries, {mean_rounds:.1} rounds, \
             exact {exact_rate:.2}"
        );
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "adaptive_tradeoff",
        seed,
        scale.name(),
        serde_json::json!({
            "n": n, "theta": theta, "k": k, "trials": trials,
            "m_one_round": m_one_round, "hybrid_m1": hybrid_cfg.m1,
            "hybrid_mult": hybrid_cfg.candidate_mult, "dorfman_g": g_star,
            "units": UNITS,
        }),
    );
    let mut gp = GnuplotScript::new(
        &format!("EXT-ADPT — makespan over L units (n = {n}, θ = {theta})"),
        "processing units L",
        "makespan (batches)",
    )
    .logscale("xy");
    for name in ["one_round_mn", "hybrid_2round", "dorfman_2round", "bisect_logn"] {
        gp = gp.series(
            "adaptive_tradeoff.csv",
            &format!("(strcol(1) eq \"{name}\"?$2:1/0):6"),
            name,
            "linespoints",
        );
    }
    let header = ["strategy", "units", "mean_queries", "mean_rounds", "exact_rate", "makespan"];
    let csv = write_artifacts(&dir, "adaptive_tradeoff", &header, &rows, &manifest, Some(&gp));
    println!("adaptive_tradeoff: wrote {}", csv.display());
}
