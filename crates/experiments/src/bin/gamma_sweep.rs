//! EXT-GAMMA: is the paper's `Γ = n/2` pool size optimal?
//!
//! Sweeps the pool fraction `c = Γ/n` over two octaves on each side of the
//! paper's `1/2`, locates the empirical 50%-success query count `m₅₀(c)`
//! by linear interpolation on a sweep, and compares the normalized curve
//! `m₅₀(c)/m₅₀(1/2)` against the two theory shapes from
//! `pooled_theory::gamma_opt`:
//!
//! * `d_ext` — the verbatim extension of the paper's Corollary 6
//!   (*decreasing* in `c`: predicts big pools win), and
//! * `d_cor` — the mean-shift-corrected constant (*increasing* in `c`:
//!   predicts small pools win).
//!
//! The measured curve follows `d_cor`, demonstrating that the `(1+o(1))`
//! in the paper's Eq. (5) hides a `Θ(m)` separation loss for large pools.

use pooled_core::mn_general::GeneralMnDecoder;
use pooled_core::query::execute_queries_into;
use pooled_core::workspace::MnWorkspace;
use pooled_core::{exact_recovery_dense, Signal};
use pooled_design::CsrDesign;
use pooled_experiments::{output_dir, write_artifacts, Scale, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::run_trials_with;
use pooled_stats::sweep::linear_grid;
use pooled_theory::gamma_opt::relative_cost_vs_half;
use pooled_theory::thresholds::{k_of, m_mn_finite};

const POOL_FRACTIONS: [f64; 6] = [0.125, 0.25, 0.5, 1.0, 1.5, 2.0];

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", if scale == Scale::Full { 100 } else { 25 });
    let n = args.get_usize("n", if scale == Scale::Full { 10_000 } else { 1000 });
    let theta = args.get_f64("theta", 0.3);
    let k = k_of(n, theta);
    // The sweep must reach past the worst family member: c = 2 costs ≈ 4×
    // the paper's c = 1/2 threshold by the corrected theory.
    let m_hi = (4.5 * m_mn_finite(n, theta)).ceil() as usize;

    let mut rows = Vec::new();
    let mut m50: Vec<(f64, f64)> = Vec::new();
    for &c in &POOL_FRACTIONS {
        let gamma = ((c * n as f64).round() as usize).max(1);
        let mut curve: Vec<(usize, f64)> = Vec::new();
        for m in linear_grid(m_hi / 24, m_hi, 24) {
            let master = SeedSequence::new(seed ^ ((c * 4096.0) as u64) ^ ((m as u64) << 20));
            let outcomes = run_trials_with(
                &master,
                trials,
                || (MnWorkspace::new(), Vec::new()),
                |_, s, (ws, y)| {
                    let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
                    let design = CsrDesign::sample(n, m, gamma, &s.child("design", 0));
                    execute_queries_into(&design, &sigma, y);
                    GeneralMnDecoder::new(k).decode_with(&design, y, ws);
                    exact_recovery_dense(&sigma, ws.estimate_dense())
                },
            );
            let rate = outcomes.iter().filter(|&&e| e).count() as f64 / trials as f64;
            curve.push((m, rate));
            rows.push(vec![fmt_f64(c), m.to_string(), fmt_f64(rate)]);
        }
        let crossing = interpolate_half(&curve);
        m50.push((c, crossing));
        eprintln!("gamma_sweep: c={c} m50≈{crossing:.0}");
    }

    // Summary table: measured ratio vs the two theory shapes.
    let base = m50.iter().find(|&&(c, _)| c == 0.5).map(|&(_, m)| m).unwrap_or(f64::NAN);
    let mut summary_rows = Vec::new();
    println!("c      m50    measured/half  d_cor ratio  d_ext ratio");
    for &(c, m) in &m50 {
        let measured = m / base;
        let cor = relative_cost_vs_half(c, theta);
        let ext = pooled_theory::gamma_opt::d_paper_extension(c, theta)
            / pooled_theory::gamma_opt::d_paper_extension(0.5, theta);
        println!("{c:<6} {m:<6.0} {measured:<14.2} {cor:<12.2} {ext:<10.2}");
        summary_rows.push(vec![
            fmt_f64(c),
            fmt_f64(m),
            fmt_f64(measured),
            fmt_f64(cor),
            fmt_f64(ext),
        ]);
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "gamma_sweep",
        seed,
        scale.name(),
        serde_json::json!({
            "n": n, "theta": theta, "k": k, "trials": trials,
            "pool_fractions": POOL_FRACTIONS,
        }),
    );
    let gp = GnuplotScript::new(
        &format!("EXT-GAMMA — m50 over pool fraction c (n = {n}, θ = {theta})"),
        "pool fraction c",
        "m50(c) / m50(1/2)",
    )
    .logscale("x")
    .series("gamma_sweep_summary.csv", "1:3", "measured", "linespoints")
    .series("gamma_sweep_summary.csv", "1:4", "d_cor (shift-corrected)", "lines")
    .series("gamma_sweep_summary.csv", "1:5", "d_ext (naive extension)", "lines");
    write_artifacts(
        &dir,
        "gamma_sweep_summary",
        &["c", "m50", "measured_ratio", "d_cor_ratio", "d_ext_ratio"],
        &summary_rows,
        &manifest,
        Some(&gp),
    );
    let csv =
        write_artifacts(&dir, "gamma_sweep", &["c", "m", "success_rate"], &rows, &manifest, None);
    println!("gamma_sweep: wrote {}", csv.display());
}

/// First `m` where the success curve crosses 1/2, linearly interpolated;
/// `NaN` when the curve never reaches it.
fn interpolate_half(curve: &[(usize, f64)]) -> f64 {
    for w in curve.windows(2) {
        let ((m0, r0), (m1, r1)) = (w[0], w[1]);
        if r0 < 0.5 && r1 >= 0.5 {
            let t = (0.5 - r0) / (r1 - r0);
            return m0 as f64 + t * (m1 - m0) as f64;
        }
    }
    if curve.first().is_some_and(|&(_, r)| r >= 0.5) {
        return curve[0].0 as f64;
    }
    f64::NAN
}
