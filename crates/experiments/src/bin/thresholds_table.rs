//! EQ12: the threshold landscape — Eqs. (1)–(2), Theorems 1–2 and the
//! related-work constants, tabulated over θ at a chosen `n`.

use pooled_experiments::{output_dir, write_artifacts, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{render_table, Args, Manifest};
use pooled_theory::thresholds::{
    binary_gt_theta_limit, k_of, m_basis_pursuit, m_binary_gt, m_counting_bound,
    m_information_theoretic, m_karimi_a, m_karimi_b, m_l1, m_mn, m_mn_finite,
};

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let n = args.get_usize("n", 10_000);
    let thetas: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();

    let header = [
        "theta",
        "k",
        "m_counting",
        "m_IT_parallel",
        "m_MN",
        "m_MN_finite",
        "m_karimi_a",
        "m_karimi_b",
        "m_binary_gt",
        "m_l1",
        "m_basis_pursuit",
    ];
    let mut rows = Vec::new();
    for &theta in &thetas {
        let k = k_of(n, theta);
        let gt = if theta <= binary_gt_theta_limit() {
            fmt_f64(m_binary_gt(n, k))
        } else {
            "n/a".to_string()
        };
        rows.push(vec![
            theta.to_string(),
            k.to_string(),
            fmt_f64(m_counting_bound(n, k)),
            fmt_f64(m_information_theoretic(n, k)),
            fmt_f64(m_mn(n, theta)),
            fmt_f64(m_mn_finite(n, theta)),
            fmt_f64(m_karimi_a(n, k)),
            fmt_f64(m_karimi_b(n, k)),
            gt,
            fmt_f64(m_l1(n, k)),
            fmt_f64(m_basis_pursuit(n, k)),
        ]);
    }
    println!("Threshold landscape at n = {n}:");
    println!("{}", render_table(&header, &rows));

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "thresholds_table",
        DEFAULT_SEED,
        "default",
        serde_json::json!({"n": n, "thetas": thetas}),
    );
    let csv = write_artifacts(&dir, "thresholds_table", &header, &rows, &manifest, None);
    println!("thresholds_table: wrote {}", csv.display());
}
