//! FIG1: the paper's worked example (Fig. 1).
//!
//! Builds the 7-entry, 5-query bipartite multigraph from the figure,
//! executes the additive queries (reproducing the result vector
//! `(2, 2, 3, 1, 1)`), and walks through the MN decoder's scores.

use pooled_core::mn::MnDecoder;
use pooled_core::query::execute_queries;
use pooled_core::signal::Signal;
use pooled_design::csr::CsrDesign;
use pooled_design::PoolingDesign;
use pooled_io::render_table;

fn main() {
    let sigma = Signal::from_dense(&[1, 1, 0, 0, 1, 0, 0]);
    // Fig. 1's queries; query a2 contains x2 twice (the dashed multi-edge),
    // and the result vector matches the figure: (2, 2, 3, 1, 1).
    let pools = vec![vec![0, 1, 3], vec![1, 1, 2], vec![0, 1, 4], vec![4, 5], vec![4, 6]];
    let design = CsrDesign::from_pools(7, &pools);
    let y = execute_queries(&design, &sigma);
    println!("signal σ = {:?}  (support {:?})", sigma.dense(), sigma.support());
    println!("query results y = {y:?}  (paper: [2, 2, 3, 1, 1])");
    assert_eq!(y, vec![2, 2, 3, 1, 1], "Fig. 1 result vector mismatch");

    let out = MnDecoder::new(sigma.weight()).decode_csr(&design, &y);
    let rows: Vec<Vec<String>> = (0..design.n())
        .map(|i| {
            vec![
                format!("x{i}"),
                sigma.get(i).to_string(),
                out.psi[i].to_string(),
                out.delta_star[i].to_string(),
                out.scores[i].to_string(),
                out.estimate.get(i).to_string(),
            ]
        })
        .collect();
    println!("{}", render_table(&["entry", "σ", "Ψ", "Δ*", "2Ψ−kΔ*", "σ̃"], &rows));
    println!(
        "exact recovery: {}",
        if out.estimate == sigma { "yes" } else { "no (m=5 queries is tiny)" }
    );
}
