//! EXT-REFINE: how much of the algorithmic-vs-IT gap does post-processing
//! close?
//!
//! Sweeps the query budget through the sub-threshold region and compares
//! plain MN against MN + residual-guided swap refinement
//! (`pooled_core::refine`). Also reports the consistency-certificate rate:
//! above the IT threshold, `residual = 0` certifies exact recovery
//! (Theorem 2), so `consistent_rate` bounds the refined success rate from
//! below there.

use pooled_core::refine::{refine, RefineConfig};
use pooled_core::{exact_recovery, execute_queries, MnDecoder, Signal};
use pooled_design::CsrDesign;
use pooled_experiments::{output_dir, write_artifacts, Scale, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::run_trials;
use pooled_stats::sweep::linear_grid;
use pooled_theory::thresholds::{k_of, m_information_theoretic, m_mn_finite};

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", if scale == Scale::Full { 100 } else { 25 });
    let n = args.get_usize("n", if scale == Scale::Full { 10_000 } else { 1000 });
    let theta = args.get_f64("theta", 0.3);
    let k = k_of(n, theta);
    let m_hi = (1.3 * m_mn_finite(n, theta)).ceil() as usize;
    let m_it = m_information_theoretic(n, k);
    let cfg = RefineConfig::default();

    let mut rows = Vec::new();
    for m in linear_grid((m_it * 0.8) as usize, m_hi, 16) {
        let master = SeedSequence::new(seed ^ ((m as u64) << 13));
        let outcomes = run_trials(&master, trials, |_, s| {
            let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
            let design = CsrDesign::sample(n, m, n / 2, &s.child("design", 0));
            let y = execute_queries(&design, &sigma);
            let out = MnDecoder::new(k).decode(&design, &y);
            let refined = refine(&design, &y, &out.scores, &out.estimate, &cfg);
            (
                exact_recovery(&sigma, &out.estimate),
                exact_recovery(&sigma, &refined.estimate),
                refined.consistent,
                refined.swaps as f64,
            )
        });
        let t = trials as f64;
        let plain = outcomes.iter().filter(|o| o.0).count() as f64 / t;
        let refined = outcomes.iter().filter(|o| o.1).count() as f64 / t;
        let consistent = outcomes.iter().filter(|o| o.2).count() as f64 / t;
        let swaps = outcomes.iter().map(|o| o.3).sum::<f64>() / t;
        rows.push(vec![
            m.to_string(),
            fmt_f64(plain),
            fmt_f64(refined),
            fmt_f64(consistent),
            fmt_f64(swaps),
        ]);
        eprintln!("refinement_gain: m={m} plain={plain:.2} refined={refined:.2}");
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "refinement_gain",
        seed,
        scale.name(),
        serde_json::json!({
            "n": n, "theta": theta, "k": k, "trials": trials,
            "window": cfg.window, "max_swaps": cfg.max_swaps,
            "m_it": m_it,
        }),
    );
    let gp = GnuplotScript::new(
        &format!("EXT-REFINE — plain vs refined MN (n = {n}, θ = {theta})"),
        "number of tests m",
        "success rate",
    )
    .series("refinement_gain.csv", "1:2", "plain MN", "linespoints")
    .series("refinement_gain.csv", "1:3", "MN + refinement", "linespoints")
    .series("refinement_gain.csv", "1:4", "consistency certificate", "lines")
    .vertical_line(m_it, "m_IT (Theorem 2)")
    .vertical_line(m_mn_finite(n, theta), "m_MN finite (Theorem 1)");
    let header = ["m", "plain_success", "refined_success", "consistent_rate", "mean_swaps"];
    let csv = write_artifacts(&dir, "refinement_gain", &header, &rows, &manifest, Some(&gp));
    println!("refinement_gain: wrote {}", csv.display());
}
