//! FIG2: required number of queries for exact reconstruction vs `n`.
//!
//! For every `(n, θ)` on the grid, searches each trial's minimal successful
//! `m` (ramp + bisection) and reports the distribution, next to the
//! asymptotic Theorem 1 value and the finite-size corrected value (§V
//! Remark). Default scale: `n ∈ [10², 10⁴]`, 20 trials. `--full` extends to
//! the paper grid (`n ≤ 10⁶`, 100 trials; hours of CPU).

use pooled_experiments::{
    log_grid, output_dir, write_artifacts, Scale, DEFAULT_SEED, PAPER_THETAS,
};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_stats::{find_transition, TransitionConfig};
use pooled_theory::thresholds::{k_of, m_mn, m_mn_finite};

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let (n_hi, trials) = match scale {
        Scale::Default => (10_000, 20),
        Scale::Full => (1_000_000, 100),
    };
    let n_hi = args.get_usize("n-max", n_hi);
    let trials = args.get_usize("trials", trials);
    let n_grid = log_grid(100, n_hi, 2);

    let mut rows = Vec::new();
    for &theta in &PAPER_THETAS {
        for &n in &n_grid {
            let k = k_of(n, theta);
            let theory = m_mn(n, theta);
            let theory_finite = m_mn_finite(n, theta);
            let cfg = TransitionConfig {
                n,
                k,
                trials,
                m_start: (theory_finite / 8.0).ceil().max(2.0) as usize,
                m_cap: (theory_finite * 16.0).ceil() as usize,
                master_seed: seed ^ (n as u64) ^ ((theta * 1000.0) as u64) << 32,
            };
            let stats = find_transition(&cfg);
            eprintln!(
                "θ={theta} n={n}: mean m* = {:.1} (theory {:.1}, finite {:.1}, capped {})",
                stats.mean, theory, theory_finite, stats.capped
            );
            rows.push(vec![
                n.to_string(),
                theta.to_string(),
                k.to_string(),
                fmt_f64(stats.mean),
                fmt_f64(stats.median),
                fmt_f64(stats.quartiles.0),
                fmt_f64(stats.quartiles.1),
                fmt_f64(theory),
                fmt_f64(theory_finite),
                stats.capped.to_string(),
            ]);
        }
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "fig2",
        seed,
        scale.name(),
        serde_json::json!({"n_grid": n_grid, "thetas": PAPER_THETAS, "trials": trials}),
    );
    let mut gp = GnuplotScript::new(
        "Fig. 2 — required queries until exact reconstruction",
        "individuals n",
        "required number of tests m",
    )
    .logscale("xy");
    for (i, &theta) in PAPER_THETAS.iter().enumerate() {
        // Column layout: 1 n, 2 theta, 4 mean, 8 theory, 9 theory_finite.
        gp = gp.series(
            "fig2.csv",
            &format!("($2=={theta}?$1:1/0):4"),
            &format!("theta = {theta}"),
            &format!("points pt {}", i + 4),
        );
        gp = gp.series(
            "fig2.csv",
            &format!("($2=={theta}?$1:1/0):9"),
            &format!("theory (finite-n), theta = {theta}"),
            "lines dashtype 2",
        );
    }
    let header = [
        "n",
        "theta",
        "k",
        "mean_m",
        "median_m",
        "q25_m",
        "q75_m",
        "m_mn_asymptotic",
        "m_mn_finite",
        "capped",
    ];
    let csv = write_artifacts(&dir, "fig2", &header, &rows, &manifest, Some(&gp));
    println!("fig2: wrote {}", csv.display());
}
