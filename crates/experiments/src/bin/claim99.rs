//! CLAIM99: the §VI in-text claim — “on average we correctly identify 99%
//! of the one-entries when conducting only 220 queries for n = 1000 and
//! θ = 0.3”.

use pooled_experiments::DEFAULT_SEED;
use pooled_io::Args;
use pooled_rng::SeedSequence;
use pooled_stats::replicate::{mn_trial_with, run_trials_with, MnTrialWorkspace};
use pooled_stats::Summary;
use pooled_theory::thresholds::k_of;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", 100);
    let n = args.get_usize("n", 1000);
    let theta = args.get_f64("theta", 0.3);
    let m = args.get_usize("m", 220);
    let k = k_of(n, theta);

    let master = SeedSequence::new(seed);
    let outcomes = run_trials_with(&master, trials, MnTrialWorkspace::new, |_, seeds, ws| {
        mn_trial_with(n, k, m, &seeds, ws)
    });
    let mut overlap = Summary::new();
    let mut exact = 0usize;
    for o in &outcomes {
        overlap.push(o.overlap);
        exact += o.exact as usize;
    }
    println!(
        "n={n} θ={theta} (k={k}) m={m}: mean overlap {:.4} (min {:.3}), exact {}/{trials}",
        overlap.mean(),
        overlap.min(),
        exact
    );
    let claim_holds = overlap.mean() >= 0.99;
    println!(
        "paper claim (mean overlap ≥ 0.99 at m={m}): {}",
        if claim_holds { "REPRODUCED" } else { "not reached at this m" }
    );
    if !claim_holds {
        // Report where our implementation does cross 0.99 so the artifact
        // quantifies the finite-size offset instead of just failing.
        let mut probe = m;
        loop {
            probe += 20;
            let outs = run_trials_with(
                &master.child("probe", probe as u64),
                trials,
                MnTrialWorkspace::new,
                |_, seeds, ws| mn_trial_with(n, k, probe, &seeds, ws),
            );
            let mean: f64 = outs.iter().map(|o| o.overlap).sum::<f64>() / trials as f64;
            if mean >= 0.99 || probe > 4 * m {
                println!("0.99 mean overlap first reached near m = {probe} (measured {mean:.4})");
                break;
            }
        }
    }
}
