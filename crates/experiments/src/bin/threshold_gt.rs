//! EXT-THR: threshold group testing — success rate vs queries at `T ∈
//! {1, 2, 4}`, with the additive channel as the information ceiling.
//!
//! For each threshold the design uses the efficiency-optimal pool size
//! `Γ*(n, k, T)`; the additive column runs the paper's MN decoder on the
//! *same* query budget with its own design, quantifying the price of
//! collapsing counts to one bit. The Hoeffding estimate
//! `m_est(T) = 2n·ln n/(Γ*(p1−p0)²)` is reported for each T so the
//! measured transitions can be compared against the design formula.

use pooled_core::{exact_recovery, overlap_fraction};
use pooled_experiments::{output_dir, write_artifacts, Scale, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::{mn_trial, run_trials};
use pooled_stats::sweep::linear_grid;
use pooled_stats::wilson_interval;
use pooled_theory::threshold_gt::{m_threshold_estimate, recommended_gamma};
use pooled_theory::thresholds::k_of;
use pooled_threshold::{ThresholdChannel, ThresholdMnDecoder};

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", if scale == Scale::Full { 100 } else { 20 });
    let n = args.get_usize("n", if scale == Scale::Full { 10_000 } else { 1000 });
    let theta = args.get_f64("theta", 0.3);
    let k = k_of(n, theta);
    let thresholds_t: Vec<u64> = vec![1, 2, 4];

    let mut rows = Vec::new();
    for &t in &thresholds_t {
        let (gamma, sep) = recommended_gamma(n, k, t);
        let m_est = m_threshold_estimate(n, k, gamma, t);
        let m_hi = (2.0 * m_est).ceil() as usize;
        eprintln!(
            "threshold_gt: T={t} Γ*={gamma} separation={sep:.3} m_est={m_est:.0} (grid to {m_hi})"
        );
        for m in linear_grid((m_hi / 16).max(4), m_hi, 16) {
            let master = SeedSequence::new(seed ^ (t << 48) ^ (m as u64));
            let outcomes = run_trials(&master, trials, |_, s| {
                let sigma = pooled_core::Signal::random(n, k, &mut s.child("signal", 0).rng());
                let design =
                    pooled_threshold::recommended_design(n, k, t, m, &s.child("design", 0));
                let bits = ThresholdChannel::new(t).execute(&design, &sigma);
                let out = ThresholdMnDecoder::new(k).decode(&design, &bits);
                let refined = pooled_threshold::refine_bits(
                    design.csr(),
                    &bits,
                    t,
                    &out.scores,
                    &out.estimate,
                    &pooled_threshold::BitRefineConfig::default(),
                );
                (
                    exact_recovery(&sigma, &out.estimate),
                    overlap_fraction(&sigma, &out.estimate),
                    exact_recovery(&sigma, &refined.estimate),
                )
            });
            let successes = outcomes.iter().filter(|o| o.0).count() as u64;
            let refined_rate = outcomes.iter().filter(|o| o.2).count() as f64 / trials as f64;
            let overlap: f64 = outcomes.iter().map(|o| o.1).sum::<f64>() / outcomes.len() as f64;
            let (lo, hi) = wilson_interval(successes, trials as u64, 1.96);
            // Additive ceiling: the paper's decoder at the same budget.
            let additive = run_trials(&master.child("additive", 0), trials, |_, s| {
                mn_trial(n, k, m, &s).exact
            });
            let additive_rate = additive.iter().filter(|&&e| e).count() as f64 / trials as f64;
            rows.push(vec![
                t.to_string(),
                gamma.to_string(),
                m.to_string(),
                fmt_f64(successes as f64 / trials as f64),
                fmt_f64(lo),
                fmt_f64(hi),
                fmt_f64(overlap),
                fmt_f64(refined_rate),
                fmt_f64(additive_rate),
                fmt_f64(m_est),
            ]);
        }
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "threshold_gt",
        seed,
        scale.name(),
        serde_json::json!({"n": n, "theta": theta, "k": k, "T": thresholds_t, "trials": trials}),
    );
    let mut gp = GnuplotScript::new(
        &format!("EXT-THR — threshold-GT success over m (n = {n}, θ = {theta})"),
        "number of tests m",
        "success rate",
    );
    for &t in &thresholds_t {
        gp = gp.series(
            "threshold_gt.csv",
            &format!("($1=={t}?$3:1/0):4"),
            &format!("T = {t}"),
            "linespoints",
        );
    }
    let header = [
        "T",
        "gamma_star",
        "m",
        "success_rate",
        "ci_lo",
        "ci_hi",
        "mean_overlap",
        "refined_success",
        "additive_success",
        "m_estimate",
    ];
    let csv = write_artifacts(&dir, "threshold_gt", &header, &rows, &manifest, Some(&gp));
    println!("threshold_gt: wrote {}", csv.display());
}
