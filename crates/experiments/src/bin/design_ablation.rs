//! EXT-DSGN: does the paper's with-replacement regular design matter?
//!
//! Runs the Γ-general MN decoder over all four design families at matched
//! density `c = 1/2` and sweeps the query budget. The paper argues (§I-D)
//! that multi-edges "do not affect practicability"; this experiment
//! quantifies that: `random_regular` vs `no_replace` measures the cost of
//! multi-edges, `bernoulli` measures the cost of random pool sizes, and
//! `entry_regular` measures the value of pinning the per-entry degrees
//! (removing the `Δ_i` noise term of the §V Remark).

use pooled_core::mn_general::GeneralMnDecoder;
use pooled_core::{exact_recovery, execute_queries, Signal};
use pooled_design::DesignKind;
use pooled_experiments::{output_dir, write_artifacts, Scale, DEFAULT_SEED};
use pooled_io::csv::fmt_f64;
use pooled_io::{Args, GnuplotScript, Manifest};
use pooled_rng::SeedSequence;
use pooled_stats::replicate::run_trials;
use pooled_stats::sweep::linear_grid;
use pooled_stats::wilson_interval;
use pooled_theory::thresholds::{k_of, m_mn_finite};

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let scale = Scale::from_args(&args);
    let seed = args.get_u64("seed", DEFAULT_SEED);
    let trials = args.get_usize("trials", if scale == Scale::Full { 100 } else { 25 });
    let n = args.get_usize("n", if scale == Scale::Full { 10_000 } else { 1000 });
    let theta = args.get_f64("theta", 0.3);
    let k = k_of(n, theta);
    let m_hi = (1.6 * m_mn_finite(n, theta)).ceil() as usize;

    let mut rows = Vec::new();
    for kind in DesignKind::ALL {
        for m in linear_grid(m_hi / 12, m_hi, 12) {
            let master = SeedSequence::new(seed ^ (m as u64) << 8);
            let outcomes = run_trials(&master, trials, |_, s| {
                let sigma = Signal::random(n, k, &mut s.child("signal", 0).rng());
                let design = kind.sample(n, m, 0.5, &s.child(kind.name(), 0));
                let y = execute_queries(&design, &sigma);
                let out = GeneralMnDecoder::new(k).decode(&design, &y);
                exact_recovery(&sigma, &out.estimate)
            });
            let successes = outcomes.iter().filter(|&&e| e).count() as u64;
            let (lo, hi) = wilson_interval(successes, trials as u64, 1.96);
            rows.push(vec![
                kind.name().to_string(),
                m.to_string(),
                fmt_f64(successes as f64 / trials as f64),
                fmt_f64(lo),
                fmt_f64(hi),
            ]);
        }
        eprintln!("design_ablation: {} done", kind.name());
    }

    let dir = output_dir(&args);
    let manifest = Manifest::new(
        "design_ablation",
        seed,
        scale.name(),
        serde_json::json!({"n": n, "theta": theta, "k": k, "trials": trials, "density": 0.5}),
    );
    let mut gp = GnuplotScript::new(
        &format!("EXT-DSGN — success over m by design family (n = {n}, θ = {theta})"),
        "number of tests m",
        "success rate",
    );
    for kind in DesignKind::ALL {
        gp = gp.series(
            "design_ablation.csv",
            &format!("(strcol(1) eq \"{}\"?$2:1/0):3", kind.name()),
            kind.name(),
            "linespoints",
        );
    }
    let header = ["design", "m", "success_rate", "ci_lo", "ci_hi"];
    let csv = write_artifacts(&dir, "design_ablation", &header, &rows, &manifest, Some(&gp));
    println!("design_ablation: wrote {}", csv.display());
}
